"""Append-only write-ahead journal of committed mutating statements.

The snapshot format in :mod:`repro.engine.persistence` makes state
survive a *clean* shutdown; this module makes it survive a crash. A
:class:`WriteAheadJournal` records every committed mutating statement
(and the bulk-load operations that bypass SQL) as a length- and
checksum-framed record, fsync'd before the caller is told the statement
succeeded. Recovery (:mod:`repro.engine.durability`) loads the latest
valid snapshot and re-executes the journal's tail.

File layout::

    RWAL1\\n                          6-byte magic
    [u32 length][u32 crc32][payload]  repeated; payload is UTF-8 JSON

Each payload carries a monotonically increasing ``seq``. Sequence
numbers keep increasing across :meth:`WriteAheadJournal.truncate`, and
snapshots record the last ``seq`` they include — so a crash *between*
"snapshot replaced" and "journal truncated" is harmless: recovery skips
records the snapshot already contains instead of double-applying them.

Torn tails are expected, not fatal: a crash mid-append leaves a partial
frame (short header, short payload, or checksum mismatch). Scanning
stops at the first invalid frame and reports the last valid byte
offset; reopening the journal truncates the tail there. Anything after
a bad frame is unrecoverable by design — records are only meaningful as
a prefix, matching the commit order they were written in.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..testing.faults import fire

from .errors import JournalError

#: File magic; bumping it invalidates old journals explicitly.
MAGIC = b"RWAL1\n"

#: Frame header: payload byte length, then crc32 of the payload.
_HEADER = struct.Struct(">II")

#: Upper bound on a single record; a "length" above this is treated as
#: corruption rather than attempted as an allocation.
MAX_RECORD_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record.

    Attributes:
        seq: the record's sequence number (monotonic across truncation).
        payload: the decoded JSON payload (includes ``seq``).
        offset: byte offset of the frame's first header byte.
    """

    seq: int
    payload: Dict
    offset: int


@dataclass
class JournalScan:
    """Result of scanning a journal file front to back.

    Attributes:
        records: every valid record, in write order.
        valid_bytes: offset one past the last valid frame — the length
            recovery should truncate the file to.
        total_bytes: the file's actual size.
        torn: True when trailing bytes after ``valid_bytes`` were
            invalid (torn append or corruption).
    """

    records: List[JournalRecord] = field(default_factory=list)
    valid_bytes: int = len(MAGIC)
    total_bytes: int = 0
    torn: bool = False

    @property
    def last_seq(self) -> int:
        """Highest sequence number seen (0 for an empty journal)."""
        return self.records[-1].seq if self.records else 0


def scan_journal(path: Union[str, Path]) -> JournalScan:
    """Read every valid record from a journal file.

    Stops at the first invalid frame (short header, short payload,
    oversized length, checksum mismatch, or undecodable payload) and
    marks the scan ``torn``; everything before it is returned. A missing
    file scans as empty; a file that exists but does not start with the
    journal magic raises :class:`JournalError` — that is a wrong file,
    not a torn one.
    """
    file_path = Path(path)
    if not file_path.exists():
        return JournalScan(total_bytes=0, valid_bytes=0)
    data = file_path.read_bytes()
    scan = JournalScan(total_bytes=len(data))
    if len(data) < len(MAGIC):
        # A torn initial header write: nothing valid yet.
        scan.valid_bytes = 0
        scan.torn = len(data) > 0
        return scan
    if data[: len(MAGIC)] != MAGIC:
        raise JournalError(
            f"{file_path} is not a write-ahead journal (bad magic)"
        )
    offset = len(MAGIC)
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            scan.torn = True
            break
        length, checksum = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if length > MAX_RECORD_BYTES or start + length > len(data):
            scan.torn = True
            break
        payload_bytes = data[start : start + length]
        if zlib.crc32(payload_bytes) & 0xFFFFFFFF != checksum:
            scan.torn = True
            break
        try:
            payload = json.loads(payload_bytes.decode("utf-8"))
            seq = int(payload["seq"])
        except (ValueError, KeyError, UnicodeDecodeError):
            scan.torn = True
            break
        scan.records.append(JournalRecord(seq=seq, payload=payload, offset=offset))
        offset = start + length
        scan.valid_bytes = offset
    return scan


class WriteAheadJournal:
    """Durable, append-only record of committed mutating operations.

    Opening an existing journal validates its magic, truncates any torn
    tail (counted in :attr:`torn_bytes_truncated`), and continues the
    sequence numbering after the highest surviving record. Appends are
    framed, written, and — with ``sync=True`` (the default) — fsync'd
    before returning, so a statement acknowledged to a client is
    recoverable.

    Thread-safe: appends take an internal lock. In this engine every
    append already happens under the database's exclusive write lock,
    but the journal does not rely on that.

    Args:
        path: journal file location (created if missing).
        clock: optional time source; when given, appended payloads are
            stamped with ``ts`` (the guard's update trackers are
            restored from these timestamps on recovery).
        sync: fsync after every append batch. Turning this off trades
            crash durability of the newest records for throughput.
    """

    def __init__(
        self,
        path: Union[str, Path],
        clock=None,
        sync: bool = True,
    ):
        self.path = Path(path)
        self.clock = clock
        self.sync = sync
        self._lock = threading.Lock()
        self.records_written = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.torn_bytes_truncated = 0
        scan = scan_journal(self.path)
        self._next_seq = scan.last_seq + 1
        self._size = scan.valid_bytes if self.path.exists() else len(MAGIC)
        if not self.path.exists() or scan.total_bytes < len(MAGIC):
            # Fresh file (or a torn initial header): start from magic.
            self._file = open(self.path, "wb")
            self._file.write(MAGIC)
            self._file.flush()
            self._fsync()
            self._size = len(MAGIC)
            if scan.total_bytes:
                self.torn_bytes_truncated += scan.total_bytes
        else:
            self._file = open(self.path, "r+b")
            if scan.torn:
                self.torn_bytes_truncated += scan.total_bytes - scan.valid_bytes
                self._file.truncate(scan.valid_bytes)
                self._fsync()
            self._file.seek(scan.valid_bytes)

    # -- introspection -----------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent append (0 when none yet)."""
        return self._next_seq - 1

    @property
    def size_bytes(self) -> int:
        """Current journal length in bytes (magic included)."""
        return self._size

    # -- appending ---------------------------------------------------------

    def append(self, payload: Dict) -> int:
        """Frame, write, and (if ``sync``) fsync one record.

        Returns the record's sequence number. The payload must be
        JSON-serialisable; ``seq`` (and ``ts`` when a clock is attached)
        are added to it.
        """
        return self.append_many([payload])[-1]

    def append_many(self, payloads: Sequence[Dict]) -> List[int]:
        """Append several records with a single fsync (commit batches).

        Returns their sequence numbers. An empty batch is a no-op.
        """
        if not payloads:
            return []
        with self._lock:
            self._check_open()
            sequences = []
            frames = []
            for payload in payloads:
                record = dict(payload)
                record["seq"] = self._next_seq
                if self.clock is not None and "ts" not in record:
                    record["ts"] = self.clock.now()
                body = json.dumps(record, separators=(",", ":")).encode("utf-8")
                frames.append(
                    _HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF)
                    + body
                )
                sequences.append(self._next_seq)
                self._next_seq += 1
            blob = b"".join(frames)
            self._file.write(blob)
            self._file.flush()
            if self.sync:
                self._fsync()
            self._size += len(blob)
            self.records_written += len(frames)
            self.bytes_written += len(blob)
            return sequences

    def append_replica(self, payload: Dict) -> int:
        """Append one *already-sequenced* record (replication apply path).

        Followers persist the primary's shipped payloads verbatim: the
        incoming ``seq`` (and ``ts``) are kept, not re-assigned, so the
        follower's journal file is byte-identical to the primary's
        committed prefix — which is what makes post-failover
        journal-fingerprint checks meaningful. Sequence numbering for
        any *local* appends after a promotion continues above the
        highest replicated record.
        """
        seq = int(payload["seq"])
        with self._lock:
            self._check_open()
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            frame = (
                _HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body
            )
            self._file.write(frame)
            self._file.flush()
            if self.sync:
                self._fsync()
            self._size += len(frame)
            self.records_written += 1
            self.bytes_written += len(frame)
            self._next_seq = max(self._next_seq, seq + 1)
            return seq

    # -- checkpoint support --------------------------------------------------

    def truncate(self) -> None:
        """Drop every record (after a successful snapshot).

        The file is cut back to its magic header and fsync'd; sequence
        numbering continues, so records appended later stay strictly
        above any ``journal_seq`` a snapshot recorded.
        """
        with self._lock:
            self._check_open()
            self._file.truncate(len(MAGIC))
            self._file.seek(len(MAGIC))
            self._fsync()
            self._size = len(MAGIC)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush and close the underlying file."""
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()

    def _check_open(self) -> None:
        if self._file.closed:
            raise JournalError(f"journal {self.path} is closed")

    def _fsync(self) -> None:
        fire("journal.fsync")
        os.fsync(self._file.fileno())
        self.fsyncs += 1

    def __enter__(self) -> "WriteAheadJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadJournal({str(self.path)!r}, last_seq={self.last_seq}, "
            f"bytes={self._size})"
        )


class JournalFollower:
    """Incremental tail reader over a live journal file.

    Replication ships *committed* WAL frames: the primary's journal is
    the authoritative commit record, so the shipping side simply tails
    the file, decoding any newly appended complete frames on each
    :meth:`poll`. A partial trailing frame (a commit racing the poll)
    is left in place — the offset does not advance past it, and the
    next poll retries from the same point.

    Truncation-aware: a checkpoint cuts the journal back to its magic
    header while sequence numbers keep increasing, so when the file
    shrinks below the follower's offset the reader rewinds to the
    magic and relies on the ``seq > last_seq`` filter to skip anything
    it already delivered.

    Args:
        path: the journal file to tail (may not exist yet).
        after_seq: deliver only records with ``seq`` strictly above
            this (a follower resuming from a snapshot passes the
            snapshot's ``journal_seq``).
    """

    def __init__(self, path: Union[str, Path], after_seq: int = 0):
        self.path = Path(path)
        self.last_seq = after_seq
        self._offset = 0
        #: lifetime counters, for replication health.
        self.records_delivered = 0
        self.truncations_seen = 0

    def poll(self) -> List[JournalRecord]:
        """Decode and return frames appended since the last poll."""
        if not self.path.exists():
            return []
        size = self.path.stat().st_size
        if size < max(self._offset, len(MAGIC)):
            # Checkpoint truncation (or a fresh file): rewind.
            if self._offset > len(MAGIC):
                self.truncations_seen += 1
            self._offset = 0
            if size < len(MAGIC):
                return []
        if self._offset < len(MAGIC):
            self._offset = len(MAGIC)
        with open(self.path, "rb") as handle:
            if handle.read(len(MAGIC)) != MAGIC:
                raise JournalError(
                    f"{self.path} is not a write-ahead journal (bad magic)"
                )
            handle.seek(self._offset)
            data = handle.read()
        records: List[JournalRecord] = []
        cursor = 0
        while cursor + _HEADER.size <= len(data):
            length, checksum = _HEADER.unpack_from(data, cursor)
            start = cursor + _HEADER.size
            if length > MAX_RECORD_BYTES or start + length > len(data):
                break  # partial or torn tail; retry next poll
            body = data[start : start + length]
            if zlib.crc32(body) & 0xFFFFFFFF != checksum:
                break
            try:
                payload = json.loads(body.decode("utf-8"))
                seq = int(payload["seq"])
            except (ValueError, KeyError, UnicodeDecodeError):
                break
            if seq > self.last_seq:
                records.append(
                    JournalRecord(
                        seq=seq,
                        payload=payload,
                        offset=self._offset + cursor,
                    )
                )
                self.last_seq = seq
            cursor = start + length
        self._offset += cursor
        self.records_delivered += len(records)
        return records


def fingerprint_journal(
    path: Union[str, Path], upto_seq: Optional[int] = None
) -> str:
    """SHA-256 over a journal's framed records (magic excluded).

    With ``upto_seq``, only frames at or below that sequence number are
    hashed — the committed-prefix fingerprint a promoted follower must
    match against the dead primary's on-disk journal.
    """
    digest = hashlib.sha256()
    scan = scan_journal(path)
    data = Path(path).read_bytes() if Path(path).exists() else b""
    for index, record in enumerate(scan.records):
        if upto_seq is not None and record.seq > upto_seq:
            break
        end = (
            scan.records[index + 1].offset
            if index + 1 < len(scan.records)
            else scan.valid_bytes
        )
        digest.update(data[record.offset : end])
    return digest.hexdigest()
