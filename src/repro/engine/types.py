"""Column types for the relational engine.

The engine supports four scalar types — INTEGER, FLOAT, TEXT, and BOOLEAN —
plus SQL NULL (represented as Python ``None``). Type objects validate and
coerce Python values on insertion so that tables never hold values outside
their declared domain.
"""

from __future__ import annotations

import enum
from typing import Any, Optional, Tuple, Union

from .errors import TypeMismatchError

#: Union of Python values an engine cell may hold.
SQLValue = Optional[Union[int, float, str, bool]]


class DataType(enum.Enum):
    """Enumeration of supported column types."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Resolve a type from its SQL name, accepting common aliases.

        >>> DataType.from_name("int")
        <DataType.INTEGER: 'INTEGER'>
        """
        normalized = name.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "FLOAT": cls.FLOAT,
            "REAL": cls.FLOAT,
            "DOUBLE": cls.FLOAT,
            "NUMERIC": cls.FLOAT,
            "DECIMAL": cls.FLOAT,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise TypeMismatchError(f"unknown type name: {name!r}") from None

    def validate(self, value: SQLValue, column: str = "?") -> SQLValue:
        """Coerce ``value`` into this type's domain or raise.

        ``None`` always passes (NULL is a member of every domain). Integers
        are accepted for FLOAT columns and silently widened; bools are
        *not* accepted for INTEGER columns (Python's bool-is-int would
        otherwise let ``True`` leak into numeric data).
        """
        if value is None:
            return None
        if self is DataType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeMismatchError(
                    f"column {column!r} expects INTEGER, got {value!r}"
                )
            return value
        if self is DataType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(
                    f"column {column!r} expects FLOAT, got {value!r}"
                )
            return float(value)
        if self is DataType.TEXT:
            if not isinstance(value, str):
                raise TypeMismatchError(
                    f"column {column!r} expects TEXT, got {value!r}"
                )
            return value
        if self is DataType.BOOLEAN:
            if not isinstance(value, bool):
                raise TypeMismatchError(
                    f"column {column!r} expects BOOLEAN, got {value!r}"
                )
            return value
        raise TypeMismatchError(f"unhandled type {self}")  # pragma: no cover


#: Sort key that orders NULLs first and supports mixed numeric types.
def sort_key(value: SQLValue) -> Tuple[int, Any]:
    """Return a total-order key for a cell value.

    NULL sorts before everything; within a type, natural order applies.
    Mixed-type comparisons order by type name to stay deterministic.
    """
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, value)
