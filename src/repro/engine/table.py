"""Heap tables with stable row identifiers.

A :class:`HeapTable` stores validated row tuples keyed by a monotonically
increasing row id. Row ids are stable across updates (an UPDATE keeps the
row id), which is what lets the delay layer track per-tuple popularity
and update counts without caring about value churn.

Concurrency audit: ``scan``/``get``/``lookup_pk``/``rowids`` never
mutate table state — reads under the engine's shared read lock are safe
against each other. ``scan`` iterates the live row dict, so it must not
interleave with a mutator: the engine guarantees that by running
INSERT/UPDATE/DELETE/DDL under the exclusive write side.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .errors import ConstraintError
from .schema import TableSchema
from .types import SQLValue

Row = Tuple[SQLValue, ...]


class HeapTable:
    """An insert-ordered collection of rows with stable integer row ids."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._next_rowid = 1
        self._rowid_stride = 1
        #: monotonic mutation counter: bumped on every insert/update/
        #: delete/restore. The vectorized executor keys its cached
        #: columnar snapshot on it, and fork-based scan workers verify
        #: it per task so a stale worker can never answer for a table
        #: that moved underneath it.
        self._version = 0
        #: cached columnar snapshot (built by
        #: :meth:`column_batch`), valid while ``_version`` matches.
        self._column_batch = None
        self._pk_index: Optional[Dict[SQLValue, int]] = (
            {} if schema.primary_key else None
        )
        self._pk_position = (
            schema.position(schema.primary_key) if schema.primary_key else -1
        )
        #: observers notified as (event, rowid, row, old_row) on every
        #: mutation; events are "insert", "update", "delete". ``row`` is
        #: the new row ("delete" passes the removed row); ``old_row`` is
        #: the prior row for "update", else None. Indexes and the
        #: transaction undo log both subscribe here.
        self._observers: List[
            Callable[[str, int, Row, Optional[Row]], None]
        ] = []

    # -- observer plumbing -------------------------------------------------

    def subscribe(
        self, observer: Callable[[str, int, Row, Optional[Row]], None]
    ) -> None:
        """Register a mutation observer (called after each change)."""
        self._observers.append(observer)

    def unsubscribe(
        self, observer: Callable[[str, int, Row, Optional[Row]], None]
    ) -> None:
        """Remove a previously registered observer."""
        self._observers.remove(observer)

    def _notify(
        self, event: str, rowid: int, row: Row, old: Optional[Row] = None
    ) -> None:
        self._version += 1
        self._column_batch = None
        for observer in self._observers:
            observer(event, rowid, row, old)

    # -- rowid allocation ---------------------------------------------------

    def configure_rowids(self, offset: int, stride: int) -> None:
        """Restrict new rowids to the residue class ``offset + 1 (mod stride)``.

        Shard ``offset`` of an ``stride``-way cluster allocates rowids
        ``offset + 1, offset + 1 + stride, offset + 1 + 2 * stride, ...`` so
        rowids are globally unique across shards and a rowid's owner can be
        recovered as ``(rowid - 1) % stride``. The defaults (offset 0,
        stride 1) reproduce the classic ``1, 2, 3, ...`` sequence exactly.

        ``_next_rowid`` is realigned *upward* onto the residue class, which
        also repairs the allocator after a snapshot load (persistence sets
        it to ``max + 1`` without stride awareness).
        """
        if stride < 1:
            raise ValueError(f"rowid stride must be >= 1, got {stride}")
        if not 0 <= offset < stride:
            raise ValueError(
                f"rowid offset must be in [0, {stride}), got {offset}"
            )
        self._rowid_stride = stride
        base = offset + 1
        if self._next_rowid <= base:
            self._next_rowid = base
        else:
            over = (self._next_rowid - base) % stride
            if over:
                self._next_rowid += stride - over

    # -- basic accessors ----------------------------------------------------

    @property
    def name(self) -> str:
        """The table name from the schema."""
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, rowid: int) -> bool:
        return rowid in self._rows

    def get(self, rowid: int) -> Optional[Row]:
        """Return the row stored at ``rowid`` or None."""
        return self._rows.get(rowid)

    def scan(self) -> Iterator[Tuple[int, Row]]:
        """Yield ``(rowid, row)`` pairs in insertion order.

        Mutating the table during a scan is not supported; materialize
        first if the caller needs to mutate (the executor does this for
        UPDATE/DELETE).
        """
        return iter(self._rows.items())

    def rowids(self) -> List[int]:
        """Return a snapshot list of all current row ids."""
        return list(self._rows.keys())

    # -- mutation -------------------------------------------------------------

    def insert(self, values: Sequence[SQLValue]) -> int:
        """Validate and insert a positional row; return its new rowid."""
        row = self.schema.validate_row(values)
        if self._pk_index is not None:
            key = row[self._pk_position]
            if key in self._pk_index:
                raise ConstraintError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
        rowid = self._next_rowid
        self._next_rowid += self._rowid_stride
        self._rows[rowid] = row
        if self._pk_index is not None:
            self._pk_index[row[self._pk_position]] = rowid
        self._notify("insert", rowid, row)
        return rowid

    def update(self, rowid: int, values: Sequence[SQLValue]) -> Row:
        """Replace the row at ``rowid`` with a validated new row."""
        if rowid not in self._rows:
            raise ConstraintError(f"no row {rowid} in table {self.name!r}")
        row = self.schema.validate_row(values)
        old_row = self._rows[rowid]
        if self._pk_index is not None:
            old_key = old_row[self._pk_position]
            new_key = row[self._pk_position]
            if new_key != old_key and new_key in self._pk_index:
                raise ConstraintError(
                    f"duplicate primary key {new_key!r} in table {self.name!r}"
                )
            del self._pk_index[old_key]
            self._pk_index[new_key] = rowid
        self._rows[rowid] = row
        self._notify("update", rowid, row, old_row)
        return row

    def delete(self, rowid: int) -> Row:
        """Remove and return the row at ``rowid``."""
        if rowid not in self._rows:
            raise ConstraintError(f"no row {rowid} in table {self.name!r}")
        row = self._rows.pop(rowid)
        if self._pk_index is not None:
            del self._pk_index[row[self._pk_position]]
        self._notify("delete", rowid, row)
        return row

    def restore(self, rowid: int, values: Sequence[SQLValue]) -> None:
        """Re-insert a row at a specific rowid (transaction rollback).

        The rowid must be free; primary-key uniqueness is enforced.
        Observers see an ordinary "insert", keeping indexes consistent.
        """
        if rowid in self._rows:
            raise ConstraintError(
                f"rowid {rowid} already occupied in table {self.name!r}"
            )
        row = self.schema.validate_row(values)
        if self._pk_index is not None:
            key = row[self._pk_position]
            if key in self._pk_index:
                raise ConstraintError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
            self._pk_index[key] = rowid
        self._rows[rowid] = row
        if rowid >= self._next_rowid:
            # Stay on the allocator's residue class even when the restored
            # rowid belongs to another shard's class (cross-shard merges).
            stride = self._rowid_stride
            self._next_rowid += (
                (rowid + 1 - self._next_rowid + stride - 1) // stride
            ) * stride
        self._notify("insert", rowid, row)

    # -- columnar access -----------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter (one bump per row mutation)."""
        return self._version

    def column_batch(self):
        """The columnar snapshot of this table at its current version.

        Built lazily and cached until the next mutation. Reads under
        the engine's shared lock may race to build it; the builders
        produce identical snapshots from identical state, so the last
        assignment winning is benign.
        """
        batch = self._column_batch
        if batch is not None and batch.version == self._version:
            return batch
        from .vectorized.columns import ColumnBatch

        batch = ColumnBatch.from_table(self)
        self._column_batch = batch
        return batch

    # -- primary key fast path ---------------------------------------------

    def lookup_pk(self, key: SQLValue) -> Optional[int]:
        """Return the rowid holding primary key ``key``, if any."""
        if self._pk_index is None:
            return None
        return self._pk_index.get(key)

    def __repr__(self) -> str:
        return f"HeapTable({self.name!r}, rows={len(self)})"
