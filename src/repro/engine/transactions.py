"""Transactions: undo-log based BEGIN / COMMIT / ROLLBACK.

The engine supports one active transaction per database (no
savepoints). While a transaction is open, an :class:`UndoLog` subscribes
to every table's mutation stream and records the inverse of each change;
ROLLBACK replays the inverses newest-first. Because the undo operations
are ordinary table mutations, secondary indexes stay consistent for
free.

The same machinery gives *statement-level atomicity* outside explicit
transactions: :class:`~repro.engine.database.Database` wraps every DML
statement in a scratch undo scope and rolls it back if the statement
raises part-way (e.g. a multi-row INSERT hitting a duplicate key on its
third row).

DDL (CREATE/DROP) is not transactional: it is rejected inside an open
transaction rather than half-supported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .errors import EngineError
from .table import HeapTable, Row


class TransactionError(EngineError):
    """Raised on invalid transaction control (nested BEGIN, stray COMMIT)."""


@dataclass(frozen=True)
class UndoRecord:
    """The inverse of one mutation.

    Attributes:
        table: the mutated heap table.
        kind: the original event ("insert", "update", "delete").
        rowid: the affected rowid.
        row: data needed to undo — the old row for updates, the deleted
            row for deletes, None for inserts.
    """

    table: HeapTable
    kind: str
    rowid: int
    row: Optional[Row]

    def undo(self) -> None:
        """Apply the inverse mutation."""
        if self.kind == "insert":
            self.table.delete(self.rowid)
        elif self.kind == "update":
            assert self.row is not None
            self.table.update(self.rowid, self.row)
        elif self.kind == "delete":
            assert self.row is not None
            self.table.restore(self.rowid, self.row)
        else:  # pragma: no cover - table emits only these three
            raise TransactionError(f"cannot undo event {self.kind!r}")


class UndoLog:
    """Records inverse operations for a set of tables.

    Attach to tables with :meth:`attach`; every mutation thereafter is
    recorded until :meth:`detach`. :meth:`rollback` detaches first, so
    the undo mutations themselves are not re-recorded.
    """

    def __init__(self) -> None:
        self.records: List[UndoRecord] = []
        self._attached: List[Tuple[HeapTable, object]] = []

    def attach(self, table: HeapTable) -> None:
        """Start recording mutations of ``table``."""

        def observer(
            event: str, rowid: int, row: Row, old: Optional[Row] = None
        ) -> None:
            if event == "insert":
                self.records.append(UndoRecord(table, "insert", rowid, None))
            elif event == "update":
                self.records.append(UndoRecord(table, "update", rowid, old))
            elif event == "delete":
                self.records.append(UndoRecord(table, "delete", rowid, row))

        table.subscribe(observer)
        self._attached.append((table, observer))

    def detach(self) -> None:
        """Stop recording everywhere."""
        for table, observer in self._attached:
            table.unsubscribe(observer)
        self._attached.clear()

    def rollback(self) -> int:
        """Undo every recorded mutation, newest first.

        Returns the number of mutations undone.
        """
        self.detach()
        undone = 0
        for record in reversed(self.records):
            record.undo()
            undone += 1
        self.records.clear()
        return undone

    def commit(self) -> int:
        """Discard the log, keeping all changes; returns record count."""
        count = len(self.records)
        self.detach()
        self.records.clear()
        return count

    def merge_into(self, parent: "UndoLog") -> None:
        """Hand this scope's records to an enclosing log (statement
        scope inside an explicit transaction)."""
        self.detach()
        parent.records.extend(self.records)
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
