"""A writer-preferring, reentrant read/write lock for the engine.

The serve path wants many concurrent SELECTs against a stable database
while INSERT/UPDATE/DELETE/DDL exclude everyone: exactly a
reader-writer lock. This one is tailored to how :class:`Database` uses
it:

* **Writer-preferring.** A thread waiting to write blocks *new* readers
  from entering, so a steady stream of cheap SELECTs can never starve a
  writer indefinitely.
* **Reentrant for the owning thread.** A thread already holding the
  read side may re-acquire it even while writers queue (refusing would
  self-deadlock — e.g. pricing a result re-enters the catalog), a
  thread holding the write side may nest further writes *and* reads
  (DML handlers read the catalog and indexes they are mutating), and a
  write holder keeps exclusive access until its outermost release.
* **Sole-reader upgrade.** The single current reader may upgrade to the
  write side (used by callers that discover mid-read that they must
  build something — the "upgrade or pre-build" rule for lazily
  constructed structures). A *shared* read lock refuses to upgrade with
  :class:`LockError` instead of deadlocking: two readers upgrading
  would each wait for the other forever.
* **Telemetry.** Waiter counts and cumulative write-side hold time are
  exposed so the guard can publish ``engine_read_lock_waiters`` /
  ``engine_write_lock_hold_seconds`` without wrapping the hot path.

The lock is intentionally not fair among writers (whichever waiting
writer wakes first wins); the engine has no ordering requirement
between concurrent writers beyond mutual exclusion.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .errors import EngineError


class LockError(EngineError):
    """An unsupported lock transition (e.g. a shared-read upgrade)."""


class ReadWriteLock:
    """Writer-preferring, thread-reentrant reader/writer lock.

    >>> lock = ReadWriteLock()
    >>> with lock.read_locked():
    ...     pass  # shared with other readers
    >>> with lock.write_locked():
    ...     with lock.read_locked():
    ...         pass  # the writer may read its own view
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: thread ident -> reentrant read depth.
        self._readers: Dict[int, int] = {}
        self._writer: Optional[int] = None
        self._writer_depth = 0
        self._waiting_writers = 0
        self._waiting_readers = 0
        self._read_acquisitions = 0
        self._write_acquisitions = 0
        self._write_hold_seconds = 0.0
        self._write_acquired_at = 0.0

    # -- read side ----------------------------------------------------------

    def acquire_read(self) -> None:
        """Acquire shared access; blocks while a writer holds or waits."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                # Reentrant entry: never blocks, even with writers
                # queued — waiting on ourselves would deadlock.
                self._readers[me] = self._readers.get(me, 0) + 1
                self._read_acquisitions += 1
                return
            while self._writer is not None or self._waiting_writers:
                self._waiting_readers += 1
                try:
                    self._cond.wait()
                finally:
                    self._waiting_readers -= 1
            self._readers[me] = 1
            self._read_acquisitions += 1

    def release_read(self) -> None:
        """Release one level of shared access."""
        me = threading.get_ident()
        with self._cond:
            depth = self._readers.get(me, 0)
            if depth == 0:
                raise LockError(
                    "release_read without a matching acquire_read"
                )
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    # -- write side ---------------------------------------------------------

    def acquire_write(self) -> None:
        """Acquire exclusive access; reentrant for the current writer.

        Raises:
            LockError: if this thread holds a *shared* read lock (other
                readers are active) — upgrading would deadlock when two
                readers try it simultaneously, so it is refused.
        """
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                # Upgrade path: legal only as the sole reader. A writer
                # cannot be active while we hold the read side, so no
                # wait is needed — either we convert now or we refuse.
                if len(self._readers) > 1:
                    raise LockError(
                        "cannot upgrade a shared read lock to a write "
                        "lock; release the read side or pre-build "
                        "under the write side"
                    )
                self._writer = me
                self._writer_depth = 1
            else:
                self._waiting_writers += 1
                try:
                    while self._writer is not None or self._readers:
                        self._cond.wait()
                finally:
                    self._waiting_writers -= 1
                self._writer = me
                self._writer_depth = 1
            self._write_acquisitions += 1
            self._write_acquired_at = time.perf_counter()

    def release_write(self) -> None:
        """Release one level of exclusive access."""
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise LockError(
                    "release_write by a thread that does not hold the "
                    "write lock"
                )
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._write_hold_seconds += (
                    time.perf_counter() - self._write_acquired_at
                )
                self._writer = None
                # An upgraded thread may still hold its read entry; it
                # keeps excluding other writers (a natural downgrade)
                # but readers may join it.
                self._cond.notify_all()

    # -- context managers ----------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with``-style shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with``-style exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- telemetry -----------------------------------------------------------

    @property
    def active_readers(self) -> int:
        """Threads currently holding the read side."""
        with self._cond:
            return len(self._readers)

    @property
    def write_locked_now(self) -> bool:
        """Whether any thread currently holds the write side."""
        with self._cond:
            return self._writer is not None

    @property
    def waiting_readers(self) -> int:
        """Threads blocked waiting for the read side."""
        with self._cond:
            return self._waiting_readers

    @property
    def waiting_writers(self) -> int:
        """Threads blocked waiting for the write side."""
        with self._cond:
            return self._waiting_writers

    @property
    def read_acquisitions(self) -> int:
        """Lifetime read-side acquisitions (including reentries)."""
        with self._cond:
            return self._read_acquisitions

    @property
    def write_acquisitions(self) -> int:
        """Lifetime outermost write-side acquisitions."""
        with self._cond:
            return self._write_acquisitions

    @property
    def write_hold_seconds(self) -> float:
        """Cumulative seconds the write side was held (completed holds)."""
        with self._cond:
            return self._write_hold_seconds

    def __repr__(self) -> str:
        with self._cond:
            return (
                f"ReadWriteLock(readers={len(self._readers)}, "
                f"writer={self._writer is not None}, "
                f"waiting_writers={self._waiting_writers})"
            )
