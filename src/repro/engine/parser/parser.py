"""Recursive-descent parser for the engine's SQL subset.

Supported grammar (case-insensitive keywords)::

    statement   := select | insert | update | delete
                 | create_table | create_index | drop_table
    select      := SELECT [DISTINCT] items FROM ident [WHERE expr]
                   [ORDER BY order_items] [LIMIT n [OFFSET m]]
    items       := '*' | item (',' item)*
    item        := agg '(' ['DISTINCT'] (expr|'*') ')' [AS ident]
                 | expr [AS ident]
    insert      := INSERT INTO ident ['(' idents ')'] VALUES tuple (',' tuple)*
    update      := UPDATE ident SET ident '=' expr (',' ...)* [WHERE expr]
    delete      := DELETE FROM ident [WHERE expr]
    create_table:= CREATE TABLE [IF NOT EXISTS] ident '(' coldefs ')'
    create_index:= CREATE INDEX ident ON ident '(' ident ')' [USING ident]
    drop_table  := DROP TABLE [IF EXISTS] ident

Expression precedence (low to high): OR, AND, NOT, comparison /
IN / BETWEEN / LIKE / IS NULL, additive, multiplicative, unary minus.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

from ..errors import ParseError
from ..expr import (
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Logical,
    Negate,
    Not,
    ScalarSubquery,
)
from ..schema import Column
from ..types import DataType
from .ast import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    ExplainStatement,
    InsertStatement,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    Statement,
    TransactionStatement,
    UpdateStatement,
)
from .lexer import Token, tokenize
from .normalize import normalize_sql

AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


class Parser:
    """Single-statement SQL parser. Use :func:`parse` instead of this
    class directly unless you need token-level control."""

    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.position = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*names):
            raise ParseError(
                f"expected {' or '.join(names)}, found {token.value or 'end of input'!r}",
                token.position,
            )
        return self._advance()

    def _expect_operator(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_operator(symbol):
            raise ParseError(
                f"expected {symbol!r}, found {token.value or 'end of input'!r}",
                token.position,
            )
        return self._advance()

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.kind != "identifier":
            raise ParseError(
                f"expected identifier, found {token.value or 'end of input'!r}",
                token.position,
            )
        self._advance()
        return token.value

    def _accept_keyword(self, *names: str) -> bool:
        if self._peek().is_keyword(*names):
            self._advance()
            return True
        return False

    def _accept_operator(self, symbol: str) -> bool:
        if self._peek().is_operator(symbol):
            self._advance()
            return True
        return False

    # -- entry point -----------------------------------------------------

    def parse_statement(self) -> Statement:
        """Parse exactly one statement, allowing a trailing semicolon."""
        if self._accept_keyword("EXPLAIN"):
            inner = self.parse_statement()
            return ExplainStatement(statement=inner)
        token = self._peek()
        if token.is_keyword("SELECT"):
            statement = self._parse_select()
        elif token.is_keyword("INSERT"):
            statement = self._parse_insert()
        elif token.is_keyword("UPDATE"):
            statement = self._parse_update()
        elif token.is_keyword("DELETE"):
            statement = self._parse_delete()
        elif token.is_keyword("CREATE"):
            statement = self._parse_create()
        elif token.is_keyword("DROP"):
            statement = self._parse_drop()
        elif token.is_keyword("BEGIN", "COMMIT", "ROLLBACK"):
            statement = self._parse_transaction()
        else:
            raise ParseError(
                f"expected a statement, found {token.value or 'end of input'!r}",
                token.position,
            )
        self._accept_operator(";")
        trailing = self._peek()
        if trailing.kind != "eof":
            raise ParseError(
                f"unexpected trailing input {trailing.value!r}", trailing.position
            )
        return statement

    # -- statements ------------------------------------------------------

    def _parse_select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = self._parse_select_items()
        self._expect_keyword("FROM")
        table, table_alias = self._parse_table_ref()
        joins = []
        while True:
            join = self._parse_join()
            if join is None:
                break
            joins.append(join)
        where = self._parse_where()
        group_by: Tuple[Expression, ...] = ()
        having: Optional[Expression] = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            keys = [self._parse_expression()]
            while self._accept_operator(","):
                keys.append(self._parse_expression())
            group_by = tuple(keys)
            if self._accept_keyword("HAVING"):
                having = self._parse_expression()
        order_by: Tuple[OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._parse_order_items()
        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_nonnegative_int("LIMIT")
            if self._accept_keyword("OFFSET"):
                offset = self._parse_nonnegative_int("OFFSET")
        return SelectStatement(
            table=table,
            items=items,
            where=where,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
            table_alias=table_alias,
            joins=tuple(joins),
            group_by=group_by,
            having=having,
        )

    def _parse_table_ref(self) -> Tuple[str, Optional[str]]:
        """Parse ``table [AS alias | alias]``."""
        table = self._expect_identifier()
        if self._accept_keyword("AS"):
            return table, self._expect_identifier()
        if self._peek().kind == "identifier":
            return table, self._advance().value
        return table, None

    def _parse_join(self) -> Optional[JoinClause]:
        outer = False
        if self._peek().is_keyword("LEFT"):
            self._advance()
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            outer = True
        elif self._peek().is_keyword("INNER"):
            self._advance()
            self._expect_keyword("JOIN")
        elif self._peek().is_keyword("JOIN"):
            self._advance()
        else:
            return None
        table, alias = self._parse_table_ref()
        self._expect_keyword("ON")
        condition = self._parse_expression()
        return JoinClause(
            table=table, condition=condition, alias=alias, outer=outer
        )

    def _parse_select_items(self) -> Tuple[SelectItem, ...]:
        if self._accept_operator("*"):
            return (SelectItem(expression=None, star=True),)
        items = [self._parse_select_item()]
        while self._accept_operator(","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.is_keyword(*AGGREGATES):
            func = self._advance().value
            self._expect_operator("(")
            distinct = self._accept_keyword("DISTINCT")
            if self._accept_operator("*"):
                if func != "COUNT":
                    raise ParseError(
                        f"{func}(*) is not valid; only COUNT(*)", token.position
                    )
                inner: Optional[Expression] = None
            else:
                inner = self._parse_expression()
            self._expect_operator(")")
            alias = self._parse_alias()
            return SelectItem(
                expression=inner,
                alias=alias,
                aggregate=func,
                distinct=distinct,
            )
        expression = self._parse_expression()
        alias = self._parse_alias()
        return SelectItem(expression=expression, alias=alias)

    def _parse_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._expect_identifier()
        if self._peek().kind == "identifier":
            return self._advance().value
        return None

    def _parse_order_items(self) -> Tuple[OrderItem, ...]:
        items = []
        while True:
            expression = self._parse_expression()
            descending = False
            if self._accept_keyword("DESC"):
                descending = True
            else:
                self._accept_keyword("ASC")
            items.append(OrderItem(expression=expression, descending=descending))
            if not self._accept_operator(","):
                break
        return tuple(items)

    def _parse_nonnegative_int(self, clause: str) -> int:
        token = self._peek()
        if token.kind != "number" or "." in token.value:
            raise ParseError(
                f"{clause} expects a non-negative integer", token.position
            )
        self._advance()
        return int(token.value)

    def _parse_where(self) -> Optional[Expression]:
        if self._accept_keyword("WHERE"):
            return self._parse_expression()
        return None

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier()
        columns: Tuple[str, ...] = ()
        if self._accept_operator("("):
            names = [self._expect_identifier()]
            while self._accept_operator(","):
                names.append(self._expect_identifier())
            self._expect_operator(")")
            columns = tuple(names)
        self._expect_keyword("VALUES")
        rows = [self._parse_value_tuple()]
        while self._accept_operator(","):
            rows.append(self._parse_value_tuple())
        return InsertStatement(table=table, columns=columns, rows=tuple(rows))

    def _parse_value_tuple(self) -> Tuple[Expression, ...]:
        self._expect_operator("(")
        values = [self._parse_expression()]
        while self._accept_operator(","):
            values.append(self._parse_expression())
        self._expect_operator(")")
        return tuple(values)

    def _parse_update(self) -> UpdateStatement:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier()
        self._expect_keyword("SET")
        assignments = []
        while True:
            column = self._expect_identifier()
            self._expect_operator("=")
            assignments.append((column, self._parse_expression()))
            if not self._accept_operator(","):
                break
        where = self._parse_where()
        return UpdateStatement(
            table=table, assignments=tuple(assignments), where=where
        )

    def _parse_delete(self) -> DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier()
        where = self._parse_where()
        return DeleteStatement(table=table, where=where)

    def _parse_create(self) -> Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            if_not_exists = False
            if self._accept_keyword("IF"):
                self._expect_keyword("NOT")
                self._expect_keyword("EXISTS")
                if_not_exists = True
            table = self._expect_identifier()
            self._expect_operator("(")
            columns = [self._parse_column_def()]
            while self._accept_operator(","):
                columns.append(self._parse_column_def())
            self._expect_operator(")")
            return CreateTableStatement(
                table=table, columns=tuple(columns), if_not_exists=if_not_exists
            )
        if self._accept_keyword("INDEX"):
            name = self._expect_identifier()
            self._expect_keyword("ON")
            table = self._expect_identifier()
            self._expect_operator("(")
            column = self._expect_identifier()
            self._expect_operator(")")
            kind = "ordered"
            if self._accept_keyword("USING"):
                kind = self._expect_identifier().lower()
            return CreateIndexStatement(
                name=name, table=table, column=column, kind=kind
            )
        token = self._peek()
        raise ParseError(
            f"expected TABLE or INDEX after CREATE, found {token.value!r}",
            token.position,
        )

    def _parse_column_def(self) -> Column:
        name = self._expect_identifier()
        type_token = self._peek()
        if type_token.kind not in ("identifier", "keyword"):
            raise ParseError(
                f"expected a type for column {name!r}", type_token.position
            )
        self._advance()
        dtype = DataType.from_name(type_token.value)
        # optional length suffix like VARCHAR(40) — parsed and ignored
        if self._accept_operator("("):
            self._parse_nonnegative_int("type length")
            self._expect_operator(")")
        primary_key = False
        nullable = True
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                primary_key = True
                nullable = False
            elif self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                nullable = False
            elif self._accept_keyword("NULL"):
                nullable = True
            else:
                break
        return Column(
            name=name, dtype=dtype, nullable=nullable, primary_key=primary_key
        )

    def _parse_drop(self) -> DropTableStatement:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        table = self._expect_identifier()
        return DropTableStatement(table=table, if_exists=if_exists)

    def _parse_transaction(self) -> TransactionStatement:
        token = self._advance()
        if token.value == "BEGIN":
            self._accept_keyword("TRANSACTION") or self._accept_keyword("WORK")
            return TransactionStatement("begin")
        if token.value == "COMMIT":
            self._accept_keyword("TRANSACTION") or self._accept_keyword("WORK")
            return TransactionStatement("commit")
        self._accept_keyword("TRANSACTION") or self._accept_keyword("WORK")
        return TransactionStatement("rollback")

    # -- expressions -------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = Logical("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = Logical("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.is_operator("=", "!=", "<>", "<", "<=", ">", ">="):
            op = self._advance().value
            if op == "<>":
                op = "!="
            return Comparison(op, left, self._parse_additive())
        negated = False
        if token.is_keyword("NOT"):
            follower = self.tokens[self.position + 1]
            if follower.is_keyword("IN", "BETWEEN", "LIKE"):
                self._advance()
                negated = True
                token = self._peek()
        if token.is_keyword("IS"):
            self._advance()
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNull(left, negated=is_negated)
        if token.is_keyword("IN"):
            self._advance()
            self._expect_operator("(")
            if self._peek().is_keyword("SELECT"):
                subquery = self._parse_select()
                self._expect_operator(")")
                return InSubquery(left, subquery, negated=negated)
            items = [self._parse_expression()]
            while self._accept_operator(","):
                items.append(self._parse_expression())
            self._expect_operator(")")
            return InList(left, tuple(items), negated=negated)
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)
        if token.is_keyword("LIKE"):
            self._advance()
            return Like(left, self._parse_additive(), negated=negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.is_operator("+", "-"):
                op = self._advance().value
                left = Arithmetic(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.is_operator("*", "/", "%"):
                op = self._advance().value
                left = Arithmetic(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self._accept_operator("-"):
            return Negate(self._parse_unary())
        if self._accept_operator("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.is_operator("("):
            self._advance()
            if self._peek().is_keyword("SELECT"):
                subquery = self._parse_select()
                self._expect_operator(")")
                return ScalarSubquery(subquery)
            inner = self._parse_expression()
            self._expect_operator(")")
            return inner
        if token.kind == "number":
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.kind == "string":
            self._advance()
            return Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.kind == "identifier":
            self._advance()
            name = token.value
            if self._accept_operator("."):
                name = f"{name}.{self._expect_identifier()}"
            return ColumnRef(name)
        raise ParseError(
            f"expected an expression, found {token.value or 'end of input'!r}",
            token.position,
        )


def parse(sql: str) -> Statement:
    """Parse a single SQL statement into its AST node.

    >>> stmt = parse("SELECT name FROM users WHERE id = 3")
    >>> stmt.table
    'users'
    """
    return Parser(sql).parse_statement()


#: Default capacity of the process-global statement cache.
PARSE_CACHE_DEFAULT_SIZE = 4096

_parse_cache = lru_cache(maxsize=PARSE_CACHE_DEFAULT_SIZE)(parse)


def parse_cached(sql: str) -> Statement:
    """Like :func:`parse`, with an LRU statement cache.

    Statement nodes are immutable (frozen dataclasses), so callers may
    share them freely. Use for hot paths that re-issue the same SQL
    text (the guard, the SQLite proxy); parse errors are not cached.
    The cache is keyed on :func:`normalize_sql` of the text, so
    whitespace-, comment-, and keyword-case-permuted variants of one
    statement share a single slot (and a single parse) instead of
    letting an adversary thrash the LRU with textual noise.
    The cache is process-global and thread-safe (``functools.lru_cache``
    takes its own lock); resize it with :func:`configure_parse_cache`
    and read hit/miss counters with :func:`parse_cache_info`.
    """
    return _parse_cache(normalize_sql(sql))


def configure_parse_cache(maxsize: int) -> None:
    """Resize the statement cache (rebuilds it, dropping cached entries).

    Process-global: every ``parse_cached`` caller shares one cache, so
    the last configuration wins. Hit/miss counters restart from zero.
    """
    global _parse_cache
    _parse_cache = lru_cache(maxsize=maxsize)(parse)


def parse_cache_info():
    """Current statement-cache counters (``functools`` CacheInfo).

    Fields: ``hits``, ``misses``, ``maxsize``, ``currsize``.
    """
    return _parse_cache.cache_info()
