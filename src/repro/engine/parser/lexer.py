"""Tokenizer for the engine's SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import ParseError

#: Keywords recognised by the parser (upper-case canonical form).
KEYWORDS = {
    "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "CREATE", "TABLE", "INDEX", "DROP", "ON", "AND", "OR", "NOT",
    "NULL", "IS", "IN", "BETWEEN", "LIKE", "ORDER", "BY", "ASC", "DESC",
    "LIMIT", "OFFSET", "PRIMARY", "KEY", "TRUE", "FALSE", "AS", "DISTINCT",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "USING", "UNIQUE", "IF", "EXISTS",
    "JOIN", "INNER", "LEFT", "OUTER", "GROUP", "HAVING",
    "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION", "WORK", "EXPLAIN",
}

#: Multi- and single-character operators, longest first.
OPERATORS = ["<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%",
             "(", ")", ",", ".", ";"]


@dataclass(frozen=True)
class Token:
    """A lexical token.

    Attributes:
        kind: one of "keyword", "identifier", "number", "string",
            "operator", "eof".
        value: canonical text (keywords upper-cased, strings unquoted).
        position: character offset of the token start in the source.
    """

    kind: str
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        """True if this token is one of the given keywords."""
        return self.kind == "keyword" and self.value in names

    def is_operator(self, *symbols: str) -> bool:
        """True if this token is one of the given operator symbols."""
        return self.kind == "operator" and self.value in symbols


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql`` into a list ending with an EOF token.

    Raises :class:`~repro.engine.errors.ParseError` on illegal characters
    or unterminated string literals.
    """
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        char = sql[i]
        if char.isspace():
            i += 1
            continue
        # -- comments ----------------------------------------------------
        if char == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        # -- string literal ------------------------------------------------
        if char == "'":
            start = i
            i += 1
            parts: List[str] = []
            while True:
                if i >= n:
                    raise ParseError("unterminated string literal", start)
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":  # escaped quote
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(sql[i])
                i += 1
            tokens.append(Token("string", "".join(parts), start))
            continue
        # -- number ---------------------------------------------------------
        if char.isdigit() or (
            char == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            start = i
            while i < n and (sql[i].isdigit() or sql[i] == "."):
                i += 1
            if i < n and sql[i] in "eE":
                j = i + 1
                if j < n and sql[j] in "+-":
                    j += 1
                if j < n and sql[j].isdigit():
                    i = j
                    while i < n and sql[i].isdigit():
                        i += 1
            text = sql[start:i]
            if text.count(".") > 1:
                raise ParseError(f"malformed number {text!r}", start)
            tokens.append(Token("number", text, start))
            continue
        # -- identifier / keyword -------------------------------------------
        if char.isalpha() or char == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            text = sql[start:i]
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, start))
            else:
                tokens.append(Token("identifier", text, start))
            continue
        # -- quoted identifier ------------------------------------------------
        if char == '"':
            start = i
            i += 1
            ident_start = i
            while i < n and sql[i] != '"':
                i += 1
            if i >= n:
                raise ParseError("unterminated quoted identifier", start)
            tokens.append(Token("identifier", sql[ident_start:i], start))
            i += 1
            continue
        # -- operator --------------------------------------------------------
        for symbol in OPERATORS:
            if sql.startswith(symbol, i):
                tokens.append(Token("operator", symbol, i))
                i += len(symbol)
                break
        else:
            raise ParseError(f"illegal character {char!r}", i)
    tokens.append(Token("eof", "", n))
    return tokens
