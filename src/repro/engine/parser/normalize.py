"""Canonical SQL text for cache keying.

Two textual variants of the same statement — differing only in
whitespace, line breaks, ``--`` comments, keyword case, ``<>`` versus
``!=``, or a trailing semicolon — must land in one cache slot, both in
the statement parse cache and in the guard's result cache. Otherwise an
adversary can thrash either cache for free by permuting whitespace, and
a legitimate client's textual habits fragment the hit rate.

:func:`normalize_sql` re-renders the token stream in one canonical
spelling. It deliberately does *not* change identifier case: the engine
resolves tables and columns case-insensitively, but result *column
labels* preserve the case the query wrote (``SELECT V FROM t`` labels
its column ``V``), so collapsing identifier case would make a cached
result answer a differently-labelled query. Keyword case, by contrast,
never reaches the result and is collapsed to upper case by the lexer.

Normalization is memoized on the raw text: repeated identical
statements pay one dict lookup, and a whitespace-permuting adversary
pays only a tokenize per variant — the *parse* and *result* caches
behind it stay collapsed onto the canonical form.
"""

from __future__ import annotations

import re
from functools import lru_cache

from ..errors import ParseError
from .lexer import KEYWORDS, Token, tokenize

__all__ = ["normalize_sql", "normalize_cache_info", "NORMALIZE_CACHE_SIZE"]

#: Capacity of the raw-text → canonical-text memo.
NORMALIZE_CACHE_SIZE = 4096

_BARE_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _render(token: Token) -> str:
    """One token's canonical spelling (re-lexes to the same token)."""
    if token.kind == "string":
        escaped = token.value.replace("'", "''")
        return f"'{escaped}'"
    if token.kind == "identifier":
        # Bare when it can be re-lexed as one; quoted otherwise (spaces,
        # leading digits, or a name that collides with a keyword).
        if (
            _BARE_IDENTIFIER.match(token.value)
            and token.value.upper() not in KEYWORDS
        ):
            return token.value
        return f'"{token.value}"'
    if token.kind == "operator" and token.value == "<>":
        return "!="
    return token.value


@lru_cache(maxsize=NORMALIZE_CACHE_SIZE)
def normalize_sql(sql: str) -> str:
    """Canonical single-spaced spelling of ``sql``.

    Collapses whitespace, strips comments and trailing semicolons,
    upper-cases keywords, rewrites ``<>`` to ``!=``, and re-quotes
    string literals. Idempotent. Text that does not tokenize is
    returned unchanged, so the parse error the caller is about to hit
    carries positions into the text they actually wrote.

    >>> normalize_sql("select *  from t -- hi\\n where id=1;")
    'SELECT * FROM t WHERE id = 1'
    >>> normalize_sql("SELECT * FROM t WHERE id <> 2")
    'SELECT * FROM t WHERE id != 2'
    """
    try:
        tokens = tokenize(sql)
    except ParseError:
        return sql
    rendered = [_render(token) for token in tokens if token.kind != "eof"]
    while rendered and rendered[-1] == ";":
        rendered.pop()
    return " ".join(rendered)


def normalize_cache_info():
    """Counters of the normalization memo (``functools`` CacheInfo)."""
    return normalize_sql.cache_info()
