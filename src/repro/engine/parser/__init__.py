"""SQL parsing: lexer, statement AST, and recursive-descent parser."""

from .ast import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    ExplainStatement,
    InsertStatement,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .lexer import Token, tokenize
from .normalize import normalize_cache_info, normalize_sql
from .parser import (
    Parser,
    configure_parse_cache,
    parse,
    parse_cache_info,
    parse_cached,
)

__all__ = [
    "CreateIndexStatement",
    "CreateTableStatement",
    "DeleteStatement",
    "DropTableStatement",
    "ExplainStatement",
    "InsertStatement",
    "OrderItem",
    "Parser",
    "SelectItem",
    "SelectStatement",
    "Statement",
    "Token",
    "JoinClause",
    "UpdateStatement",
    "configure_parse_cache",
    "normalize_cache_info",
    "normalize_sql",
    "parse",
    "parse_cache_info",
    "parse_cached",
    "tokenize",
]
