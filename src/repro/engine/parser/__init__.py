"""SQL parsing: lexer, statement AST, and recursive-descent parser."""

from .ast import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    ExplainStatement,
    InsertStatement,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .lexer import Token, tokenize
from .parser import Parser, parse

__all__ = [
    "CreateIndexStatement",
    "CreateTableStatement",
    "DeleteStatement",
    "DropTableStatement",
    "ExplainStatement",
    "InsertStatement",
    "OrderItem",
    "Parser",
    "SelectItem",
    "SelectStatement",
    "Statement",
    "Token",
    "JoinClause",
    "UpdateStatement",
    "parse",
    "tokenize",
]
