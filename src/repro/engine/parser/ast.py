"""Statement-level AST produced by the SQL parser.

Expression nodes live in :mod:`repro.engine.expr`; this module defines the
statement shells (SELECT/INSERT/UPDATE/DELETE/CREATE/DROP) the planner
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..expr import Expression
from ..schema import Column
from ..types import SQLValue


@dataclass(frozen=True)
class SelectItem:
    """One projection item: an expression with an optional alias.

    A ``SELECT *`` is represented by a single item whose ``star`` flag is
    set and whose expression is None.
    """

    expression: Optional[Expression]
    alias: Optional[str] = None
    star: bool = False
    aggregate: Optional[str] = None  # COUNT/SUM/AVG/MIN/MAX or None
    distinct: bool = False  # COUNT(DISTINCT x)


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class JoinClause:
    """One JOIN in a SELECT's FROM clause.

    Attributes:
        table: the joined table's name.
        alias: optional alias (qualified column refs use it).
        condition: the ON expression.
        outer: True for LEFT [OUTER] JOIN — unmatched left rows are
            kept, with the joined table's columns NULL.
    """

    table: str
    condition: Expression
    alias: Optional[str] = None
    outer: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT over one table plus zero or more joins."""

    table: str
    items: Tuple[SelectItem, ...]
    where: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    table_alias: Optional[str] = None
    joins: Tuple[JoinClause, ...] = ()
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None


@dataclass(frozen=True)
class InsertStatement:
    """A parsed INSERT with one or more VALUES rows."""

    table: str
    columns: Tuple[str, ...]  # empty tuple means "all, in schema order"
    rows: Tuple[Tuple[Expression, ...], ...]


@dataclass(frozen=True)
class UpdateStatement:
    """A parsed UPDATE."""

    table: str
    assignments: Tuple[Tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class DeleteStatement:
    """A parsed DELETE."""

    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class CreateTableStatement:
    """A parsed CREATE TABLE."""

    table: str
    columns: Tuple[Column, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndexStatement:
    """A parsed CREATE INDEX ... ON table (column) [USING kind]."""

    name: str
    table: str
    column: str
    kind: str = "ordered"


@dataclass(frozen=True)
class DropTableStatement:
    """A parsed DROP TABLE."""

    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class TransactionStatement:
    """BEGIN / COMMIT / ROLLBACK."""

    action: str  # "begin" | "commit" | "rollback"


@dataclass(frozen=True)
class ExplainStatement:
    """EXPLAIN <statement>: describe the plan instead of executing."""

    statement: object


#: Union of all statement types (for type annotations).
Statement = object
