"""Exception hierarchy for the relational engine.

Every error raised by :mod:`repro.engine` derives from :class:`EngineError`
so callers can catch engine failures with a single ``except`` clause while
still distinguishing parse errors from execution errors when needed.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all engine errors."""


class ParseError(EngineError):
    """Raised when SQL text cannot be tokenized or parsed.

    Attributes:
        message: human-readable description of the failure.
        position: character offset into the SQL text, when known.
    """

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.message = message
        self.position = position

    def __str__(self) -> str:
        if self.position >= 0:
            return f"{self.message} (at offset {self.position})"
        return self.message


class CatalogError(EngineError):
    """Raised for schema-level problems: unknown tables, duplicate columns."""


class TypeMismatchError(EngineError):
    """Raised when a value does not conform to its declared column type."""


class ConstraintError(EngineError):
    """Raised on constraint violations (primary key duplicates, NOT NULL)."""


class ExecutionError(EngineError):
    """Raised when a plan fails during execution (bad expression, etc.)."""


class JournalError(EngineError):
    """Raised on write-ahead-journal problems: a bad file header, an
    unjournalable statement (no SQL source available), or an unknown
    record kind during replay. Torn or corrupt *tails* are not errors —
    recovery truncates them by design."""
