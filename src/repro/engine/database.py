"""The `Database` facade: parse + plan + execute in one call.

This is the layer the delay guard wraps. It accepts SQL text or
pre-parsed statements, collects simple execution statistics, and offers
convenience helpers (``insert_rows``, ``explain``) used throughout the
workload generators and benchmarks.

Concurrency: the database owns a writer-preferring, reentrant
:class:`~repro.engine.rwlock.ReadWriteLock`. SELECT and EXPLAIN execute
under the shared read side (:meth:`Database.read_view`), so concurrent
readers proceed in parallel; DML, DDL, and transaction control take the
exclusive write side (:meth:`Database.write_txn`). Reads never mutate
engine state — scans, planner decisions, index lookups, and subquery
binding are pure; the only read-path bookkeeping is
:class:`EngineStats`, which takes its own small lock.

Durability: :meth:`Database.attach_journal` connects a
:class:`~repro.engine.journal.WriteAheadJournal`. Every committed
mutating operation that flows through the database's public surface —
SQL DML/DDL, :meth:`Database.create_table`, :meth:`Database.insert_rows`
— is appended (and fsync'd) before the call returns, under the same
exclusive write lock that applied it. Statements inside an explicit
transaction are buffered and appended as one batch at COMMIT, so the
journal only ever contains committed work; a crash mid-transaction
loses exactly the uncommitted statements. Direct ``catalog``/heap
access bypasses the journal by design (that is how snapshot *loading*
avoids re-journalling itself).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..testing.faults import fire
from .catalog import Catalog
from .errors import JournalError
from .executor import Executor, ResultSet
from .vectorized.executor import VectorizedExecutor
from .parser.ast import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    ExplainStatement,
    InsertStatement,
    SelectStatement,
    TransactionStatement,
    UpdateStatement,
)
from .expr import ColumnRef, Comparison
from .parser.parser import parse, parse_cached
from .planner import choose_access_path
from .rwlock import ReadWriteLock
from .schema import TableSchema
from .table import HeapTable
from .transactions import TransactionError, UndoLog
from .types import SQLValue


@dataclass
class EngineStats:
    """Aggregate execution statistics, by statement kind.

    ``record`` takes an internal lock: statistics are the one piece of
    shared state the *read* path mutates, and concurrent SELECTs under
    the shared engine lock would otherwise lose increments.
    """

    statements: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    rows_returned: int = 0
    rows_written: int = 0
    total_execution_seconds: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, result: ResultSet, elapsed: float) -> None:
        """Fold one statement's outcome into the totals (atomically)."""
        with self._lock:
            self.statements += 1
            self.by_kind[result.statement_kind] = (
                self.by_kind.get(result.statement_kind, 0) + 1
            )
            if result.statement_kind == "select":
                self.rows_returned += len(result.rows)
            else:
                self.rows_written += result.rowcount
            self.total_execution_seconds += elapsed


class Database:
    """An in-process relational database.

    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    >>> _ = db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
    >>> db.execute("SELECT v FROM t WHERE id = 2").scalar()
    'two'
    """

    def __init__(self) -> None:
        self.catalog = Catalog()
        # Columnar execution is the default: it falls back to the
        # classic row-at-a-time path statement-by-statement, emitting
        # bit-identical results either way (see repro.engine.vectorized).
        self.executor: Executor = VectorizedExecutor(self.catalog)
        self._scan_pool = None
        self.stats = EngineStats()
        #: Engine-level reader/writer lock: SELECT/EXPLAIN share the
        #: read side, everything that mutates takes the write side.
        self.rwlock = ReadWriteLock()
        self._transaction: Optional[UndoLog] = None
        #: write-ahead journal, when durability is enabled.
        self._journal = None
        #: journal entries of the open explicit transaction, appended as
        #: one batch at COMMIT and discarded at ROLLBACK.
        self._txn_journal: List[Dict] = []
        #: monotonic commit counter: bumped once per committed mutation
        #: (statement, bulk load, DDL, or explicit-transaction COMMIT).
        #: Caches key entries on it, so any committed change invalidates
        #: everything cached against the previous value. Aligned with
        #: the journal's ``last_seq`` whenever one is attached, so the
        #: epoch survives checkpoints and crash recovery. Like the
        #: journal, direct catalog/heap access bypasses it by design.
        self._mutation_epoch = 0

    # -- snapshot epoch ------------------------------------------------------

    @property
    def mutation_epoch(self) -> int:
        """The current snapshot epoch (monotonic committed-mutation count).

        Reading is lock-free: a plain int read is atomic, and cache
        users tolerate observing the value an instant early or late —
        they re-check it around execution.
        """
        return self._mutation_epoch

    def bump_mutation_epoch(self, floor: int) -> int:
        """Raise the epoch to at least ``floor``; returns the new epoch.

        Used when restoring state: a recovered process must start its
        epoch at (or past) the snapshot's journal high-water mark so no
        cache entry keyed before the crash can ever be current again.
        Never moves the epoch backward.
        """
        with self.write_txn():
            if floor > self._mutation_epoch:
                self._mutation_epoch = floor
            return self._mutation_epoch

    def _advance_mutation_epoch(self) -> None:
        """Bump the epoch for one committed mutation (write lock held)."""
        epoch = self._mutation_epoch + 1
        if self._journal is not None:
            epoch = max(epoch, self._journal.last_seq)
        self._mutation_epoch = epoch

    # -- execution engine selection ------------------------------------------

    def configure_execution(
        self,
        vectorized: bool = True,
        scan_workers: int = 0,
        parallel_scan_min_rows: int = 4096,
    ) -> None:
        """Choose the SELECT execution engine.

        Args:
            vectorized: use the columnar executor (falls back to the
                classic path per statement); False pins the classic
                row-at-a-time executor.
            scan_workers: fork this many read-only scan worker
                processes for large full scans (0 disables; silently
                stays in-process where fork is unavailable).
            parallel_scan_min_rows: smallest full scan handed to the
                worker pool.

        Always tears down any previous worker pool first, so calling
        with defaults is also the clean shutdown path.
        """
        with self.write_txn():
            if self._scan_pool is not None:
                self._scan_pool.close()
                self._scan_pool = None
            if not vectorized:
                self.executor = Executor(self.catalog)
                return
            pool = None
            if scan_workers > 0:
                from .vectorized.workers import ScanWorkerPool

                pool = ScanWorkerPool(
                    self.catalog,
                    workers=scan_workers,
                    epoch=lambda: self._mutation_epoch,
                )
                if not pool.start():
                    pool = None
            self._scan_pool = pool
            self.executor = VectorizedExecutor(
                self.catalog,
                scan_pool=pool,
                parallel_scan_min_rows=parallel_scan_min_rows,
            )

    @property
    def scan_pool(self):
        """The active scan worker pool, or None."""
        return self._scan_pool

    def execution_path_counts(self) -> Dict[str, int]:
        """How many SELECTs each engine path served (observability)."""
        return dict(getattr(self.executor, "path_counts", {}) or {})

    def close(self) -> None:
        """Release process-level resources (scan workers). Idempotent."""
        if self._scan_pool is not None:
            self._scan_pool.close()
            self._scan_pool = None

    def set_rowid_allocation(self, offset: int, stride: int) -> None:
        """Allocate rowids from residue class ``offset + 1 (mod stride)``.

        Cluster shards call this before replaying their journal so rowids
        stay globally unique (see :meth:`Catalog.set_rowid_allocation`).
        """
        with self.write_txn():
            self.catalog.set_rowid_allocation(offset, stride)

    # -- durability ----------------------------------------------------------

    @property
    def journal(self):
        """The attached write-ahead journal, or None."""
        return self._journal

    def attach_journal(self, journal) -> None:
        """Journal every committed mutating operation from now on.

        Attach *after* loading a snapshot (and after replay): loading
        goes through the catalog directly precisely so restored rows are
        not re-journalled.
        """
        with self.write_txn():
            self._journal = journal

    def detach_journal(self) -> None:
        """Stop journalling (the journal itself is left open)."""
        with self.write_txn():
            self._journal = None

    def _journal_entry(self, entry: Dict) -> None:
        """Record one committed mutation; caller holds the write side."""
        if self._transaction is not None:
            self._txn_journal.append(entry)
        else:
            self._journal.append(entry)

    # -- concurrency ---------------------------------------------------------

    @contextmanager
    def read_view(self) -> Iterator["Database"]:
        """Shared read access: a stable database for scans and lookups.

        Reentrant (a reader may nest further read views), and a thread
        holding :meth:`write_txn` may open read views over its own
        uncommitted state.
        """
        self.rwlock.acquire_read()
        try:
            yield self
        finally:
            self.rwlock.release_read()

    @contextmanager
    def write_txn(self) -> Iterator["Database"]:
        """Exclusive write access; excludes readers and other writers.

        Reentrant for the owning thread, so statement execution may
        nest inside an explicit-transaction scope.
        """
        self.rwlock.acquire_write()
        try:
            yield self
        finally:
            self.rwlock.release_write()

    # -- transactions -------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """True while an explicit transaction is open."""
        return self._transaction is not None

    def begin(self) -> None:
        """Open an explicit transaction (no nesting)."""
        with self.write_txn():
            if self._transaction is not None:
                raise TransactionError("a transaction is already open")
            self._transaction = UndoLog()

    def commit(self) -> int:
        """Commit the open transaction; returns mutations kept."""
        with self.write_txn():
            if self._transaction is None:
                raise TransactionError("no transaction to commit")
            count = self._transaction.commit()
            self._transaction = None
            if self._journal is not None and self._txn_journal:
                # One append batch (one fsync) for the whole transaction;
                # only committed statements ever reach the journal.
                self._journal.append_many(self._txn_journal)
            self._txn_journal = []
            if count > 0:
                # One epoch bump for the whole transaction: its effects
                # become visible atomically at COMMIT.
                self._advance_mutation_epoch()
            return count

    def rollback(self) -> int:
        """Roll back the open transaction; returns mutations undone."""
        with self.write_txn():
            if self._transaction is None:
                raise TransactionError("no transaction to roll back")
            count = self._transaction.rollback()
            self._transaction = None
            self._txn_journal = []
            return count

    # -- statement execution ---------------------------------------------

    def execute(
        self,
        sql_or_statement: Union[str, object],
        source: Optional[str] = None,
        tracked: bool = False,
    ) -> ResultSet:
        """Execute one SQL string or pre-parsed statement.

        SELECT and EXPLAIN run under the shared read side of the engine
        lock, so any number of them proceed in parallel; everything
        else (DML, DDL, transaction control) takes the exclusive write
        side. DML statements are atomic: a statement that fails
        part-way (e.g. a multi-row INSERT hitting a duplicate key)
        leaves no effects. Inside an explicit transaction its effects
        are instead queued for COMMIT/ROLLBACK. DDL is rejected inside
        transactions.

        Args:
            source: the SQL text a pre-parsed statement came from. Only
                needed when a journal is attached — the journal records
                statements as text — and ignored for reads. Callers
                passing SQL text directly never need it.
            tracked: mark the journal record as having passed through
                the delay guard. On recovery, only tracked statements
                re-feed the guard's update trackers — replaying an
                operator's direct engine write into them would invent
                tracker state the live run never had.
        """
        fire("engine.execute")
        statement = (
            parse_cached(sql_or_statement)
            if isinstance(sql_or_statement, str)
            else sql_or_statement
        )
        if isinstance(sql_or_statement, str):
            source = sql_or_statement
        if isinstance(statement, TransactionStatement):
            with self.write_txn():
                return self._execute_transaction_control(statement)
        if isinstance(statement, ExplainStatement):
            with self.read_view():
                return self._execute_explain(statement)
        if isinstance(statement, SelectStatement):
            with self.read_view():
                started = time.perf_counter()
                result = self.executor.execute(statement)
                self.stats.record(result, time.perf_counter() - started)
                return result
        with self.write_txn():
            return self._execute_write(statement, source, tracked)

    def _execute_write(
        self,
        statement,
        source: Optional[str] = None,
        tracked: bool = False,
    ) -> ResultSet:
        """Run a mutating statement; caller holds the write side."""
        if self._transaction is not None and isinstance(
            statement,
            (CreateTableStatement, CreateIndexStatement, DropTableStatement),
        ):
            raise TransactionError(
                "DDL is not transactional; COMMIT or ROLLBACK first"
            )
        scope = self._statement_scope(statement)
        started = time.perf_counter()
        try:
            result = self.executor.execute(statement)
        except Exception:
            if scope is not None:
                scope.rollback()
            raise
        if scope is not None:
            if self._transaction is not None:
                scope.merge_into(self._transaction)
            else:
                scope.commit()
        self._journal_statement(result, source, tracked)
        if self._transaction is None and (
            result.statement_kind == "ddl" or result.rowcount > 0
        ):
            # Zero-row DML changed nothing — the journal skips it and
            # caches keyed on the old epoch stay exactly correct.
            self._advance_mutation_epoch()
        self.stats.record(result, time.perf_counter() - started)
        return result

    def _journal_statement(
        self, result: ResultSet, source: Optional[str], tracked: bool = False
    ) -> None:
        """Append a committed statement to the journal, if one is attached.

        DML that affected zero rows is skipped (replay would be a
        no-op); DDL is always recorded. Raises
        :class:`~repro.engine.errors.JournalError` for a pre-parsed
        statement without its SQL text — silently skipping it would make
        recovery diverge.
        """
        if self._journal is None:
            return
        if result.statement_kind != "ddl" and result.rowcount == 0:
            return
        if source is None:
            raise JournalError(
                "cannot journal a pre-parsed statement without its SQL "
                "text; pass execute(..., source=sql)"
            )
        entry = {"k": "sql", "sql": source}
        if tracked:
            entry["g"] = True
        self._journal_entry(entry)

    def _statement_scope(self, statement) -> Optional[UndoLog]:
        """An undo scope covering the statement's target table, if DML."""
        if not isinstance(
            statement, (InsertStatement, UpdateStatement, DeleteStatement)
        ):
            return None
        if not self.catalog.has_table(statement.table):
            return None  # the executor will raise CatalogError
        scope = UndoLog()
        scope.attach(self.catalog.table(statement.table))
        return scope

    def _execute_explain(self, statement: ExplainStatement) -> ResultSet:
        """Describe the plan for the wrapped statement."""
        inner = statement.statement
        lines = []
        table_name = getattr(inner, "table", None)
        if table_name is None or not self.catalog.has_table(table_name):
            lines.append("NO PLAN (not a table statement)")
        else:
            table = self.catalog.table(table_name)
            where = getattr(inner, "where", None)
            joins = getattr(inner, "joins", ())
            if joins:
                lines.append(f"FULL SCAN {table.name}")
                for join in joins:
                    condition = join.condition
                    hash_joinable = (
                        isinstance(condition, Comparison)
                        and condition.op == "="
                        and isinstance(condition.left, ColumnRef)
                        and isinstance(condition.right, ColumnRef)
                    )
                    strategy = "HASH JOIN" if hash_joinable else "NESTED LOOP"
                    outer = "LEFT " if join.outer else ""
                    lines.append(
                        f"{outer}{strategy} {join.table} ON {condition}"
                    )
                if where is not None:
                    lines.append(f"FILTER {where}")
            else:
                path = choose_access_path(self.catalog, table, where)
                lines.append(path.describe())
            if getattr(inner, "group_by", ()):
                keys = ", ".join(str(key) for key in inner.group_by)
                lines.append(f"GROUP BY {keys}")
            if getattr(inner, "order_by", ()):
                lines.append("SORT")
        return ResultSet(
            columns=["plan"],
            rows=[(line,) for line in lines],
            statement_kind="ddl",
        )

    def _execute_transaction_control(
        self, statement: TransactionStatement
    ) -> ResultSet:
        if statement.action == "begin":
            self.begin()
        elif statement.action == "commit":
            self.commit()
        else:
            self.rollback()
        return ResultSet(statement_kind="ddl")

    def execute_many(self, sql_statements: Iterable[str]) -> List[ResultSet]:
        """Execute several statements, returning all result sets."""
        return [self.execute(sql) for sql in sql_statements]

    def query(self, sql: str) -> List[Tuple[SQLValue, ...]]:
        """Execute a SELECT and return just its rows."""
        return self.execute(sql).rows

    # -- schema helpers ------------------------------------------------------

    def create_table(self, schema: TableSchema) -> HeapTable:
        """Create a table from a pre-built schema object."""
        with self.write_txn():
            table = self.catalog.create_table(schema)
            if self._journal is not None:
                self._journal_entry(
                    {
                        "k": "schema",
                        "table": schema.name,
                        "columns": [c.to_dict() for c in schema.columns],
                    }
                )
            if self._transaction is None:
                self._advance_mutation_epoch()
            return table

    def table(self, name: str) -> HeapTable:
        """Direct access to a heap table (bypasses SQL)."""
        return self.catalog.table(name)

    def insert_rows(
        self, table_name: str, rows: Iterable[Sequence[SQLValue]]
    ) -> List[int]:
        """Bulk-insert positional rows without SQL parsing overhead.

        This is the fast path used when loading large synthetic datasets
        for benchmarks; it performs the same validation as INSERT, and
        — like INSERT — is atomic: a row failing validation part-way
        (e.g. a duplicate key) rolls back the whole batch, so the heap
        never holds, and the journal never records, a partial load.
        """
        materialized = [list(row) for row in rows]
        with self.write_txn():
            table = self.catalog.table(table_name)
            scope = UndoLog()
            scope.attach(table)
            try:
                rowids = [table.insert(row) for row in materialized]
            except Exception:
                scope.rollback()
                raise
            if self._transaction is not None:
                scope.merge_into(self._transaction)
            else:
                scope.commit()
            if self._journal is not None and materialized:
                self._journal_entry(
                    {"k": "rows", "table": table_name, "rows": materialized}
                )
            if self._transaction is None and materialized:
                self._advance_mutation_epoch()
            return rowids

    # -- introspection --------------------------------------------------------

    def explain(self, sql: str) -> str:
        """Return the access path a SELECT/UPDATE/DELETE would use."""
        statement = parse(sql)
        where = getattr(statement, "where", None)
        table_name = getattr(statement, "table", None)
        with self.read_view():
            if table_name is None or not self.catalog.has_table(table_name):
                return "NO PLAN (not a table statement)"
            table = self.catalog.table(table_name)
            path = choose_access_path(self.catalog, table, where)
            return path.describe()

    def row_count(self, table_name: str) -> int:
        """Number of rows currently in a table."""
        with self.read_view():
            return len(self.catalog.table(table_name))

    def __repr__(self) -> str:
        tables = ", ".join(self.catalog.table_names()) or "<empty>"
        return f"Database(tables=[{tables}])"
