"""Fault-injection driver: kill one epoch of a 2-shard cluster.

Run as a subprocess by ``test_recovery_sigkill.py``::

    python cluster_crash_driver.py WORKDIR

Builds a journalled 2-shard :class:`~repro.cluster.ClusterService` in
WORKDIR and walks it through a deterministic timeline designed so the
two shards checkpoint *at different moments*:

- **phase A** — warm every tuple through the router, gossip, then
  checkpoint shard 0 only.  Shard 0's snapshot freezes here.
- **phase B** — journalled inserts plus more read traffic, gossip, then
  checkpoint shard 1 only.  Shard 1's snapshot now carries a *mirror*
  of shard 0's phase-B popularity that shard 0's own snapshot missed.
- **phase C** — read traffic that is never checkpointed anywhere: the
  honest cost of crashing, lost on every path.

The driver then writes the expected post-recovery state (rows, per-key
popularity as of the end of phase B, and shard 0's stale phase-A view)
to ``WORKDIR/expected.json``, fsyncs it, drops a ``ready`` marker, and
spins until the parent SIGKILLs it.  The parent recovers the cluster
from WORKDIR and demands that one anti-entropy round restore shard 0's
phase-B mass from shard 1's mirror.

Counts use ``decay_rate=1.0`` (no per-request decay), so every expected
value is exact — independent of the virtual clock's position.
"""

import json
import os
import sys
import time

REPO_SRC = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "src"
)
sys.path.insert(0, REPO_SRC)

from repro.cluster import ClusterService  # noqa: E402
from repro.core.config import GuardConfig  # noqa: E402

TABLE = "items"
SEED_IDS = tuple(range(1, 21))
PHASE_B_INSERT_IDS = (21, 22, 23, 24)


def make_config() -> GuardConfig:
    return GuardConfig(
        policy="popularity", cap=10.0, unit=600.0, decay_rate=1.0
    )


def build_cluster(workdir) -> ClusterService:
    return ClusterService(
        shard_count=2, guard_config=make_config(), data_dir=workdir
    )


def run_setup(cluster: ClusterService) -> None:
    cluster.query(
        None,
        f"CREATE TABLE {TABLE} (id INTEGER PRIMARY KEY, v TEXT)",
    )
    for i in SEED_IDS:
        cluster.query(None, f"INSERT INTO {TABLE} VALUES ({i}, 'seed-{i}')")


def run_phase_a(cluster: ClusterService) -> None:
    for i in SEED_IDS:
        cluster.query(None, f"SELECT * FROM {TABLE} WHERE id = {i}")


def run_phase_b(cluster: ClusterService) -> None:
    for i in PHASE_B_INSERT_IDS:
        cluster.query(None, f"INSERT INTO {TABLE} VALUES ({i}, 'b-{i}')")
    # Triple-weight reads on the odd ids: unambiguous phase-B mass on
    # keys spread over both shards.
    for _ in range(3):
        for i in SEED_IDS[::2]:
            cluster.query(None, f"SELECT * FROM {TABLE} WHERE id = {i}")


def run_phase_c(cluster: ClusterService) -> None:
    for _ in range(2):
        cluster.query(None, f"SELECT COUNT(*) FROM {TABLE}")


def key_counts(cluster: ClusterService) -> dict:
    """``{rowid: merged popularity count}`` for every live tuple.

    Keyed by rowid (stringified for JSON) because that is what the
    trackers key on; the merged view on shard 0's guard is the
    cluster's authoritative count once gossip has run.
    """
    result = cluster.query(
        None, f"SELECT id FROM {TABLE}", record=False
    ).result
    popularity = cluster.guards[0].popularity
    return {
        str(rowid): popularity.present_count((TABLE, rowid))
        for rowid in result.rowids
    }


def fsync_json(path: str, payload) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def main() -> None:
    workdir = sys.argv[1]
    cluster = build_cluster(workdir)

    run_setup(cluster)
    run_phase_a(cluster)
    cluster.gossip.run_round()
    cluster.shards[0].checkpoint()
    phase_a_counts = key_counts(cluster)

    run_phase_b(cluster)
    cluster.gossip.run_round()
    cluster.shards[1].checkpoint()
    phase_b_counts = key_counts(cluster)

    expected = {
        "rows": sorted(
            cluster.query(
                None, f"SELECT id, v FROM {TABLE}", record=False
            ).result.rows
        ),
        "phase_a_counts": phase_a_counts,
        "phase_b_counts": phase_b_counts,
        "total_requests": cluster.guards[0].popularity.total_requests,
    }

    run_phase_c(cluster)  # recorded only in memory: lost by design

    fsync_json(os.path.join(workdir, "expected.json"), expected)
    with open(os.path.join(workdir, "ready"), "w") as marker:
        marker.write("ok")
        marker.flush()
        os.fsync(marker.fileno())

    while True:  # hold state in memory until the parent SIGKILLs us
        time.sleep(60)


if __name__ == "__main__":
    main()
