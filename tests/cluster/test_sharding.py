"""Unit tests for the hash partitioner and rowid stride allocation."""

import pytest

from repro.cluster.sharding import (
    ShardMap,
    hash_partition,
    pk_values_from_where,
    render_insert_sql,
)
from repro.engine.database import Database
from repro.engine.expr import Literal
from repro.engine.parser.normalize import normalize_sql
from repro.engine.parser.parser import parse_cached


def where_of(sql: str):
    return parse_cached(normalize_sql(sql)).where


class TestHashPartition:
    def test_deterministic_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for value in (1, 2, "abc", 3.5, None, 10**12):
                first = hash_partition("t", value, shards)
                assert first == hash_partition("t", value, shards)
                assert 0 <= first < shards

    def test_case_insensitive_table(self):
        assert hash_partition("Users", 7, 4) == hash_partition(
            "users", 7, 4
        )

    def test_type_tagged(self):
        """1 and "1" may collide by luck but must hash independently."""
        spread = {
            (hash_partition("t", i, 8), hash_partition("t", str(i), 8))
            for i in range(64)
        }
        assert any(a != b for a, b in spread)

    def test_values_spread_across_shards(self):
        owners = {hash_partition("t", i, 4) for i in range(100)}
        assert owners == {0, 1, 2, 3}


class TestShardMap:
    def test_owner_of_rowid_is_residue_class(self):
        shard_map = ShardMap(4)
        for shard in range(4):
            for step in range(5):
                rowid = (shard + 1) + step * 4
                assert shard_map.owner_of_rowid(rowid) == shard

    def test_split_rows_partitions_everything(self):
        shard_map = ShardMap(3)
        rows = [(i, f"v{i}") for i in range(30)]
        grouped = shard_map.split_rows("t", 0, rows)
        assert sum(len(group) for group in grouped) == 30
        for shard, group in enumerate(grouped):
            for row in group:
                assert shard_map.shard_for("t", row[0]) == shard

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardMap(0)


class TestStridedRowids:
    def test_default_allocation_unchanged(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (10), (11), (12)")
        assert db.table("t").rowids() == [1, 2, 3]

    def test_stride_allocates_residue_class(self):
        db = Database()
        db.set_rowid_allocation(2, 4)
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (10), (11), (12)")
        assert db.table("t").rowids() == [3, 7, 11]

    def test_stride_applies_to_existing_tables(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.set_rowid_allocation(1, 2)
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert db.table("t").rowids() == [2, 4]

    def test_restore_stays_on_residue_class(self):
        """Restoring a foreign rowid must not derail the allocator."""
        db = Database()
        db.set_rowid_allocation(0, 4)
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        table = db.table("t")
        with db.write_txn():
            table.restore(7, (99,))  # shard 2's rowid, e.g. via merge
        db.execute("INSERT INTO t VALUES (1)")
        new_rowid = db.table("t").rowids()[-1]
        assert new_rowid > 7
        assert (new_rowid - 1) % 4 == 0


class TestPkProbe:
    def test_equality_proves_value(self):
        where = where_of("SELECT * FROM t WHERE id = 7")
        assert pk_values_from_where(where, "id", "t") == [7]

    def test_reversed_equality(self):
        where = where_of("SELECT * FROM t WHERE 7 = id")
        assert pk_values_from_where(where, "id", "t") == [7]

    def test_qualified_and_aliased(self):
        where = where_of("SELECT * FROM t WHERE t.id = 3")
        assert pk_values_from_where(where, "id", "t") == [3]
        where = where_of("SELECT * FROM t u WHERE u.id = 3")
        assert pk_values_from_where(where, "id", "t", alias="u") == [3]
        assert pk_values_from_where(where, "id", "t") is None

    def test_in_list(self):
        where = where_of("SELECT * FROM t WHERE id IN (1, 2, 3)")
        assert pk_values_from_where(where, "id", "t") == [1, 2, 3]

    def test_conjunct_with_other_predicates(self):
        where = where_of("SELECT * FROM t WHERE v > 5 AND id = 2")
        assert pk_values_from_where(where, "id", "t") == [2]

    def test_unprovable_shapes_return_none(self):
        for sql in (
            "SELECT * FROM t WHERE id > 7",
            "SELECT * FROM t WHERE id = 1 OR id = 2",
            "SELECT * FROM t WHERE id NOT IN (1, 2)",
            "SELECT * FROM t WHERE id = v",
            "SELECT * FROM t WHERE other = 7",
        ):
            assert pk_values_from_where(where_of(sql), "id", "t") is None

    def test_no_pk_or_no_where(self):
        where = where_of("SELECT * FROM t WHERE id = 7")
        assert pk_values_from_where(where, None, "t") is None
        assert pk_values_from_where(None, "id", "t") is None


class TestRenderInsert:
    def test_round_trips_through_the_engine(self):
        db = Database()
        db.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT, x REAL)"
        )
        sql = render_insert_sql(
            "t",
            [],
            [
                (Literal(1), Literal("it's"), Literal(2.5)),
                (Literal(2), Literal(None), Literal(-1.0)),
            ],
        )
        db.execute(sql)
        assert sorted(db.query("SELECT id, v, x FROM t")) == [
            (1, "it's", 2.5),
            (2, None, -1.0),
        ]

    def test_explicit_columns(self):
        sql = render_insert_sql(
            "t", ["id", "v"], [(Literal(1), Literal("a"))]
        )
        assert sql == "INSERT INTO t (id, v) VALUES (1, 'a')"
