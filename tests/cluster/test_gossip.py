"""Anti-entropy convergence, lag accounting, and the background loop."""

import time

from repro.cluster import ClusterService
from repro.cluster.gossip import GossipCoordinator
from repro.core import GuardConfig
from repro.core.guard import DelayGuard
from repro.engine.database import Database

import pytest


def build_guards(count=3, decay_rate=1.0):
    guards = []
    for index in range(count):
        db = Database()
        guards.append(
            DelayGuard(
                db,
                config=GuardConfig(
                    policy="popularity",
                    cap=10.0,
                    decay_rate=decay_rate,
                    node_id=f"shard-{index}",
                ),
            )
        )
    return guards


class TestRounds:
    def test_round_converges_all_views(self):
        guards = build_guards(3)
        guards[0].popularity.record(("t", 1), weight=5.0)
        guards[1].popularity.record(("t", 2), weight=3.0)
        guards[2].popularity.record(("t", 3), weight=2.0)
        gossip = GossipCoordinator(guards)
        gossip.run_round()
        for guard in guards:
            assert guard.popularity.present_count(("t", 1)) == 5.0
            assert guard.popularity.present_count(("t", 2)) == 3.0
            assert guard.popularity.present_count(("t", 3)) == 2.0
            assert guard.popularity.total_requests == 10.0
        assert gossip.count_divergence() == pytest.approx(0.0)
        assert gossip.shard_lags() == [0, 0, 0]

    def test_repeated_rounds_are_idempotent(self):
        guards = build_guards(2)
        guards[0].popularity.record(("t", 1), weight=4.0)
        gossip = GossipCoordinator(guards)
        gossip.run_round()
        first = guards[1].popularity.present_count(("t", 1))
        for _ in range(5):
            gossip.run_round()
        assert guards[1].popularity.present_count(("t", 1)) == first
        # A quiescent mesh exchanges nothing.
        assert gossip.run_round() == 0

    def test_lag_counts_unseen_entries(self):
        guards = build_guards(2)
        gossip = GossipCoordinator(guards)
        gossip.run_round()
        for key in range(5):
            guards[0].popularity.record(("t", key))
        lags = gossip.shard_lags()
        assert lags[1] > 0  # shard 1 has not seen shard 0's writes
        gossip.run_round()
        assert gossip.shard_lags() == [0, 0]

    def test_update_rates_gossip_too(self):
        guards = build_guards(2)
        guards[0].update_rates.record_update(("t", 1))
        GossipCoordinator(guards).run_round()
        assert guards[1].update_rates.rate(("t", 1)) > 0

    def test_divergence_tracks_unconverged_mass(self):
        guards = build_guards(2)
        gossip = GossipCoordinator(guards)
        guards[0].popularity.record(("t", 1), weight=8.0)
        assert gossip.count_divergence() == pytest.approx(8.0)
        gossip.run_round()
        assert gossip.count_divergence() == pytest.approx(0.0)


class TestBackgroundLoop:
    def test_interval_loop_runs_rounds(self):
        guards = build_guards(2)
        guards[0].popularity.record(("t", 1))
        gossip = GossipCoordinator(guards, interval=0.01)
        gossip.start()
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if guards[1].popularity.present_count(("t", 1)) > 0:
                    break
                time.sleep(0.01)
            assert guards[1].popularity.present_count(("t", 1)) == 1.0
            assert gossip.running
        finally:
            gossip.stop()
        assert not gossip.running

    def test_start_requires_interval(self):
        gossip = GossipCoordinator(build_guards(2))
        with pytest.raises(ValueError, match="interval"):
            gossip.start()

    def test_cluster_service_starts_and_stops_loop(self):
        cluster = ClusterService(
            shard_count=2,
            guard_config=GuardConfig(policy="popularity", cap=10.0),
            gossip_interval=0.01,
        )
        try:
            assert cluster.gossip.running
        finally:
            cluster.close()
        assert not cluster.gossip.running

    def test_gossip_off_means_no_coordinator(self):
        cluster = ClusterService(shard_count=2, gossip=False)
        assert cluster.gossip is None
        assert cluster.cluster_health()["gossip"] is None


class _FlakyGuard:
    """Proxy guard whose digest path can be switched off (dead peer)."""

    def __init__(self, guard):
        self._guard = guard
        self.down = False
        self.digest_calls = 0

    def gossip_digest(self, versions=None):
        self.digest_calls += 1
        if self.down:
            raise OSError("peer unreachable")
        return self._guard.gossip_digest(versions)

    def __getattr__(self, name):
        return getattr(self._guard, name)


class TestPeerBackoff:
    """Unreachable peers are retried on a capped jittered backoff."""

    def build(self):
        import random

        from repro.core.resilience import BackoffPolicy

        clock = [0.0]
        guards = build_guards(3)
        flaky = _FlakyGuard(guards[2])
        gossip = GossipCoordinator(
            [guards[0], guards[1], flaky],
            backoff=BackoffPolicy(base=1.0, cap=8.0, rng=random.Random(7)),
            time_source=lambda: clock[0],
        )
        return clock, guards, flaky, gossip

    def test_failures_open_a_backoff_window(self):
        clock, guards, flaky, gossip = self.build()
        flaky.down = True
        gossip.run_round()
        # Both healthy destinations failed against the flaky source.
        assert gossip.peer_failures_total == 2
        assert gossip.peers_backed_off() == 2
        calls = flaky.digest_calls
        # Same instant: the pairs sit inside their windows and are
        # skipped — no repeated hammering of a dead peer every round.
        gossip.run_round()
        assert flaky.digest_calls == calls
        assert gossip.exchanges_skipped_total == 2
        assert gossip.stats()["peers_backed_off"] == 2

    def test_mesh_converges_around_the_hole(self):
        clock, guards, flaky, gossip = self.build()
        guards[0].popularity.record(("t", 1), weight=5.0)
        flaky.down = True
        gossip.run_round()
        # The healthy pair still exchanged: shard 1 adopted shard 0's
        # mass even though shard 2 was unreachable as a source.
        assert guards[1].popularity.present_count(("t", 1)) == 5.0
        # The flaky shard still *receives* (its own digest is what
        # fails), so it converges too.
        assert guards[2].popularity.present_count(("t", 1)) == 5.0

    def test_recovery_resumes_full_rate_and_converges(self):
        clock, guards, flaky, gossip = self.build()
        guards[2].popularity.record(("t", 9), weight=3.0)
        flaky.down = True
        for _ in range(3):
            gossip.run_round()
        failures = gossip.peer_failures_total
        # The peer comes back after the longest possible window.
        clock[0] = 100.0
        flaky.down = False
        gossip.run_round()
        assert gossip.peer_failures_total == failures
        assert gossip.peers_backed_off() == 0
        for guard in guards[:2]:
            assert guard.popularity.present_count(("t", 9)) == 3.0
        # Full rate again: the next round probes the pair immediately.
        calls = flaky.digest_calls
        gossip.run_round()
        assert flaky.digest_calls == calls + 2
