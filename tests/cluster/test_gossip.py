"""Anti-entropy convergence, lag accounting, and the background loop."""

import time

from repro.cluster import ClusterService
from repro.cluster.gossip import GossipCoordinator
from repro.core import GuardConfig
from repro.core.guard import DelayGuard
from repro.engine.database import Database

import pytest


def build_guards(count=3, decay_rate=1.0):
    guards = []
    for index in range(count):
        db = Database()
        guards.append(
            DelayGuard(
                db,
                config=GuardConfig(
                    policy="popularity",
                    cap=10.0,
                    decay_rate=decay_rate,
                    node_id=f"shard-{index}",
                ),
            )
        )
    return guards


class TestRounds:
    def test_round_converges_all_views(self):
        guards = build_guards(3)
        guards[0].popularity.record(("t", 1), weight=5.0)
        guards[1].popularity.record(("t", 2), weight=3.0)
        guards[2].popularity.record(("t", 3), weight=2.0)
        gossip = GossipCoordinator(guards)
        gossip.run_round()
        for guard in guards:
            assert guard.popularity.present_count(("t", 1)) == 5.0
            assert guard.popularity.present_count(("t", 2)) == 3.0
            assert guard.popularity.present_count(("t", 3)) == 2.0
            assert guard.popularity.total_requests == 10.0
        assert gossip.count_divergence() == pytest.approx(0.0)
        assert gossip.shard_lags() == [0, 0, 0]

    def test_repeated_rounds_are_idempotent(self):
        guards = build_guards(2)
        guards[0].popularity.record(("t", 1), weight=4.0)
        gossip = GossipCoordinator(guards)
        gossip.run_round()
        first = guards[1].popularity.present_count(("t", 1))
        for _ in range(5):
            gossip.run_round()
        assert guards[1].popularity.present_count(("t", 1)) == first
        # A quiescent mesh exchanges nothing.
        assert gossip.run_round() == 0

    def test_lag_counts_unseen_entries(self):
        guards = build_guards(2)
        gossip = GossipCoordinator(guards)
        gossip.run_round()
        for key in range(5):
            guards[0].popularity.record(("t", key))
        lags = gossip.shard_lags()
        assert lags[1] > 0  # shard 1 has not seen shard 0's writes
        gossip.run_round()
        assert gossip.shard_lags() == [0, 0]

    def test_update_rates_gossip_too(self):
        guards = build_guards(2)
        guards[0].update_rates.record_update(("t", 1))
        GossipCoordinator(guards).run_round()
        assert guards[1].update_rates.rate(("t", 1)) > 0

    def test_divergence_tracks_unconverged_mass(self):
        guards = build_guards(2)
        gossip = GossipCoordinator(guards)
        guards[0].popularity.record(("t", 1), weight=8.0)
        assert gossip.count_divergence() == pytest.approx(8.0)
        gossip.run_round()
        assert gossip.count_divergence() == pytest.approx(0.0)


class TestBackgroundLoop:
    def test_interval_loop_runs_rounds(self):
        guards = build_guards(2)
        guards[0].popularity.record(("t", 1))
        gossip = GossipCoordinator(guards, interval=0.01)
        gossip.start()
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if guards[1].popularity.present_count(("t", 1)) > 0:
                    break
                time.sleep(0.01)
            assert guards[1].popularity.present_count(("t", 1)) == 1.0
            assert gossip.running
        finally:
            gossip.stop()
        assert not gossip.running

    def test_start_requires_interval(self):
        gossip = GossipCoordinator(build_guards(2))
        with pytest.raises(ValueError, match="interval"):
            gossip.start()

    def test_cluster_service_starts_and_stops_loop(self):
        cluster = ClusterService(
            shard_count=2,
            guard_config=GuardConfig(policy="popularity", cap=10.0),
            gossip_interval=0.01,
        )
        try:
            assert cluster.gossip.running
        finally:
            cluster.close()
        assert not cluster.gossip.running

    def test_gossip_off_means_no_coordinator(self):
        cluster = ClusterService(shard_count=2, gossip=False)
        assert cluster.gossip is None
        assert cluster.cluster_health()["gossip"] is None
