"""Replication primary driver: ship over TCP, then die by SIGKILL.

Run as a subprocess by ``test_failover_sigkill.py``::

    python replication_crash_driver.py WORKDIR PORT

Builds a journalled single-shard
:class:`~repro.service.DataProviderService` in WORKDIR and acts as the
*primary* end of a replication stream: it connects to the parent's
listening socket, then ships ``BATCHES`` batches of freshly committed
journal frames (plus the tracker digest piggyback) using the exact
wire protocol from :mod:`repro.cluster.replication`, waiting for the
follower's ack after each one. After each acked batch it rewrites
``WORKDIR/expected.json`` (acked seq, live rows, per-key mandated
delays, request totals) and fsyncs it — that file is the reference
state "as of the last acknowledged shipment".

Once every batch is acked it commits a **doomed suffix** — journalled
inserts and read traffic that are never shipped — then drops a
``ready`` marker and spins until the parent SIGKILLs it. The parent
promotes its in-process follower and demands the exact committed
prefix plus never-understated delays.

``decay_rate=1.0`` keeps every expected value exact.
"""

import json
import os
import socket
import sys
import time

REPO_SRC = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "src"
)
sys.path.insert(0, REPO_SRC)

from repro.cluster.replication import (  # noqa: E402
    WireDecoder,
    encode_message,
)
from repro.core.config import GuardConfig  # noqa: E402
from repro.engine.journal import JournalFollower  # noqa: E402
from repro.service import DataProviderService  # noqa: E402

TABLE = "items"
BATCHES = 3
SEED_IDS = tuple(range(1, 13))
DOOMED_IDS = (801, 802, 803)


def make_config() -> GuardConfig:
    return GuardConfig(
        policy="popularity",
        cap=10.0,
        unit=600.0,
        decay_rate=1.0,
        node_id="primary",
    )


def fsync_json(path: str, payload) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def expected_snapshot(service, acked_seq: int) -> dict:
    keys = [key for key, _ in service.guard.popularity.snapshot()]
    return {
        "acked_seq": acked_seq,
        "rows": sorted(
            map(list, service.database.query(f"SELECT id, v FROM {TABLE}"))
        ),
        "keys": [list(key) for key in keys],
        "delays": service.guard.policy.delays_for(keys),
        "total_requests": service.guard.popularity.total_requests,
    }


def await_ack(sock: socket.socket) -> dict:
    decoder = WireDecoder()
    while True:
        data = sock.recv(65536)
        if not data:
            raise RuntimeError("follower hung up before acking")
        messages = decoder.feed(data)
        if messages:
            return messages[-1]


def run_batch(service, batch: int) -> None:
    """One batch of committed traffic: writes plus priced reads."""
    base = 100 * (batch + 1)
    for offset in range(3):
        service.guard.execute(
            f"INSERT INTO {TABLE} VALUES ({base + offset}, 'b{batch}')",
            sleep=False,
        )
    for i in SEED_IDS[: 4 + batch]:
        service.guard.execute(
            f"SELECT * FROM {TABLE} WHERE id = {i}", sleep=False
        )


def main() -> None:
    workdir, port = sys.argv[1], int(sys.argv[2])
    service = DataProviderService(
        guard_config=make_config(),
        journal_path=os.path.join(workdir, "primary.journal"),
    )
    service.guard.execute(
        f"CREATE TABLE {TABLE} (id INTEGER PRIMARY KEY, v TEXT)",
        sleep=False,
    )
    for i in SEED_IDS:
        service.guard.execute(
            f"INSERT INTO {TABLE} VALUES ({i}, 'seed-{i}')", sleep=False
        )

    tail = JournalFollower(service.journal.path)
    peer_versions = None
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    try:
        for batch in range(BATCHES):
            if batch:  # batch 0 ships the seed traffic itself
                run_batch(service, batch)
            entries = [record.payload for record in tail.poll()]
            message = {
                "t": "ship",
                "group": 0,
                "term": 1,
                "entries": entries,
                "digest": service.guard.gossip_digest(peer_versions),
            }
            sock.sendall(encode_message(message))
            ack = await_ack(sock)
            if ack.get("t") != "ack":
                raise RuntimeError(f"expected ack, got {ack!r}")
            peer_versions = ack.get("versions")
            fsync_json(
                os.path.join(workdir, "expected.json"),
                expected_snapshot(service, int(ack["seq"])),
            )

        # The doomed suffix: committed locally, never shipped. The
        # parent's follower must serve the prefix without any of this.
        # Committed *before* the ready marker so the parent's SIGKILL
        # cannot race the suffix out of existence (the non-vacuousness
        # check needs the primary journal to really run past the ack).
        for i in DOOMED_IDS:
            service.guard.execute(
                f"INSERT INTO {TABLE} VALUES ({i}, 'doomed')", sleep=False
            )
        for _ in range(5):
            service.guard.execute(
                f"SELECT * FROM {TABLE} WHERE id = {SEED_IDS[0]}",
                sleep=False,
            )

        with open(os.path.join(workdir, "ready"), "w") as marker:
            marker.write("ok")
            marker.flush()
            os.fsync(marker.fileno())

        while True:  # hold the socket open until the parent SIGKILLs us
            time.sleep(60)
    finally:
        sock.close()


if __name__ == "__main__":
    main()
