"""ClusterService behind a DelayServer: the whole stack, unchanged API."""

import json

import pytest

from repro.cluster import ClusterService
from repro.core import AccountPolicy, GuardConfig
from repro.server import DelayClient, DelayServer
from repro.service import DataProviderService

CONFIG = dict(policy="popularity", cap=20.0, unit=600.0)


def build_cluster(**kwargs):
    kwargs.setdefault("guard_config", GuardConfig(**CONFIG))
    cluster = ClusterService(shard_count=2, **kwargs)
    cluster.query(
        None,
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)",
    )
    for i in range(1, 21):
        cluster.query(None, f"INSERT INTO t VALUES ({i}, 'v{i}')")
    return cluster


class TestServerIntegration:
    def test_query_report_health_over_tcp(self):
        cluster = build_cluster()
        server = DelayServer(cluster)
        server.start()
        try:
            with DelayClient(*server.address) as client:
                response = client.query("SELECT * FROM t WHERE id = 5")
                assert response["rows"] == [[5, "v5"]]
                scatter = client.query("SELECT COUNT(*) FROM t")
                assert scatter["rows"] == [[20]]
                health = client.health()
                cluster_view = health["cluster"]
                assert cluster_view["shard_count"] == 2
                assert cluster_view["population"] == 20
                assert cluster_view["routing"]["scatter_queries"] >= 1
                assert (
                    cluster_view["routing"]["single_shard_queries"] >= 1
                )
                assert len(cluster_view["shards"]) == 2
                assert health["staleness"]  # merged staleness present
                report = client.report()
                assert report["queries"] >= 2
        finally:
            server.stop()
            cluster.close()

    def test_health_payload_is_json_serialisable(self):
        cluster = build_cluster()
        server = DelayServer(cluster)
        server.start()
        try:
            with DelayClient(*server.address) as client:
                json.dumps(client.health())
        finally:
            server.stop()
            cluster.close()

    def test_register_and_identities_over_tcp(self):
        cluster = ClusterService(
            shard_count=2,
            guard_config=GuardConfig(**CONFIG),
            account_policy=AccountPolicy(),
        )
        cluster.register("seed")
        cluster.query(
            "seed", "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
        )
        for i in range(1, 21):
            cluster.query("seed", f"INSERT INTO t VALUES ({i}, 'v{i}')")
        server = DelayServer(cluster)
        server.start()
        try:
            with DelayClient(*server.address) as client:
                client.register("alice")
                response = client.query(
                    "SELECT * FROM t WHERE id = 3", identity="alice"
                )
                assert response["rows"] == [[3, "v3"]]
        finally:
            server.stop()
            cluster.close()


class TestReport:
    def test_report_counts_router_not_shards(self):
        cluster = build_cluster()
        for _ in range(5):
            cluster.query(None, "SELECT * FROM t WHERE id = 1")
        report = cluster.report()
        # 21 fixture statements + 5 reads, each counted exactly once.
        assert report.queries == 26
        assert report.extraction_cost > 0
        assert report.max_extraction_cost == pytest.approx(
            20 * CONFIG["cap"]
        )

    def test_extraction_cost_matches_single_node(self):
        cluster = build_cluster()
        reference = DataProviderService(
            guard_config=GuardConfig(**CONFIG)
        )
        reference.query(
            None, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
        )
        for i in range(1, 21):
            reference.query(None, f"INSERT INTO t VALUES ({i}, 'v{i}')")
        for i in range(1, 11):
            cluster.query(None, f"SELECT * FROM t WHERE id = {i}")
            reference.query(None, f"SELECT * FROM t WHERE id = {i}")
        cluster.gossip.run_round()
        assert cluster.guard.extraction_cost() == pytest.approx(
            reference.guard.extraction_cost(), rel=1e-9
        )


class TestDurability:
    def test_checkpoint_and_recover_round_trip(self, tmp_path):
        cluster = build_cluster(data_dir=tmp_path)
        for _ in range(4):
            cluster.query(None, "SELECT * FROM t WHERE id = 7")
        cluster.gossip.run_round()
        cluster.checkpoint()
        cluster.query(None, "INSERT INTO t VALUES (21, 'post')")
        before = sorted(
            cluster.query(
                None, "SELECT id, v FROM t", record=False
            ).result.rows
        )
        cluster.close()

        recovered = ClusterService.recover(
            shard_count=2,
            data_dir=tmp_path,
            guard_config=GuardConfig(**CONFIG),
        )
        after = sorted(
            recovered.query(
                None, "SELECT id, v FROM t", record=False
            ).result.rows
        )
        assert after == before
        # Learned popularity survived: id=7 is still the hottest tuple.
        owner = recovered.shard_map.shard_for("t", 7)
        snapshot = recovered.guards[owner].popularity.snapshot()
        assert snapshot, "owner shard lost its popularity state"
        recovered.close()

    def test_recovered_rowids_stay_on_stride(self, tmp_path):
        cluster = build_cluster(data_dir=tmp_path)
        cluster.checkpoint()
        cluster.query(None, "INSERT INTO t VALUES (30, 'x')")
        cluster.close()
        recovered = ClusterService.recover(
            shard_count=2,
            data_dir=tmp_path,
            guard_config=GuardConfig(**CONFIG),
        )
        recovered.query(None, "INSERT INTO t VALUES (31, 'y')")
        for index, shard in enumerate(recovered.shards):
            for rowid in shard.database.table("t").rowids():
                assert (rowid - 1) % 2 == index
        recovered.close()

    def test_durability_health_aggregates(self, tmp_path):
        cluster = build_cluster(data_dir=tmp_path)
        health = cluster.durability_health()
        assert health["journal_attached"] is True
        assert len(health["shards"]) == 2
        assert health["journal_lag"] > 0  # nothing checkpointed yet
        cluster.checkpoint()
        assert cluster.durability_health()["journal_lag"] == 0
        cluster.close()


class TestClusterGuardSurface:
    def test_staleness_merges_population(self):
        cluster = build_cluster()
        cluster.query(None, "UPDATE t SET v = 'u' WHERE id = 3")
        report = cluster.guard.refresh_staleness_gauges()
        assert report["t"]["population"] == 20
        assert report["t"]["updated_keys"] >= 1
        assert 0.0 <= report["t"]["smax_fraction"] <= 1.0

    def test_result_cache_absent(self):
        cluster = build_cluster()
        assert cluster.guard.result_cache is None

    def test_single_shard_cluster_works(self):
        cluster = ClusterService(
            shard_count=1, guard_config=GuardConfig(**CONFIG)
        )
        cluster.query(None, "CREATE TABLE t (id INTEGER PRIMARY KEY)")
        cluster.query(None, "INSERT INTO t VALUES (1), (2)")
        result = cluster.query(None, "SELECT COUNT(*) FROM t")
        assert result.result.rows == [(2,)]
