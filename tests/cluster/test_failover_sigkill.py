"""SIGKILL the primary OS process; the in-process follower takes over.

The driver (``replication_crash_driver.py``) is a real primary in a
real child process, shipping committed journal frames over a TCP
socket with the production wire protocol. This parent is the follower
side: a :class:`~repro.cluster.replication.ReplicaMember` wrapping a
live service, grouped with a *process-backed* member standing in for
the child, under a :class:`~repro.cluster.replication.GroupMonitor`
probing at a tight interval.

After the last acked shipment the child commits a doomed suffix and is
SIGKILLed. The acceptance criteria from the replication design:

* the monitor notices and promotes within its probe interval (with a
  generous CI slack);
* the promoted follower serves **exactly** the committed prefix — its
  replica journal is byte-identical to the dead primary's journal up
  to the acked seq, and none of the doomed rows exist;
* promotion never understates the defense: every delay the promoted
  guard mandates is >= the delay the primary mandated at the last
  acknowledged shipment.
"""

import dataclasses
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cluster.replication import (
    PRIMARY,
    GroupMonitor,
    ReplicaGroup,
    ReplicaMember,
)
from repro.engine.journal import WriteAheadJournal, fingerprint_journal
from repro.service import DataProviderService

from . import replication_crash_driver as driver_module

DRIVER = Path(driver_module.__file__).resolve()
TABLE = driver_module.TABLE
PROBE_INTERVAL = 0.05
PROMOTE_DEADLINE = 5.0


class Harness:
    """Everything the tests need from one driver run, post-promotion."""

    def __init__(self, workdir):
        self.workdir = workdir
        self.follower_service = DataProviderService(
            guard_config=dataclasses.replace(
                driver_module.make_config(), node_id="follower"
            )
        )
        self.follower = ReplicaMember(
            "shard-0-r1",
            service=self.follower_service,
            journal=WriteAheadJournal(
                os.path.join(workdir, "replica.journal")
            ),
        )
        self.proc_member = ReplicaMember("shard-0", role=PRIMARY)
        self.group = ReplicaGroup(0, [self.proc_member, self.follower])
        self.monitor = GroupMonitor([self.group], interval=PROBE_INTERVAL)
        self.expected = None
        self.kill_to_promote = None
        self.primary_journal = os.path.join(workdir, "primary.journal")

    def run(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        process = subprocess.Popen(
            [sys.executable, str(DRIVER), str(self.workdir), str(port)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        self.proc_member.probe = lambda: process.poll() is None
        try:
            listener.settimeout(30)
            conn, _ = listener.accept()
            pump = threading.Thread(
                target=self._pump, args=(conn,), daemon=True
            )
            pump.start()
            ready = os.path.join(self.workdir, "ready")
            deadline = time.monotonic() + 60.0
            while not os.path.exists(ready):
                if process.poll() is not None:
                    raise AssertionError(
                        "driver exited before ready:\n"
                        + process.stderr.read().decode()
                    )
                if time.monotonic() > deadline:
                    raise AssertionError("driver never became ready")
                time.sleep(0.02)
            with open(os.path.join(self.workdir, "expected.json")) as fh:
                self.expected = json.load(fh)

            self.monitor.start()
            killed_at = time.monotonic()
            process.send_signal(signal.SIGKILL)
            process.wait()
            while not self.group.available:
                if time.monotonic() - killed_at > PROMOTE_DEADLINE:
                    raise AssertionError(
                        "monitor never promoted the follower"
                    )
                time.sleep(PROBE_INTERVAL / 5)
            self.kill_to_promote = time.monotonic() - killed_at
            pump.join(timeout=5)
            conn.close()
        finally:
            listener.close()
            if process.poll() is None:
                process.kill()
                process.wait()
            process.stderr.close()
        return self

    def _pump(self, conn):
        """The follower end of the stream: recv -> apply -> ack."""
        try:
            while True:
                data = conn.recv(65536)
                if not data:
                    return
                replies = self.follower.feed(data)
                if replies:
                    conn.sendall(replies)
        except OSError:
            return

    def close(self):
        self.monitor.stop()
        self.follower.journal.close()


@pytest.fixture(scope="module")
def failover(tmp_path_factory):
    harness = Harness(str(tmp_path_factory.mktemp("repl-crash"))).run()
    yield harness
    harness.close()


class TestSigkillFailover:
    def test_promotion_within_probe_interval(self, failover):
        assert failover.group.available
        assert failover.group.primary is failover.follower
        assert failover.group.failovers == 1
        # One probe detects, the next pass flips the primary; anything
        # beyond a handful of intervals means the monitor stalled.
        assert failover.kill_to_promote <= PROMOTE_DEADLINE
        assert failover.monitor.probes_total >= 1

    def test_promoted_follower_serves_exact_committed_prefix(
        self, failover
    ):
        expected = failover.expected
        rows = sorted(
            map(
                list,
                failover.follower_service.database.query(
                    f"SELECT id, v FROM {TABLE}"
                ),
            )
        )
        assert rows == expected["rows"]
        served_ids = {row[0] for row in rows}
        for doomed in driver_module.DOOMED_IDS:
            assert doomed not in served_ids
        # Byte-identical journals up to the acked seq — and the dead
        # primary really had committed more (the scenario is not
        # vacuous).
        acked = expected["acked_seq"]
        assert failover.follower.applied_seq == acked
        assert fingerprint_journal(
            failover.follower.journal.path, upto_seq=acked
        ) == fingerprint_journal(failover.primary_journal, upto_seq=acked)
        from repro.engine.journal import scan_journal

        assert scan_journal(failover.primary_journal).last_seq > acked

    def test_promotion_never_understates_delays(self, failover):
        expected = failover.expected
        guard = failover.group.guard
        keys = [tuple(key) for key in expected["keys"]]
        assert guard.popularity.total_requests >= (
            expected["total_requests"] - 1e-9
        )
        for got, want in zip(
            guard.policy.delays_for(keys), expected["delays"]
        ):
            assert got >= want - 1e-9

    def test_promoted_primary_keeps_committing(self, failover):
        """New writes land in the replica journal, continuing the
        replicated sequence — the group survives its primary."""
        before = failover.follower.journal.last_seq
        assert before >= failover.expected["acked_seq"]
        failover.group.guard.execute(
            f"INSERT INTO {TABLE} VALUES (901, 'post-failover')",
            sleep=False,
        )
        assert failover.follower.journal.last_seq == before + 1
        found = failover.follower_service.database.query(
            f"SELECT id FROM {TABLE} WHERE id = 901"
        )
        assert found == [(901,)]
