"""Price-safety of failover promotion, as seeded-random properties.

The replication design leans on one claim: a promoted follower's
popularity tracker is a gossip peer of the dead primary's, and the
tracker merge is *stale-HIGH* — a mirrored mass is the origin's
present-scale count as of the last shipped digest, which later decay
can only shrink. So promotion can overstate popularity, but it can
never mint an undercount, and the delays it mandates dominate the
delays the primary mandated at the last *acknowledged* shipment.

Same style as ``tests/core/test_merge_properties.py``: seeded random
workloads and sync schedules with plain loops, no new dependency. Two
layers:

* tracker-level — a primary/follower pair exchanging directed deltas,
  crashing at a random point in the schedule;
* group-level — a real :class:`~repro.cluster.ClusterService` replica
  group with randomised ship points, a SIGKILL-equivalent primary
  death, and monitor-driven promotion.
"""

import random

import pytest

from repro.cluster import ClusterService
from repro.core.config import GuardConfig
from repro.core.delay_policy import PopularityDelayPolicy
from repro.core.popularity import PopularityTracker
from repro.engine.journal import fingerprint_journal

KEYS = [("items", rowid) for rowid in range(1, 13)]
POPULATION = 200


def price(tracker):
    """Delays the guard would mandate right now, one per KEYS entry."""
    policy = PopularityDelayPolicy(
        tracker, population=POPULATION, cap=30.0, unit=900.0
    )
    return policy.delays_for(KEYS)


def reference(tracker):
    """Frozen view of the tracker: counts, totals, mandated delays."""
    return {
        "counts": {key: tracker.present_count(key) for key in KEYS},
        "total": tracker.total_requests,
        "delays": price(tracker),
    }


def sync(follower, primary):
    """One acknowledged shipment's digest piggyback."""
    follower.merge(primary.delta_since(follower.versions()))


def assert_dominates(promoted, acked, context):
    """The promoted view never understates the acked reference."""
    for key in KEYS:
        assert (
            promoted["counts"][key] >= acked["counts"][key] - 1e-9
        ), (context, key)
    assert promoted["total"] >= acked["total"] - 1e-9, context
    for key, got, want in zip(KEYS, promoted["delays"], acked["delays"]):
        assert got >= want - 1e-9, (context, key)


class TestTrackerPromotion:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("decay_rate", [1.0, 1.25])
    def test_promoted_view_dominates_last_ack(self, seed, decay_rate):
        """Crash anywhere in a random record/ship schedule: the
        follower's state at promotion dominates the reference captured
        at the last acknowledged shipment — counts, request total, and
        every mandated delay. With ``decay_rate=1.0`` the domination is
        exact equality on every synced key."""
        rng = random.Random(7000 + seed)
        primary = PopularityTracker(decay_rate=decay_rate, origin="p")
        follower = PopularityTracker(decay_rate=decay_rate, origin="f")
        sync(follower, primary)
        acked = reference(primary)
        for round_no in range(rng.randrange(3, 9)):
            for _ in range(rng.randrange(5, 40)):
                primary.record(
                    rng.choice(KEYS), weight=rng.choice([0.5, 1.0, 2.0])
                )
            if rng.random() < 0.7:
                sync(follower, primary)
                acked = reference(primary)
        # Crash: the unacknowledged tail dies with the primary and the
        # follower is promoted holding the last shipped digest.
        promoted = reference(follower)
        assert_dominates(promoted, acked, (seed, decay_rate))
        if decay_rate == 1.0:
            for key in KEYS:
                assert promoted["counts"][key] == pytest.approx(
                    acked["counts"][key]
                )
            assert promoted["total"] == pytest.approx(acked["total"])

    @pytest.mark.parametrize("seed", range(6))
    def test_stale_mirror_bounds_decayed_mass_from_above(self, seed):
        """Stale-HIGH, stated directly: after the ack, further traffic
        on the primary decays every mass it does *not* touch, while the
        follower's mirror keeps the acked (larger) value — the promoted
        replica can only overstate popularity, never undercount it."""
        rng = random.Random(9000 + seed)
        primary = PopularityTracker(decay_rate=1.5, origin="p")
        follower = PopularityTracker(decay_rate=1.5, origin="f")
        for _ in range(200):
            primary.record(rng.choice(KEYS))
        sync(follower, primary)
        # Post-ack tail confined to half the keyspace; the other half
        # only decays on the primary from here on.
        tail_keys = KEYS[: len(KEYS) // 2]
        untouched = KEYS[len(KEYS) // 2 :]
        for _ in range(rng.randrange(20, 120)):
            primary.record(rng.choice(tail_keys))
        for key in untouched:
            assert follower.present_count(key) >= primary.present_count(
                key
            ) - 1e-9, (seed, key)


CONFIG = dict(policy="popularity", cap=20.0, unit=600.0, decay_rate=1.0)
TABLE = "t"


class TestGroupPromotion:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_schedule_promotion_is_price_safe(self, tmp_path, seed):
        """Full stack: random query traffic, random ship points, then a
        primary death and monitor promotion. The promoted group serves
        the exact acked journal prefix and never understates the delays
        mandated at the last acknowledged shipment."""
        rng = random.Random(4000 + seed)
        cluster = ClusterService(
            shard_count=2,
            data_dir=tmp_path,
            replication_factor=2,
            gossip=False,
            guard_config=GuardConfig(**CONFIG),
        )
        try:
            cluster.query(
                None,
                f"CREATE TABLE {TABLE} (id INTEGER PRIMARY KEY, v TEXT)",
            )
            for i in range(1, 25):
                cluster.query(
                    None, f"INSERT INTO {TABLE} VALUES ({i}, 'v{i}')"
                )
            cluster.monitor.ship_all()
            group = cluster.groups[0]
            acked = {
                "keys": [],
                "delays": [],
                "total": 0.0,
                "seq": group.followers[0].acked_seq,
            }

            def capture():
                guard = group.primary.service.guard
                keys = [key for key, _ in guard.popularity.snapshot()]
                return {
                    "keys": keys,
                    "delays": guard.policy.delays_for(keys),
                    "total": guard.popularity.total_requests,
                    "seq": group.followers[0].acked_seq,
                }

            for _ in range(rng.randrange(2, 6)):
                for _ in range(rng.randrange(5, 30)):
                    i = rng.randrange(1, 25)
                    cluster.query(
                        None, f"SELECT * FROM {TABLE} WHERE id = {i}"
                    )
                if rng.random() < 0.8:
                    cluster.monitor.ship_all()
                    acked = capture()
            # Doomed tail: committed on the primary, never shipped.
            for i in range(rng.randrange(0, 4)):
                cluster.query(
                    None, f"INSERT INTO {TABLE} VALUES ({900 + i}, 'x')"
                )
            primary_journal = group.primary.service.journal.path
            group.primary.kill()
            cluster.monitor.probe()
            assert group.available
            guard = group.guard
            assert guard.popularity.total_requests >= acked["total"] - 1e-9
            for got, want in zip(
                guard.policy.delays_for(acked["keys"]), acked["delays"]
            ):
                assert got >= want - 1e-9
            assert fingerprint_journal(
                group.primary.journal.path, upto_seq=acked["seq"]
            ) == fingerprint_journal(primary_journal, upto_seq=acked["seq"])
        finally:
            cluster.close()
