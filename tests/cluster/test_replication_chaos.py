"""Chaos suite for replica groups: drops, stalls, mid-stream kills.

Every scenario asserts the same two invariants, whatever the fault:

1. **Never understate the delay bound** — after the dust settles, the
   serving guard's per-key delays are >= the delays the primary
   mandated at the last *acknowledged* shipment (with ``decay_rate=1``
   the digest piggyback makes them exactly equal on synced keys). A
   crash may lose an unshipped suffix of *data*; it must never mint a
   cheaper price for what still serves.
2. **Exact committed prefix** — the promoted follower's journal is
   byte-identical to the dead primary's journal up to the acked seq
   (:func:`~repro.engine.journal.fingerprint_journal`), and its rows
   are exactly the rows that prefix commits.
"""

import pytest

from repro.cluster import ClusterService, StaleTermError
from repro.core.config import GuardConfig
from repro.core.errors import ShardUnavailable
from repro.engine.journal import fingerprint_journal
from repro.testing import faults

CONFIG = dict(policy="popularity", cap=20.0, unit=600.0, decay_rate=1.0)
TABLE = "t"


@pytest.fixture
def cluster(tmp_path):
    service = ClusterService(
        shard_count=2,
        data_dir=tmp_path,
        replication_factor=2,
        gossip=False,
        guard_config=GuardConfig(**CONFIG),
    )
    service.query(
        None, f"CREATE TABLE {TABLE} (id INTEGER PRIMARY KEY, v TEXT)"
    )
    for i in range(1, 21):
        service.query(None, f"INSERT INTO {TABLE} VALUES ({i}, 'v{i}')")
    yield service
    service.close()


def warm(cluster, rounds=3):
    for _ in range(rounds):
        for i in range(1, 21):
            cluster.query(None, f"SELECT * FROM {TABLE} WHERE id = {i}")


def reference_state(group):
    """(keys, delays, counts, total) as the primary prices right now."""
    guard = group.primary.service.guard
    keys = [key for key, _ in guard.popularity.snapshot()]
    return {
        "keys": keys,
        "delays": guard.policy.delays_for(keys),
        "counts": [guard.popularity.present_count(k) for k in keys],
        "total": guard.popularity.total_requests,
    }


def assert_never_understated(group, reference):
    """The serving guard's defense state dominates the reference."""
    guard = group.guard
    for key, count in zip(reference["keys"], reference["counts"]):
        assert guard.popularity.present_count(key) >= count - 1e-9
    assert guard.popularity.total_requests >= reference["total"]
    delays = guard.policy.delays_for(reference["keys"])
    for got, want in zip(delays, reference["delays"]):
        assert got >= want - 1e-9


class TestShipFaults:
    def test_dropped_ship_frames_retry_until_delivered(self, cluster):
        warm(cluster)
        with faults.injected_faults():
            faults.injector.fail("replication.ship", times=3)
            # The drops burn three monitor passes; the backlog stays
            # pending (never discarded) and the next clean pass
            # delivers everything.
            for _ in range(5):
                cluster.monitor.probe()
        for group in cluster.groups:
            assert group.ship_failures >= 1
            assert group.replication_health()["replication_lag"] == 0
            follower = group.followers[0]
            assert fingerprint_journal(
                follower.journal.path
            ) == fingerprint_journal(
                group.primary.service.journal.path,
                upto_seq=follower.acked_seq,
            )

    def test_stalled_stream_delays_but_never_corrupts(self, cluster):
        warm(cluster, rounds=1)
        with faults.injected_faults():
            faults.injector.stall("replication.ship", 0.05, times=2)
            cluster.monitor.ship_all()
        for group in cluster.groups:
            assert group.replication_health()["replication_lag"] == 0

    def test_ack_failure_redelivers_idempotently(self, cluster):
        warm(cluster, rounds=1)
        with faults.injected_faults():
            # The follower applies, then the ack path blows up: the
            # primary must re-ship the same frames, and the follower
            # must skip them (seq <= applied) without double-applying.
            faults.injector.fail("replication.ack", times=1)
            cluster.monitor.ship_all()
            cluster.monitor.ship_all()
        group = cluster.groups[0]
        follower = group.followers[0]
        assert follower.applied_seq == group.committed_seq
        assert len(
            follower.service.database.catalog.table(TABLE)
        ) == len(group.primary.service.database.catalog.table(TABLE))


class TestKillMidStream:
    def test_sigkill_primary_mid_replication_stream(self, cluster):
        """The primary dies *between* shipping and processing acks."""
        warm(cluster)
        cluster.monitor.ship_all()
        group = cluster.groups[0]
        reference = reference_state(group)
        acked = group.followers[0].acked_seq
        primary_journal = group.primary.service.journal.path
        # New committed-but-unshipped work, then a kill fired from
        # inside the ship path itself: the batch is lost mid-flight.
        cluster.query(None, f"INSERT INTO {TABLE} VALUES (401, 'x')")
        with faults.injected_faults():
            faults.injector.on_fire(
                "replication.ship", group.primary.kill, times=1
            )
            faults.injector.fail("replication.ack", times=1)
            cluster.monitor.probe()
        # The next probe sees the dead primary and promotes.
        report = cluster.monitor.probe()[0]
        assert report.get("promoted") or group.available
        assert group.available
        assert_never_understated(group, reference)
        assert fingerprint_journal(
            group.primary.service.journal.path,
            upto_seq=acked,
        ) == fingerprint_journal(primary_journal, upto_seq=acked)

    def test_promote_then_old_primary_returns(self, cluster):
        warm(cluster)
        cluster.monitor.ship_all()
        group = cluster.groups[0]
        reference = reference_state(group)
        old = group.primary
        divergent = next(
            i
            for i in range(400, 500)
            if cluster.shard_map.shard_for(TABLE, i) == 0
        )
        cluster.query(
            None, f"INSERT INTO {TABLE} VALUES ({divergent}, 'lost')"
        )
        old.kill()
        cluster.monitor.probe()
        assert group.primary is not old
        assert_never_understated(group, reference)
        # Zombie returns and ships its divergent timeline: fenced.
        old.alive = True
        with pytest.raises(StaleTermError):
            group._ship_from(old)
        rows = cluster.query(None, f"SELECT id FROM {TABLE}").result.rows
        assert divergent not in {row[0] for row in rows}
        assert group.fencings >= 1

    def test_group_loss_degrades_then_heals_nothing_silently(
        self, cluster
    ):
        warm(cluster)
        cluster.monitor.ship_all()
        group = cluster.groups[0]
        for member in group.members:
            member.kill()
        cluster.monitor.probe()
        with pytest.raises(ShardUnavailable) as denied:
            cluster.query(None, f"SELECT * FROM {TABLE}")
        assert denied.value.retry_after > 0
        # Partial opt-in still prices the touched set — delay charged,
        # coverage declared.
        result = cluster.guard.execute(
            f"SELECT * FROM {TABLE}", sleep=False, partial_results=True
        )
        assert result.coverage["shards_missing"] == [0]
        assert result.delay > 0
