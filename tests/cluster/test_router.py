"""Router correctness: a 4-shard cluster answers like a single node.

The reference for every assertion is an identical single-node
:class:`DataProviderService` fed the same statements — the cluster
refactor is correct exactly when no client can tell the two apart
(results *and* prices).
"""

import pytest

from repro.cluster import ClusterService
from repro.core import AccountPolicy, GuardConfig
from repro.core.errors import AccessDenied, ConfigError
from repro.service import DataProviderService

CONFIG = dict(policy="popularity", cap=30.0, unit=600.0)


def build_pair(shard_count=4, **kwargs):
    """A cluster and a single-node reference with the same config."""
    config = GuardConfig(**CONFIG)
    cluster = ClusterService(
        shard_count=shard_count, guard_config=config, **kwargs
    )
    reference = DataProviderService(guard_config=GuardConfig(**CONFIG))
    return cluster, reference


def load_fixture(*services, identity=None):
    statements = [
        "CREATE TABLE users "
        "(id INTEGER PRIMARY KEY, name TEXT, team INTEGER)",
        "CREATE TABLE teams (id INTEGER PRIMARY KEY, label TEXT)",
        "CREATE INDEX idx_team ON users (team)",
    ]
    statements += [
        f"INSERT INTO users VALUES ({i}, 'user-{i}', {i % 5})"
        for i in range(1, 41)
    ]
    statements += [
        f"INSERT INTO teams VALUES ({i}, 'team-{i}')" for i in range(5)
    ]
    for service in services:
        for sql in statements:
            service.query(identity, sql)


PARITY_QUERIES = [
    "SELECT * FROM users WHERE id = 7",
    "SELECT * FROM users WHERE id IN (3, 17, 29) ORDER BY id",
    "SELECT * FROM users WHERE team = 2 ORDER BY id",
    "SELECT COUNT(*), MIN(id), MAX(id) FROM users",
    "SELECT team, COUNT(*) FROM users GROUP BY team ORDER BY team",
    "SELECT t.label, COUNT(*) FROM users u "
    "JOIN teams t ON u.team = t.id GROUP BY t.label ORDER BY t.label",
    "SELECT name FROM users WHERE id > 30 ORDER BY id DESC LIMIT 4",
    "SELECT DISTINCT team FROM users ORDER BY team",
]


class TestReadParity:
    def test_cluster_matches_single_node(self):
        cluster, reference = build_pair()
        load_fixture(cluster, reference)
        for sql in PARITY_QUERIES:
            ours = cluster.query(None, sql, record=False)
            theirs = reference.query(None, sql, record=False)
            assert ours.result.rows == theirs.result.rows, sql
            assert ours.result.columns == theirs.result.columns, sql

    def test_rowids_are_globally_unique(self):
        cluster, reference = build_pair()
        load_fixture(cluster, reference)
        result = cluster.query(
            None, "SELECT * FROM users", record=False
        ).result
        assert len(set(result.rowids)) == len(result.rowids) == 40

    def test_single_shard_fast_path_taken_for_pk_lookups(self):
        cluster, _ = build_pair()
        load_fixture(cluster)
        before = cluster.router.single_shard_queries
        cluster.query(None, "SELECT * FROM users WHERE id = 5")
        assert cluster.router.single_shard_queries == before + 1

    def test_scans_scatter(self):
        cluster, _ = build_pair()
        load_fixture(cluster)
        before = cluster.router.scatter_queries
        cluster.query(None, "SELECT COUNT(*) FROM users")
        assert cluster.router.scatter_queries == before + 1


class TestWriteParity:
    def test_update_delete_match_single_node(self):
        cluster, reference = build_pair()
        load_fixture(cluster, reference)
        for sql in (
            "UPDATE users SET name = 'renamed' WHERE id = 3",
            "UPDATE users SET name = 'bulk' WHERE team = 1",
            "DELETE FROM users WHERE id = 17",
            "DELETE FROM users WHERE team = 4",
        ):
            ours = cluster.query(None, sql)
            theirs = reference.query(None, sql)
            assert ours.result.rowcount == theirs.result.rowcount, sql
        ours = cluster.query(
            None, "SELECT * FROM users ORDER BY id", record=False
        )
        theirs = reference.query(
            None, "SELECT * FROM users ORDER BY id", record=False
        )
        assert ours.result.rows == theirs.result.rows

    def test_pk_update_routes_to_one_shard(self):
        cluster, _ = build_pair()
        load_fixture(cluster)
        broadcasts = cluster.router.broadcast_statements
        cluster.query(None, "UPDATE users SET name = 'x' WHERE id = 9")
        assert cluster.router.broadcast_statements == broadcasts

    def test_insert_places_rows_on_hash_owners(self):
        cluster, _ = build_pair()
        load_fixture(cluster)
        shard_map = cluster.shard_map
        for i in range(41, 61):
            cluster.query(
                None, f"INSERT INTO users VALUES ({i}, 'n{i}', 0)"
            )
            owner = shard_map.shard_for("users", i)
            found = cluster.shards[owner].database.query(
                f"SELECT id FROM users WHERE id = {i}"
            )
            assert found == [(i,)], f"row {i} not on shard {owner}"

    def test_insert_requires_literal_rows(self):
        cluster, _ = build_pair()
        load_fixture(cluster)
        with pytest.raises(ConfigError, match="literal"):
            cluster.query(
                None, "INSERT INTO users VALUES (99, 'x', 1 + 1)"
            )

    def test_insert_without_pk_column_rejected(self):
        cluster, _ = build_pair()
        load_fixture(cluster)
        with pytest.raises(ConfigError, match="partition key"):
            cluster.query(
                None, "INSERT INTO users (name, team) VALUES ('x', 1)"
            )

    def test_transactions_rejected(self):
        cluster, _ = build_pair()
        with pytest.raises(ConfigError, match="transactions"):
            cluster.query(None, "BEGIN")


class TestGlobalPricing:
    def test_population_is_global(self):
        cluster, reference = build_pair()
        load_fixture(cluster, reference)
        assert cluster.population() == reference.guard.population() == 45
        for guard in cluster.guards:
            assert guard.population() == 45

    def test_scatter_price_matches_single_node(self):
        """A warmed scan costs the same on the cluster as on one node."""
        cluster, reference = build_pair()
        load_fixture(cluster, reference)
        warm = "SELECT * FROM users WHERE team = 2"
        for _ in range(10):
            ours = cluster.query(None, warm)
            theirs = reference.query(None, warm)
        cluster.gossip.run_round()
        ours = cluster.query(None, warm)
        theirs = reference.query(None, warm)
        assert ours.delay == pytest.approx(theirs.delay, rel=1e-9)

    def test_fast_path_price_matches_after_gossip(self):
        """Post-gossip, a pk lookup is priced like the single node."""
        cluster, reference = build_pair()
        load_fixture(cluster, reference)
        lookup = "SELECT * FROM users WHERE id = 7"
        for _ in range(8):
            cluster.query(None, lookup)
            reference.query(None, lookup)
        cluster.gossip.run_round()
        ours = cluster.query(None, lookup, record=False)
        theirs = reference.query(None, lookup, record=False)
        assert ours.delay == pytest.approx(theirs.delay, rel=1e-9)

    def test_one_delay_never_per_shard_sums(self):
        """The served delay equals the merged-set price, not M prices."""
        cluster, reference = build_pair()
        load_fixture(cluster, reference)
        scan = "SELECT * FROM users"
        ours = cluster.query(None, scan)
        theirs = reference.query(None, scan)
        assert ours.delay == pytest.approx(theirs.delay, rel=1e-9)
        assert len(ours.per_tuple_delays) == 40

    def test_scatter_reads_recorded_at_owners(self):
        cluster, _ = build_pair()
        load_fixture(cluster)
        cluster.query(None, "SELECT * FROM users WHERE team = 0")
        recorded = [
            guard.popularity.store.items() for guard in cluster.guards
        ]
        owned = [
            {(key[1] - 1) % 4 for key, _ in items} for items in recorded
        ]
        for shard, owners in enumerate(owned):
            assert owners <= {shard}, (
                f"shard {shard} recorded keys it does not own: {owners}"
            )


class TestAccounts:
    def test_budgets_are_cluster_global(self):
        config = GuardConfig(**CONFIG)
        cluster = ClusterService(
            shard_count=4,
            guard_config=config,
            account_policy=AccountPolicy(daily_query_quota=10),
        )
        cluster.register("loader")
        cluster.query(
            "loader",
            "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT)",
        )
        cluster.query(
            "loader", "INSERT INTO users VALUES (1, 'a'), (2, 'b')"
        )
        cluster.register("alice")
        # The quota is per identity across the WHOLE cluster: spraying
        # the lookups over different shards buys no extra budget.
        for i in range(10):
            cluster.query(
                "alice", f"SELECT * FROM users WHERE id = {1 + i % 2}"
            )
        with pytest.raises(AccessDenied):
            cluster.query("alice", "SELECT * FROM users WHERE id = 2")
        assert cluster.router.stats.denied == 1

    def test_identity_required_when_accounts_on(self):
        cluster = ClusterService(
            shard_count=2,
            guard_config=GuardConfig(**CONFIG),
            account_policy=AccountPolicy(),
        )
        with pytest.raises(ConfigError, match="identity"):
            cluster.query(None, "SELECT * FROM users WHERE id = 1")


class TestDeadlines:
    def test_scatter_deadline_abort(self):
        cluster, _ = build_pair()
        load_fixture(cluster)
        with pytest.raises(AccessDenied, match="deadline"):
            cluster.router.execute(
                "SELECT * FROM users",
                deadline_at=0.0,  # long past: any positive delay aborts
            )
        assert cluster.router.stats.deadline_aborts == 1
