"""Replica groups: shipping, price-safe promotion, degraded serving.

The failover contract under test, in the defense's terms: a promoted
follower serves exactly the primary's *committed prefix* — of the data
(journal-fingerprint equality) and of the defense state (the digest
piggyback makes its trackers equal the primary's as of the last
acknowledged shipment) — so the mandated delay after failover is never
below what the never-crashed primary would have charged at that point.
"""

import pytest

from repro.cluster import ClusterService, StaleTermError
from repro.cluster.replication import (
    FENCED,
    FOLLOWER,
    PRIMARY,
    ReplicationError,
    WireDecoder,
    encode_message,
)
from repro.core.config import GuardConfig
from repro.core.errors import ConfigError, ShardUnavailable
from repro.engine.journal import fingerprint_journal

CONFIG = dict(policy="popularity", cap=20.0, unit=600.0, decay_rate=1.0)
TABLE = "t"


def make_config(**overrides):
    return GuardConfig(**{**CONFIG, **overrides})


def build_cluster(tmp_path, rows=20, **kwargs):
    kwargs.setdefault("guard_config", make_config())
    kwargs.setdefault("replication_factor", 2)
    cluster = ClusterService(
        shard_count=2, data_dir=tmp_path, **kwargs
    )
    cluster.query(
        None, f"CREATE TABLE {TABLE} (id INTEGER PRIMARY KEY, v TEXT)"
    )
    for i in range(1, rows + 1):
        cluster.query(None, f"INSERT INTO {TABLE} VALUES ({i}, 'v{i}')")
    return cluster


class TestWireFraming:
    def test_roundtrip_across_arbitrary_chunking(self):
        messages = [
            {"t": "ship", "entries": [{"seq": i}]} for i in range(5)
        ]
        blob = b"".join(encode_message(m) for m in messages)
        decoder = WireDecoder()
        decoded = []
        for i in range(0, len(blob), 7):  # deliberately torn reads
            decoded.extend(decoder.feed(blob[i : i + 7]))
        assert decoded == messages
        assert decoder.pending_bytes == 0

    def test_corrupt_frame_raises(self):
        blob = bytearray(encode_message({"t": "ship"}))
        blob[-1] ^= 0xFF
        with pytest.raises(ReplicationError):
            WireDecoder().feed(bytes(blob))


class TestShipping:
    def test_ship_drains_lag_and_acks(self, tmp_path):
        cluster = build_cluster(tmp_path)
        try:
            for group in cluster.groups:
                health = group.replication_health()
                assert health["replication_lag"] > 0
            assert cluster.monitor.ship_all() > 0
            for group in cluster.groups:
                health = group.replication_health()
                assert health["replication_lag"] == 0
                follower = group.followers[0]
                assert follower.acked_seq == group.committed_seq
        finally:
            cluster.close()

    def test_follower_journal_is_byte_identical_prefix(self, tmp_path):
        cluster = build_cluster(tmp_path)
        try:
            cluster.monitor.ship_all()
            for group in cluster.groups:
                follower = group.followers[0]
                assert fingerprint_journal(
                    follower.journal.path
                ) == fingerprint_journal(
                    group.primary.service.journal.path,
                    upto_seq=follower.acked_seq,
                )
        finally:
            cluster.close()

    def test_digest_piggyback_syncs_popularity(self, tmp_path):
        cluster = build_cluster(tmp_path, gossip=False)
        try:
            for i in range(1, 21):
                cluster.query(
                    None, f"SELECT * FROM {TABLE} WHERE id = {i}"
                )
            cluster.monitor.ship_all()
            for group in cluster.groups:
                primary = group.primary.service.guard
                follower = group.followers[0].service.guard
                for key, count in primary.popularity.snapshot():
                    assert follower.popularity.present_count(
                        key
                    ) == pytest.approx(count)
        finally:
            cluster.close()

    def test_redelivery_is_idempotent(self, tmp_path):
        cluster = build_cluster(tmp_path)
        try:
            cluster.monitor.ship_all()
            group = cluster.groups[0]
            follower = group.followers[0]
            with open(group.primary.service.journal.path, "rb") as fh:
                fh.read(6)  # magic
            # Re-deliver the full committed prefix straight to the
            # follower: every seq <= applied_seq must be skipped.
            from repro.engine.journal import scan_journal

            scan = scan_journal(group.primary.service.journal.path)
            before = follower.applied_seq
            rowcount = len(
                follower.service.database.catalog.table(TABLE)
            )
            ack = follower.apply_ship(
                {
                    "t": "ship",
                    "term": group.term,
                    "entries": [r.payload for r in scan.records],
                    "digest": {},
                }
            )
            assert ack["t"] == "ack"
            assert follower.applied_seq == before
            assert (
                len(follower.service.database.catalog.table(TABLE))
                == rowcount
            )
        finally:
            cluster.close()

    def test_checkpoint_ships_before_truncating(self, tmp_path):
        cluster = build_cluster(tmp_path)
        try:
            # No manual ship: checkpoint itself must drain the backlog
            # before the journal is cut back.
            cluster.checkpoint()
            for group in cluster.groups:
                follower = group.followers[0]
                assert follower.applied_seq > 0
                assert group.replication_health()["replication_lag"] == 0
        finally:
            cluster.close()


class TestFailover:
    def test_promotion_serves_exact_committed_prefix(self, tmp_path):
        cluster = build_cluster(tmp_path)
        try:
            cluster.monitor.ship_all()
            group0 = cluster.groups[0]
            acked = group0.followers[0].acked_seq
            primary_journal = group0.primary.service.journal.path
            # A doomed suffix: committed on the primary, never shipped.
            cluster.query(
                None, f"INSERT INTO {TABLE} VALUES (101, 'doomed')"
            )
            cluster.query(
                None, f"INSERT INTO {TABLE} VALUES (103, 'doomed')"
            )
            group0.primary.kill()
            reports = cluster.monitor.probe()
            assert reports[0]["promoted"] == "shard-0-r1"
            assert group0.available
            assert group0.term == 2
            assert group0.primary.role == PRIMARY
            # The promoted journal is byte-identical to the dead
            # primary's committed prefix at the last ack.
            assert fingerprint_journal(
                group0.primary.service.journal.path
            ) == fingerprint_journal(primary_journal, upto_seq=acked)
            rows = cluster.query(
                None, f"SELECT id FROM {TABLE}"
            ).result.rows
            ids = {row[0] for row in rows}
            assert ids == set(range(1, 21))  # suffix gone, prefix exact
        finally:
            cluster.close()

    def test_promotion_never_understates_delay(self, tmp_path):
        cluster = build_cluster(tmp_path, gossip=False)
        try:
            for _ in range(3):
                for i in range(1, 21):
                    cluster.query(
                        None, f"SELECT * FROM {TABLE} WHERE id = {i}"
                    )
            cluster.monitor.ship_all()
            group0 = cluster.groups[0]
            keys = [
                key for key, _ in group0.primary.service.guard
                .popularity.snapshot()
            ]
            reference = group0.primary.service.guard.policy.delays_for(
                keys
            )
            group0.primary.kill()
            cluster.monitor.probe()
            promoted = group0.guard.policy.delays_for(keys)
            for got, want in zip(promoted, reference):
                assert got >= want - 1e-9
        finally:
            cluster.close()

    def test_whole_group_down_is_a_structured_denial(self, tmp_path):
        cluster = build_cluster(tmp_path)
        try:
            cluster.monitor.ship_all()
            group0 = cluster.groups[0]
            for member in group0.members:
                member.kill()
            cluster.monitor.probe()
            assert not group0.available
            # Find an id owned by shard 0 for the single-shard path.
            owned = next(
                i
                for i in range(1, 21)
                if cluster.shard_map.shard_for(TABLE, i) == 0
            )
            with pytest.raises(ShardUnavailable) as denied:
                cluster.query(
                    None, f"SELECT * FROM {TABLE} WHERE id = {owned}"
                )
            assert denied.value.reason == "shard_unavailable"
            assert denied.value.retry_after > 0
            assert denied.value.shards == [0]
            # Scatter fails closed by default — never silently partial.
            with pytest.raises(ShardUnavailable):
                cluster.query(None, f"SELECT * FROM {TABLE}")
            # A query the live shard can answer alone still serves.
            other = next(
                i
                for i in range(1, 21)
                if cluster.shard_map.shard_for(TABLE, i) == 1
            )
            result = cluster.query(
                None, f"SELECT * FROM {TABLE} WHERE id = {other}"
            )
            assert result.result.rows
        finally:
            cluster.close()

    def test_partial_results_attaches_coverage(self, tmp_path):
        cluster = build_cluster(tmp_path)
        try:
            cluster.monitor.ship_all()
            complete = cluster.guard.execute(
                f"SELECT id FROM {TABLE}", sleep=False
            )
            assert complete.coverage is None
            group0 = cluster.groups[0]
            for member in group0.members:
                member.kill()
            cluster.monitor.probe()
            degraded = cluster.guard.execute(
                f"SELECT id FROM {TABLE}",
                sleep=False,
                partial_results=True,
            )
            assert degraded.coverage == {
                "partial": True,
                "shards_total": 2,
                "shards_answered": [1],
                "shards_missing": [0],
            }
            returned = {row[0] for row in degraded.result.rows}
            shard1_ids = {
                i
                for i in range(1, 21)
                if cluster.shard_map.shard_for(TABLE, i) == 1
            }
            assert returned == shard1_ids
            stats = cluster.router.routing_stats()
            assert stats["partial_scatter_queries"] == 1
            assert stats["unavailable_denials"] == 0
        finally:
            cluster.close()

    def test_deposed_primary_is_fenced_on_return(self, tmp_path):
        cluster = build_cluster(
            tmp_path, replication_factor=3, gossip=False
        )
        try:
            cluster.monitor.ship_all()
            group0 = cluster.groups[0]
            old = group0.primary
            # A divergent suffix only the doomed primary holds (the id
            # must hash to shard 0, or the insert lands on a group
            # that never fails over).
            divergent = next(
                i
                for i in range(200, 300)
                if cluster.shard_map.shard_for(TABLE, i) == 0
            )
            cluster.query(
                None,
                f"INSERT INTO {TABLE} VALUES ({divergent}, 'divergent')",
            )
            old.kill()
            cluster.monitor.probe()
            assert group0.primary is not old
            assert old.role == FENCED
            # The old primary comes back and tries to ship its term-1
            # timeline: every follower nacks, the group raises.
            old.alive = True
            with pytest.raises(StaleTermError):
                group0._ship_from(old)
            assert group0.fencings >= 1
            rows = cluster.query(
                None, f"SELECT id FROM {TABLE}"
            ).result.rows
            assert divergent not in {row[0] for row in rows}
        finally:
            cluster.close()


class TestClusterSurface:
    def test_health_exposes_replication(self, tmp_path):
        cluster = build_cluster(tmp_path)
        try:
            cluster.monitor.ship_all()
            health = cluster.cluster_health()
            replication = health["replication"]
            assert replication["factor"] == 2
            summary = replication["summary"]
            assert summary["groups_available"] == 2
            assert summary["max_replication_lag"] == 0
            assert summary["failovers_total"] == 0
            roles = {
                row["role"]
                for group in replication["groups"]
                for row in group["members"]
            }
            assert roles == {PRIMARY, FOLLOWER}
            cluster.groups[0].primary.kill()
            cluster.monitor.probe()
            summary = cluster.cluster_health()["replication"]["summary"]
            assert summary["failovers_total"] == 1
        finally:
            cluster.close()

    def test_metrics_gauges_track_failover(self, tmp_path):
        cluster = build_cluster(tmp_path)
        try:
            cluster.monitor.ship_all()
            exported = cluster.obs.registry.to_json()
            assert exported["cluster_replication_lag"]["value"] == 0
            assert exported["cluster_groups_available"]["value"] == 2
            cluster.groups[0].primary.kill()
            cluster.monitor.probe()
            exported = cluster.obs.registry.to_json()
            assert exported["cluster_failovers_total"]["value"] == 1
        finally:
            cluster.close()

    def test_replication_requires_data_dir(self):
        with pytest.raises(ConfigError):
            ClusterService(shard_count=2, replication_factor=2)

    def test_population_survives_a_down_group(self, tmp_path):
        cluster = build_cluster(tmp_path)
        try:
            cluster.monitor.ship_all()
            before = cluster.population()
            for member in cluster.groups[0].members:
                member.kill()
            assert cluster.population() == before
        finally:
            cluster.close()
