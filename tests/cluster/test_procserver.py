"""ProcessFleet lifecycle: clean start/stop and crash teardown.

The fleet's contract under test: a child that dies before printing its
``PORT`` line must (a) raise an error that carries *that child's*
stderr — the only artifact that says why — and (b) leave no sibling
running and no zombie unreaped.
"""

import os
import socket

import pytest

from repro.cluster.procserver import ProcessFleet

ENV = {**os.environ, "PYTHONPATH": "src"}


def fleet_children(fleet):
    return list(fleet._children)


class TestFleetLifecycle:
    def test_start_serves_and_stop_reaps(self):
        fleet = ProcessFleet(2, rows=64, env=ENV)
        with fleet:
            assert sorted(fleet.ports) == [0, 1]
            for port in fleet.ports.values():
                # The port is genuinely listening.
                socket.create_connection(
                    ("127.0.0.1", port), timeout=10
                ).close()
            children = fleet_children(fleet)
        for child in children:
            assert child.poll() is not None  # reaped, not orphaned
        assert fleet.ports == {}

    def test_stop_is_idempotent(self):
        fleet = ProcessFleet(1, rows=32, env=ENV)
        fleet.start()
        fleet.stop()
        fleet.stop()
        assert fleet.ports == {}


class TestCrashTeardown:
    def test_crashed_shard_surfaces_its_stderr(self):
        fleet = ProcessFleet(
            2, rows=64, env=ENV, extra_args=["--selftest-crash"]
        )
        with pytest.raises(RuntimeError) as error:
            fleet.start()
        message = str(error.value)
        assert "shard 0" in message
        assert "selftest crash before serving" in message

    def test_crash_reaps_every_spawned_sibling(self):
        # Shard 1 crashes *after* shard 0 is already serving: the
        # failure path must tear shard 0 down too, not leak it.
        fleet = ProcessFleet(2, rows=64, env=ENV)
        spawned = []
        original = fleet._await_port

        def tracking_await(shard, child):
            spawned.append(child)
            if shard == 1:
                child.kill()
            return original(shard, child)

        fleet._await_port = tracking_await
        with pytest.raises(RuntimeError):
            fleet.start()
        assert len(spawned) == 2
        for child in spawned:
            assert child.poll() is not None
        assert fleet.ports == {}
