"""SIGKILL a 2-shard cluster; each shard recovers itself, gossip heals.

The acceptance criterion under test: a shard restarts from *its own*
journal + snapshot, and popularity the crash destroyed on one shard is
re-converged from a peer's gossip mirror by the next anti-entropy
round.  The driver (``cluster_crash_driver.py``) arranges the epochs so
shard 0's snapshot is one gossip round *older* than shard 1's — the
phase-B read mass shard 0 recorded is absent from its own snapshot and
present only as a mirrored origin inside shard 1's.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cluster import ClusterService

from . import cluster_crash_driver

DRIVER = Path(cluster_crash_driver.__file__).resolve()
TABLE = cluster_crash_driver.TABLE


def run_driver_and_kill(workdir) -> dict:
    """Run the driver to its ready marker, SIGKILL it, return expected."""
    process = subprocess.Popen(
        [sys.executable, str(DRIVER), str(workdir)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    ready = os.path.join(workdir, "ready")
    deadline = time.monotonic() + 60.0
    try:
        while not os.path.exists(ready):
            if process.poll() is not None:
                raise AssertionError(
                    "driver exited before ready:\n"
                    + process.stderr.read().decode()
                )
            if time.monotonic() > deadline:
                raise AssertionError("driver never became ready")
            time.sleep(0.02)
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)
        process.wait()
    with open(os.path.join(workdir, "expected.json")) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def crashed(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("cluster-crash")
    expected = run_driver_and_kill(workdir)
    return workdir, expected


def counts_on(guard, rowids):
    return {
        rowid: guard.popularity.present_count((TABLE, int(rowid)))
        for rowid in rowids
    }


class TestKillOneEpochRecovery:
    def test_recovery_heals_shard0_via_anti_entropy(self, crashed):
        workdir, expected = crashed
        recovered = ClusterService.recover(
            shard_count=2,
            data_dir=workdir,
            guard_config=cluster_crash_driver.make_config(),
        )
        try:
            # Rows: every acked write survived via per-shard journals
            # (shard 0 replays its phase-B inserts past its snapshot).
            rows = recovered.query(
                None, f"SELECT id, v FROM {TABLE}", record=False
            ).result.rows
            assert sorted(map(list, rows)) == expected["rows"]

            # Restored rowids sit on each shard's residue class.
            for index, shard in enumerate(recovered.shards):
                for rowid in shard.database.table(TABLE).rowids():
                    assert (rowid - 1) % 2 == index

            # Before gossip: shard 0 is back on its phase-A snapshot —
            # the phase-B mass is genuinely gone from its own state...
            b_counts = expected["phase_b_counts"]
            a_counts = expected["phase_a_counts"]
            pre = counts_on(recovered.guards[0], b_counts)
            assert any(
                pre[rowid] < b_counts[rowid] for rowid in b_counts
            ), "shard 0 lost nothing; the crash scenario is vacuous"
            for rowid, count in counts_on(
                recovered.guards[0], a_counts
            ).items():
                assert count == pytest.approx(a_counts[rowid])

            # ...while shard 1 (checkpointed after the last gossip
            # round) still mirrors it.
            assert recovered.guards[
                1
            ].popularity.total_requests == pytest.approx(
                expected["total_requests"]
            )

            # One anti-entropy round: shard 0 re-adopts its own origin's
            # mass from shard 1's mirror and the cluster re-converges on
            # the end-of-phase-B counts (phase C is honestly lost).
            recovered.gossip.run_round()
            for guard in recovered.guards:
                for rowid, count in counts_on(guard, b_counts).items():
                    assert count == pytest.approx(b_counts[rowid]), (
                        f"rowid {rowid} diverged after anti-entropy"
                    )
                assert guard.popularity.total_requests == pytest.approx(
                    expected["total_requests"]
                )

            # The healed cluster keeps serving: new traffic lands on top
            # of the recovered mass, not on a reset tracker.
            hot = next(iter(b_counts))
            before = recovered.guards[0].popularity.present_count(
                (TABLE, int(hot))
            )
            owner = (int(hot) - 1) % 2
            result = recovered.query(
                None, f"SELECT * FROM {TABLE}", record=True
            )
            assert result.result.rowcount or result.result.rows
            after = recovered.guards[owner].popularity.present_count(
                (TABLE, int(hot))
            )
            assert after > before - 1e-9
            assert after >= b_counts[hot]
        finally:
            recovered.close()

    def test_recovered_cluster_accepts_new_writes_on_stride(self, crashed):
        workdir, expected = crashed
        recovered = ClusterService.recover(
            shard_count=2,
            data_dir=workdir,
            guard_config=cluster_crash_driver.make_config(),
        )
        try:
            recovered.query(
                None, f"INSERT INTO {TABLE} VALUES (90, 'post-crash')"
            )
            owner = recovered.shard_map.shard_for(TABLE, 90)
            found = recovered.shards[owner].database.query(
                f"SELECT id FROM {TABLE} WHERE id = 90"
            )
            assert found == [(90,)]
            for index, shard in enumerate(recovered.shards):
                for rowid in shard.database.table(TABLE).rowids():
                    assert (rowid - 1) % 2 == index
        finally:
            recovered.close()
