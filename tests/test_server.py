"""Tests for the TCP server and client."""

import threading
import time

import pytest

from repro.core import AccountPolicy, GuardConfig, RealClock
from repro.server import (
    ConnectionClosed,
    DelayClient,
    DelayServer,
    ServerError,
)
from repro.service import DataProviderService


@pytest.fixture
def service():
    provider = DataProviderService(
        guard_config=GuardConfig(cap=0.001),
        account_policy=AccountPolicy(daily_query_quota=100),
    )
    provider.database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
    )
    provider.database.insert_rows(
        "t", [(i, f"v{i}") for i in range(1, 21)]
    )
    return provider


@pytest.fixture
def server(service):
    with DelayServer(service) as running:
        yield running


class TestProtocol:
    def test_ping(self, server):
        with DelayClient(*server.address) as client:
            assert client.ping()

    def test_register_and_query(self, server):
        with DelayClient(*server.address) as client:
            client.register("alice", subnet="10.0.0.0/8")
            response = client.query(
                "SELECT * FROM t WHERE id = 1", identity="alice"
            )
        assert response["rows"] == [[1, "v1"]]
        assert response["columns"] == ["id", "v"]
        assert response["delay"] > 0

    def test_query_error_surfaces(self, server):
        with DelayClient(*server.address) as client:
            client.register("bob")
            with pytest.raises(ServerError, match="expected"):
                client.query("SELECT FROM", identity="bob")

    def test_denial_carries_reason_and_retry(self, service, server):
        with DelayClient(*server.address) as client:
            client.register("carol")
            for i in range(100):
                client.query(
                    f"SELECT * FROM t WHERE id = {1 + i % 20}",
                    identity="carol",
                )
            with pytest.raises(ServerError) as excinfo:
                client.query("SELECT * FROM t WHERE id = 1",
                             identity="carol")
        assert excinfo.value.reason == "query_quota"
        assert excinfo.value.retry_after > 0

    def test_report(self, server):
        with DelayClient(*server.address) as client:
            client.register("dave")
            client.query("SELECT * FROM t WHERE id = 3", identity="dave")
            report = client.report()
        assert report["users"] >= 1
        assert report["queries"] >= 1
        assert report["extraction_cost"] > 0

    def test_identity_required_by_service(self, server):
        with DelayClient(*server.address) as client:
            with pytest.raises(ServerError, match="identity"):
                client.query("SELECT * FROM t WHERE id = 1")

    def test_unknown_op(self, server):
        with DelayClient(*server.address) as client:
            with pytest.raises(ServerError, match="unknown op"):
                client._call({"op": "dance"})

    def test_bad_json_line(self, server):
        response = server.handle_request("{not json")
        assert response["ok"] is False

    def test_non_dict_request(self, server):
        response = server.handle_request('"hello"')
        assert response["ok"] is False


class TestRobustness:
    def test_connection_closed_is_distinct_from_denial(self, service):
        server = DelayServer(service, drain_timeout=0.2)
        server.start()
        client = DelayClient(*server.address)
        assert client.ping()
        server.stop()
        with pytest.raises(ConnectionClosed):
            client.ping()
        # ConnectionClosed still is a ServerError, so old handlers work.
        assert issubclass(ConnectionClosed, ServerError)

    def test_oversized_request_refused(self, service):
        with DelayServer(service, max_request_bytes=256) as server:
            with DelayClient(*server.address) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.query(
                        "SELECT * FROM t WHERE v = '" + "x" * 1024 + "'"
                    )
        assert excinfo.value.reason == "request_too_large"

    def test_idle_connection_dropped_after_read_timeout(self, service):
        with DelayServer(service, read_timeout=0.2) as server:
            client = DelayClient(*server.address)
            assert client.ping()
            time.sleep(0.5)
            with pytest.raises(ConnectionClosed):
                client.ping()

    def test_handler_error_is_isolated_and_recorded(
        self, service, server, monkeypatch
    ):
        def boom(*args, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(service.guard, "execute", boom)
        with DelayClient(*server.address) as client:
            client.register("erin")
            with pytest.raises(ServerError, match="internal server error"):
                client.query("SELECT * FROM t WHERE id = 1",
                             identity="erin")
            # The connection (and server) survive the crash.
            assert client.ping()
        assert len(server.handler_errors) == 1
        assert isinstance(server.handler_errors[0], RuntimeError)

    def test_stop_drains_active_connections(self, service):
        server = DelayServer(service, drain_timeout=2.0)
        server.start()
        with DelayClient(*server.address) as client:
            client.register("frank")
            client.query("SELECT * FROM t WHERE id = 1", identity="frank")
        server.stop()
        assert server.active_connections == 0

    def test_invalid_server_options_rejected(self, service):
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError):
            DelayServer(service, read_timeout=0)
        with pytest.raises(ConfigError):
            DelayServer(service, max_request_bytes=0)
        with pytest.raises(ConfigError):
            DelayServer(service, drain_timeout=-1)


class TestClientRetry:
    @pytest.fixture
    def realtime_service(self):
        provider = DataProviderService(
            guard_config=GuardConfig(cap=0.001),
            account_policy=AccountPolicy(
                user_query_rate=50.0, user_query_burst=1.0
            ),
            clock=RealClock(),
        )
        provider.database.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
        )
        provider.database.insert_rows("t", [(1, "v1"), (2, "v2")])
        return provider

    def test_rate_denial_carries_retry_after(self, realtime_service):
        with DelayServer(realtime_service) as server:
            with DelayClient(*server.address) as client:
                client.register("gail")
                client.query("SELECT * FROM t WHERE id = 1",
                             identity="gail")
                with pytest.raises(ServerError) as excinfo:
                    client.query("SELECT * FROM t WHERE id = 2",
                                 identity="gail")
                assert (
                    client.last_retry_after == excinfo.value.retry_after
                )
        assert excinfo.value.reason == "user_rate"
        assert 0 < excinfo.value.retry_after < 1

    def test_retry_waits_out_the_denial(self, realtime_service):
        with DelayServer(realtime_service) as server:
            with DelayClient(*server.address) as client:
                client.register("hana")
                client.query("SELECT * FROM t WHERE id = 1",
                             identity="hana")
                # Bucket is empty (burst=1): an immediate retry is
                # denied, but honouring retry_after succeeds.
                response = client.query(
                    "SELECT * FROM t WHERE id = 2",
                    identity="hana",
                    retries=3,
                )
        assert response["rows"] == [[2, "v2"]]
        assert client.last_retry_after == 0.0

    def test_retry_gives_up_when_hint_exceeds_cap(self, service, server):
        # query_quota retry_after is ~a day: far beyond max_retry_wait,
        # so the client must surface the denial instead of sleeping.
        with DelayClient(*server.address) as client:
            client.register("ivan")
            for i in range(100):
                client.query(
                    f"SELECT * FROM t WHERE id = {1 + i % 20}",
                    identity="ivan",
                )
            with pytest.raises(ServerError) as excinfo:
                client.query(
                    "SELECT * FROM t WHERE id = 1",
                    identity="ivan",
                    retries=5,
                )
        assert excinfo.value.reason == "query_quota"


class TestConcurrentClients:
    def test_parallel_clients_all_served(self, server):
        with DelayClient(*server.address) as admin:
            for name in ("u0", "u1", "u2", "u3"):
                admin.register(name)

        errors = []
        counts = [0] * 4

        def worker(index):
            try:
                with DelayClient(*server.address) as client:
                    for item in range(1, 11):
                        client.query(
                            f"SELECT * FROM t WHERE id = {item}",
                            identity=f"u{index}",
                        )
                        counts[index] += 1
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert counts == [10, 10, 10, 10]


class TestObservabilityOps:
    def test_metrics_json_reconciles_with_stats(self, service, server):
        with DelayClient(*server.address) as client:
            client.register("mia")
            for item in range(1, 6):
                client.query(
                    f"SELECT * FROM t WHERE id = {item}", identity="mia"
                )
            scrape = client.metrics()["metrics"]
        stats = service.guard.stats
        assert scrape["guard_queries_total"]["value"] == stats.queries == 5
        assert scrape["guard_selects_total"]["value"] == stats.selects
        histogram = scrape["guard_select_delay_seconds"]
        assert histogram["count"] == 5
        assert histogram["sum"] == pytest.approx(stats.total_delay)
        # Server-side counters ride in the same registry.
        ops = {
            series["labels"]["op"]: series["value"]
            for series in scrape["server_requests_total"]["series"]
        }
        assert ops["query"] == 5
        assert ops["register"] == 1
        assert scrape["server_in_flight_connections"]["value"] >= 1

    def test_metrics_prometheus_exposition(self, server):
        with DelayClient(*server.address) as client:
            client.register("nils")
            client.query("SELECT * FROM t WHERE id = 1", identity="nils")
            response = client.metrics(format="prometheus")
        text = response["text"]
        assert response["content_type"].startswith("text/plain")
        assert "# TYPE guard_select_delay_seconds histogram" in text
        assert "guard_select_delay_seconds_count 1" in text
        assert 'guard_select_delay_seconds_bucket{le="+Inf"} 1' in text
        assert "guard_queries_total 1" in text
        assert "# TYPE server_requests_total counter" in text

    def test_metrics_unknown_format_refused(self, server):
        with DelayClient(*server.address) as client:
            with pytest.raises(ServerError, match="unknown metrics format"):
                client.metrics(format="xml")

    def test_trace_op_returns_lifecycle_spans(self, server):
        with DelayClient(*server.address) as client:
            client.register("olga")
            client.query("SELECT * FROM t WHERE id = 7", identity="olga")
            response = client.traces(limit=5)
        assert response["finished_total"] >= 1
        query_traces = [
            trace for trace in response["traces"] if trace["status"] == "ok"
        ]
        assert query_traces, response["traces"]
        newest = query_traces[0]
        assert newest["identity"] == "olga"
        assert "SELECT" in newest["sql"]
        stages = {span["name"] for span in newest["spans"]}
        # The server serves the sleep on its own connection thread and
        # appends that stage to the guard's finished trace, so a
        # delayed SELECT's recorded lifecycle is complete end to end.
        assert {
            "admit", "parse", "authorize", "execute", "account",
            "price", "record", "sleep",
        } <= stages
        assert newest["delay"] > 0
        span_total = sum(span["duration"] for span in newest["spans"])
        assert span_total == pytest.approx(newest["duration"], abs=0.01)

    def test_trace_limit_validated(self, server):
        with DelayClient(*server.address) as client:
            with pytest.raises(ServerError, match="limit"):
                client.traces(limit=0)

    def test_denials_counted_by_reason(self, service, server):
        with DelayClient(*server.address) as client:
            client.register("pia")
            for i in range(100):
                client.query(
                    f"SELECT * FROM t WHERE id = {1 + i % 20}",
                    identity="pia",
                )
            with pytest.raises(ServerError):
                client.query(
                    "SELECT * FROM t WHERE id = 1", identity="pia"
                )
            scrape = client.metrics()["metrics"]
        denied = {
            series["labels"]["reason"]: series["value"]
            for series in scrape["server_denied_total"]["series"]
        }
        assert denied["query_quota"] == 1
        assert service.guard.stats.denied == 1

    def test_handler_errors_bounded_with_exact_total(
        self, service, monkeypatch
    ):
        def boom(*args, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(service.guard, "execute", boom)
        with DelayServer(service, max_handler_errors=3) as server:
            with DelayClient(*server.address) as client:
                client.register("quin")
                for _ in range(7):
                    with pytest.raises(ServerError, match="internal"):
                        client.query(
                            "SELECT * FROM t WHERE id = 1", identity="quin"
                        )
                scrape = client.metrics()["metrics"]
            # The ring keeps only the newest 3; the exact lifetime count
            # survives in the attribute and the registry counter.
            assert len(server.handler_errors) == 3
            assert server.handler_errors_total == 7
            assert scrape["server_handler_errors_total"]["value"] == 7

    def test_concurrent_scrapes_during_query_traffic(self, server):
        with DelayClient(*server.address) as admin:
            admin.register("rex")

        errors = []
        scrapes = []

        def query_worker():
            try:
                with DelayClient(*server.address) as client:
                    for item in range(1, 21):
                        client.query(
                            f"SELECT * FROM t WHERE id = {1 + item % 20}",
                            identity="rex",
                        )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def scrape_worker():
            try:
                with DelayClient(*server.address) as client:
                    for _ in range(10):
                        scrapes.append(client.metrics()["metrics"])
                        client.metrics(format="prometheus")
                        client.traces(limit=5)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=query_worker) for _ in range(3)]
        threads += [threading.Thread(target=scrape_worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors
        assert list(server.handler_errors) == []
        # Scrapes taken mid-traffic are internally consistent: the
        # histogram count can never exceed the queries counter.
        for scrape in scrapes:
            assert (
                scrape["guard_select_delay_seconds"]["count"]
                <= scrape["guard_queries_total"]["value"]
            )
        with DelayClient(*server.address) as client:
            final = client.metrics()["metrics"]
        assert final["guard_queries_total"]["value"] == 60
        assert final["guard_select_delay_seconds"]["count"] == 60


class TestLifecycle:
    def test_double_start_rejected(self, service):
        server = DelayServer(service)
        server.start()
        try:
            with pytest.raises(Exception):
                server.start()
        finally:
            server.stop()

    def test_stop_is_idempotent_enough(self, service):
        server = DelayServer(service)
        server.start()
        server.stop()
