"""Tests for the TCP server and client."""

import threading

import pytest

from repro.core import AccountPolicy, GuardConfig
from repro.server import DelayClient, DelayServer, ServerError
from repro.service import DataProviderService


@pytest.fixture
def service():
    provider = DataProviderService(
        guard_config=GuardConfig(cap=0.001),
        account_policy=AccountPolicy(daily_query_quota=100),
    )
    provider.database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
    )
    provider.database.insert_rows(
        "t", [(i, f"v{i}") for i in range(1, 21)]
    )
    return provider


@pytest.fixture
def server(service):
    with DelayServer(service) as running:
        yield running


class TestProtocol:
    def test_ping(self, server):
        with DelayClient(*server.address) as client:
            assert client.ping()

    def test_register_and_query(self, server):
        with DelayClient(*server.address) as client:
            client.register("alice", subnet="10.0.0.0/8")
            response = client.query(
                "SELECT * FROM t WHERE id = 1", identity="alice"
            )
        assert response["rows"] == [[1, "v1"]]
        assert response["columns"] == ["id", "v"]
        assert response["delay"] > 0

    def test_query_error_surfaces(self, server):
        with DelayClient(*server.address) as client:
            client.register("bob")
            with pytest.raises(ServerError, match="expected"):
                client.query("SELECT FROM", identity="bob")

    def test_denial_carries_reason_and_retry(self, service, server):
        with DelayClient(*server.address) as client:
            client.register("carol")
            for i in range(100):
                client.query(
                    f"SELECT * FROM t WHERE id = {1 + i % 20}",
                    identity="carol",
                )
            with pytest.raises(ServerError) as excinfo:
                client.query("SELECT * FROM t WHERE id = 1",
                             identity="carol")
        assert excinfo.value.reason == "query_quota"
        assert excinfo.value.retry_after > 0

    def test_report(self, server):
        with DelayClient(*server.address) as client:
            client.register("dave")
            client.query("SELECT * FROM t WHERE id = 3", identity="dave")
            report = client.report()
        assert report["users"] >= 1
        assert report["queries"] >= 1
        assert report["extraction_cost"] > 0

    def test_identity_required_by_service(self, server):
        with DelayClient(*server.address) as client:
            with pytest.raises(ServerError, match="identity"):
                client.query("SELECT * FROM t WHERE id = 1")

    def test_unknown_op(self, server):
        with DelayClient(*server.address) as client:
            with pytest.raises(ServerError, match="unknown op"):
                client._call({"op": "dance"})

    def test_bad_json_line(self, server):
        response = server.handle_request("{not json")
        assert response["ok"] is False

    def test_non_dict_request(self, server):
        response = server.handle_request('"hello"')
        assert response["ok"] is False


class TestConcurrentClients:
    def test_parallel_clients_all_served(self, server):
        with DelayClient(*server.address) as admin:
            for name in ("u0", "u1", "u2", "u3"):
                admin.register(name)

        errors = []
        counts = [0] * 4

        def worker(index):
            try:
                with DelayClient(*server.address) as client:
                    for item in range(1, 11):
                        client.query(
                            f"SELECT * FROM t WHERE id = {item}",
                            identity=f"u{index}",
                        )
                        counts[index] += 1
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert counts == [10, 10, 10, 10]


class TestLifecycle:
    def test_double_start_rejected(self, service):
        server = DelayServer(service)
        server.start()
        try:
            with pytest.raises(Exception):
                server.start()
        finally:
            server.stop()

    def test_stop_is_idempotent_enough(self, service):
        server = DelayServer(service)
        server.start()
        server.stop()
