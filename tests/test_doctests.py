"""Run the package's docstring examples as tests."""

import doctest
import importlib

import pytest

# importlib avoids attribute shadowing: e.g. ``repro.engine.schema`` the
# *attribute* is the helper function re-exported by the package, not the
# submodule.
MODULE_NAMES = [
    "repro.adapters.sqlite_proxy",
    "repro.core.analysis",
    "repro.core.guard",
    "repro.engine.database",
    "repro.engine.parser.normalize",
    "repro.engine.schema",
    "repro.engine.types",
    "repro.service",
    "repro.sim.experiment",
    "repro.sim.metrics",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the module really has examples
