"""The I/O-loop fast path for result-cache hits.

A cached SELECT needs no worker: the I/O thread probes the guard in
``cache_only`` mode and, on a hit, prices + answers the request without
ever touching the admission queue. These tests pin the contract:

- hits are served on the loop (the counter moves, the worker pool's
  does not need to), still carry their §2 delay, and still burn account
  quota — the cache is a *throughput* optimisation, not a discount;
- misses fall through to the normal path and are charged exactly once;
- the whole path can be disabled per-server without losing caching.
"""

import pytest

from repro.core import AccountPolicy, GuardConfig
from repro.server import DelayClient, DelayServer, ServerError
from repro.service import DataProviderService


def build_service(quota=100, cache_size=32):
    provider = DataProviderService(
        guard_config=GuardConfig(
            policy="popularity",
            cap=5.0,
            unit=10.0,
            result_cache_size=cache_size,
        ),
        account_policy=AccountPolicy(daily_query_quota=quota),
    )
    provider.database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
    )
    provider.database.insert_rows(
        "t", [(i, f"v{i}") for i in range(1, 21)]
    )
    return provider


class TestFastPathHits:
    def test_hit_served_on_io_loop_with_delay(self):
        service = build_service()
        with DelayServer(service) as server:
            with DelayClient(*server.address) as client:
                client.register("alice")
                miss = client.query(
                    "SELECT * FROM t WHERE id = 3", identity="alice"
                )
                assert not miss.get("cached", False)
                assert server.cache_fast_path_hits == 0
                hit = client.query(
                    "SELECT * FROM t WHERE id = 3", identity="alice"
                )
        assert hit["cached"] is True
        assert hit["rows"] == miss["rows"]
        assert server.cache_fast_path_hits == 1
        # Priced, not free: the warm popularity delay still applies.
        assert hit["delay"] > 0

    def test_hits_counted_in_health_and_metrics(self):
        service = build_service()
        with DelayServer(service) as server:
            with DelayClient(*server.address) as client:
                client.register("alice")
                client.query("SELECT * FROM t", identity="alice")
                client.query("SELECT * FROM t", identity="alice")
                health = client.health()
                metrics = client.metrics()
        assert health["server"]["cache_fast_path_hits"] == 1
        gauge = metrics["metrics"]["server_cache_fast_path_hits_total"]
        assert gauge["value"] == 1.0

    def test_fast_path_hits_still_burn_quota(self):
        service = build_service(quota=5)
        with DelayServer(service) as server:
            with DelayClient(*server.address) as client:
                client.register("alice")
                sql = "SELECT * FROM t WHERE id = 1"
                for _ in range(5):  # 1 miss + 4 fast-path hits
                    client.query(sql, identity="alice")
                assert server.cache_fast_path_hits == 4
                with pytest.raises(ServerError, match="quota"):
                    client.query(sql, identity="alice")

    def test_denial_answered_on_io_loop(self):
        """An exhausted account is refused without queueing a worker."""
        service = build_service(quota=1)
        with DelayServer(service) as server:
            with DelayClient(*server.address) as client:
                client.register("alice")
                sql = "SELECT * FROM t WHERE id = 2"
                client.query(sql, identity="alice")
                with pytest.raises(ServerError, match="quota"):
                    client.query(sql, identity="alice")
        # The refused retry *was* a cache hit; it never became a worker
        # item, and it never became a served fast-path hit either.
        assert server.cache_fast_path_hits == 0


class TestMissesAndToggles:
    def test_miss_charged_exactly_once(self):
        """The cache-only probe must not pre-charge the account.

        With a quota of exactly N, N distinct (always-miss) queries
        succeed and the N+1th is refused — double charging on the probe
        would refuse around N/2.
        """
        service = build_service(quota=6)
        with DelayServer(service) as server:
            with DelayClient(*server.address) as client:
                client.register("alice")
                for i in range(1, 7):
                    client.query(
                        f"SELECT * FROM t WHERE id = {i}",
                        identity="alice",
                    )
                with pytest.raises(ServerError, match="quota"):
                    client.query(
                        "SELECT * FROM t WHERE id = 7", identity="alice"
                    )
        assert server.cache_fast_path_hits == 0

    def test_fast_path_disabled_still_serves_cached(self):
        service = build_service()
        with DelayServer(service, cache_fast_path=False) as server:
            with DelayClient(*server.address) as client:
                client.register("alice")
                client.query("SELECT * FROM t WHERE id = 4", identity="alice")
                hit = client.query(
                    "SELECT * FROM t WHERE id = 4", identity="alice"
                )
        assert hit["cached"] is True  # workers still use the cache
        assert server.cache_fast_path_hits == 0  # loop never did

    def test_no_cache_configured_never_probes(self):
        provider = DataProviderService(
            guard_config=GuardConfig(policy="popularity", cap=5.0)
        )
        provider.database.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY)"
        )
        provider.database.insert_rows("t", [(1,), (2,)])
        with DelayServer(provider) as server:
            with DelayClient(*server.address) as client:
                client.query("SELECT * FROM t")
                client.query("SELECT * FROM t")
        assert server.cache_fast_path_hits == 0
