"""Tests for live extraction-risk scoring (ForensicsMonitor)."""

import pytest

from repro.core.detection import OVERFLOW_IDENTITY, CoverageMonitor
from repro.obs import AuditLog, ForensicsMonitor
from repro.obs.metrics import MetricsRegistry


def build(population=100, **kwargs):
    defaults = dict(
        coverage_threshold=0.5,
        novelty_threshold=0.9,
        window=20,
        min_requests=5,
    )
    defaults.update(kwargs)
    return CoverageMonitor(population, **defaults)


class TestFlagTransitions:
    def test_robot_raises_one_flag(self):
        forensics = ForensicsMonitor(build())
        for key in range(60):
            forensics.observe("robot", [("t", key)])
        assert forensics.flagged() == {
            "robot": ("coverage", "novelty"),
        }
        assert forensics.flags_raised_total == 1
        assert forensics.flags_cleared_total == 0

    def test_flag_clears_when_signals_subside(self):
        monitor = build(
            population=1000, coverage_threshold=0.99, window=10,
        )
        forensics = ForensicsMonitor(monitor)
        for key in range(10):
            forensics.observe("probe", [("t", key)])
        assert "probe" in forensics.flagged()  # novelty tripped
        # Re-reading known tuples floods the window with repeats.
        for _ in range(3):
            for key in range(10):
                forensics.observe("probe", [("t", key)])
        assert forensics.flagged() == {}
        assert forensics.flags_raised_total == 1
        assert forensics.flags_cleared_total == 1

    def test_audit_events_on_raise_and_clear(self, tmp_path):
        log = AuditLog(str(tmp_path / "audit.jsonl"))
        monitor = build(
            population=1000, coverage_threshold=0.99, window=10,
        )
        forensics = ForensicsMonitor(monitor, audit=log)
        for key in range(10):
            forensics.observe("probe", [("t", key)], trace_id=f"t-{key}")
        for _ in range(3):
            for key in range(10):
                forensics.observe("probe", [("t", key)])
        log.close()
        kinds = [record["event"] for record in log.replay()]
        assert "forensic_flag" in kinds
        assert kinds[-1] == "forensic_flag_cleared"
        first_flag = next(
            record for record in log.replay()
            if record["event"] == "forensic_flag"
        )
        assert first_flag["identity"] == "probe"
        assert first_flag["reasons"] == ["novelty"]
        assert first_flag["trace_id"].startswith("t-")


class TestScoring:
    def test_extraction_eta_prices_remaining_population(self):
        forensics = ForensicsMonitor(build(population=100))
        # 20 distinct tuples at 0.5 s each: per-tuple price 0.5.
        for key in range(20):
            forensics.observe("walker", [("t", key)], delay=0.5)
        (entry,) = forensics.top(1)
        assert entry["identity"] == "walker"
        assert entry["delay_paid_seconds"] == pytest.approx(10.0)
        # 80 tuples remain at 0.5 s observed price.
        assert entry["eta_seconds"] == pytest.approx(80 * 0.5)

    def test_eta_zero_without_charged_tuples(self):
        forensics = ForensicsMonitor(build())
        forensics.observe("ghost", [])
        (entry,) = forensics.top(1)
        assert entry["eta_seconds"] == 0.0

    def test_top_ranks_robot_above_browser(self):
        forensics = ForensicsMonitor(build(population=100))
        for key in range(60):
            forensics.observe("robot", [("t", key)], delay=0.1)
        for _ in range(60):
            forensics.observe("browser", [("t", 1)], delay=0.1)
        ranked = forensics.top(2)
        assert [entry["identity"] for entry in ranked] == [
            "robot", "browser",
        ]
        assert ranked[0]["flagged"] and not ranked[1]["flagged"]
        assert ranked[0]["risk"] > 1.0 > ranked[1]["risk"]

    def test_summary_counts(self):
        forensics = ForensicsMonitor(build(population=100))
        for key in range(60):
            forensics.observe("robot", [("t", key)])
        forensics.observe("browser", [("t", 1)])
        summary = forensics.summary()
        assert summary["population"] == 100
        assert summary["tracked_identities"] == 2
        assert summary["flagged_identities"] == 1
        assert summary["flags_raised_total"] == 1


class TestBoundedCardinality:
    def test_ten_thousand_identities_fold_into_other(self):
        """Memory and metric cardinality stay bounded at scale."""
        monitor = build(
            population=1000, max_identities=100,
            max_keys_per_identity=50,
        )
        registry = MetricsRegistry()
        forensics = ForensicsMonitor(monitor, max_flagged_series=8)
        forensics.register_metrics(registry)
        for index in range(10_000):
            forensics.observe(f"user-{index}", [("t", index % 500)])
        # 100 individual profiles plus the _other aggregate.
        assert len(monitor) == 101
        assert OVERFLOW_IDENTITY in monitor.profiles
        assert monitor.overflowed_identities == 9_900
        # The aggregate is never flagged, whatever its totals look like.
        assert forensics.flagged() == {}
        assert monitor.evaluate(OVERFLOW_IDENTITY) is None
        snapshot = registry.to_json()
        assert (
            snapshot["forensics_tracked_identities"]["value"] == 101
        )

    def test_key_cap_bounds_coverage(self):
        monitor = build(population=1000, max_keys_per_identity=50)
        forensics = ForensicsMonitor(monitor)
        for key in range(200):
            forensics.observe("walker", [("t", key)])
        profile = monitor.profile("walker")
        assert len(profile.retrieved) == 50
        assert profile.tuples == 200
        assert monitor.coverage("walker") == pytest.approx(0.05)

    def test_flagged_gauges_overflow_label(self):
        """Adversarial identity counts cannot mint unbounded series."""
        registry = MetricsRegistry()
        monitor = build(population=10, coverage_threshold=0.1,
                        min_requests=1)
        forensics = ForensicsMonitor(monitor, max_flagged_series=3)
        forensics.register_metrics(registry)
        for index in range(8):
            forensics.observe(f"bot-{index}", [("t", index % 10)])
        series = registry.to_json()["forensics_identity_coverage"][
            "series"
        ]
        labels = {entry["labels"]["identity"] for entry in series}
        assert len(labels) <= 4  # 3 real + "_other"
        assert "_other" in labels

    def test_flag_metrics_count_reasons(self):
        registry = MetricsRegistry()
        forensics = ForensicsMonitor(build(population=100))
        forensics.register_metrics(registry)
        for key in range(60):
            forensics.observe("robot", [("t", key)])
        series = registry.to_json()["forensics_flags_total"]["series"]
        reasons = {
            entry["labels"]["reason"]: entry["value"] for entry in series
        }
        assert reasons == {"coverage": 1, "novelty": 1}
