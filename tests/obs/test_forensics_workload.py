"""Paired-workload forensics test: the robot trips, the browser never.

The acceptance property of the forensics layer is behavioural, not
unit-level: a scripted extraction robot walking the key space must be
flagged (coverage climbing toward 1, high novelty), while a legitimate
Zipf-skewed browser issuing the *same number of queries* must never be
flagged at any point during its session.
"""

import pytest

from repro.core import AccountPolicy, GuardConfig
from repro.service import DataProviderService
from repro.workloads import ZipfSampler

ROWS = 200
QUERIES = 200


def build_service():
    service = DataProviderService(
        guard_config=GuardConfig(
            policy="fixed",
            fixed_delay=0.05,
            forensics=True,
            forensics_coverage_threshold=0.5,
            forensics_novelty_threshold=0.9,
            forensics_window=50,
            forensics_min_requests=20,
        ),
        account_policy=AccountPolicy(),
    )
    service.register("loader")
    service.guard.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)",
        identity="loader",
    )
    service.database.insert_rows(
        "t", [(i, f"v{i}") for i in range(1, ROWS + 1)]
    )
    return service


def test_extraction_robot_is_flagged():
    service = build_service()
    service.register("robot")
    forensics = service.guard.forensics
    for i in range(1, QUERIES + 1):
        service.guard.execute(
            f"SELECT * FROM t WHERE id = {i}", identity="robot"
        )
    assert "robot" in forensics.flagged()
    (entry,) = forensics.top(1)
    assert entry["identity"] == "robot"
    assert entry["coverage"] == pytest.approx(1.0)
    assert entry["novelty"] >= 0.9
    assert "coverage" in entry["reasons"]
    # §2.2 online: the full walk paid delay, nothing remains.
    assert entry["delay_paid_seconds"] > 0
    assert entry["eta_seconds"] == 0.0


def test_zipf_browser_with_equal_volume_is_never_flagged():
    service = build_service()
    service.register("browser")
    forensics = service.guard.forensics
    sampler = ZipfSampler(ROWS, alpha=1.2, seed=42)
    for rank in sampler.sample_many(QUERIES):
        service.guard.execute(
            f"SELECT * FROM t WHERE id = {int(rank)}",
            identity="browser",
        )
        # Never flagged at ANY point in the session, not just the end.
        assert forensics.flagged() == {}, (
            "legitimate Zipf browser was flagged as an extraction "
            f"suspect: {forensics.flagged()}"
        )
    (entry,) = forensics.top(1)
    assert entry["coverage"] < 0.5
    assert entry["risk"] < 1.0


def test_robot_flagged_while_browser_browses():
    """Interleaved traffic: only the robot trips the monitor."""
    service = build_service()
    service.register("robot")
    service.register("browser")
    forensics = service.guard.forensics
    sampler = ZipfSampler(ROWS, alpha=1.2, seed=7)
    ranks = sampler.sample_many(QUERIES)
    for i in range(QUERIES):
        service.guard.execute(
            f"SELECT * FROM t WHERE id = {i + 1}", identity="robot"
        )
        service.guard.execute(
            f"SELECT * FROM t WHERE id = {int(ranks[i])}",
            identity="browser",
        )
    flagged = forensics.flagged()
    assert "robot" in flagged
    assert "browser" not in flagged
    ranked = forensics.top(2)
    assert ranked[0]["identity"] == "robot"
    assert ranked[0]["risk"] > ranked[1]["risk"]
