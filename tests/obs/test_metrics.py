"""Tests for the metrics registry: counters, gauges, histograms."""

import math
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    delay_buckets,
)
from repro.obs.metrics import OVERFLOW_LABEL


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        assert counter.total() == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("c_total")
        with pytest.raises(MetricError, match="cannot decrease"):
            counter.inc(-1)

    def test_labelled_series(self):
        counter = Counter("denied_total", label_names=("reason",))
        counter.inc(reason="quota")
        counter.inc(reason="quota")
        counter.inc(reason="rate")
        assert counter.value(reason="quota") == 2
        assert counter.value(reason="rate") == 1
        assert counter.value(reason="never") == 0
        assert counter.total() == 3

    def test_missing_and_extra_labels_rejected(self):
        counter = Counter("denied_total", label_names=("reason",))
        with pytest.raises(MetricError, match="requires labels"):
            counter.inc()
        with pytest.raises(MetricError, match="does not accept"):
            counter.inc(reason="x", extra="y")

    def test_series_overflow_folds_into_other(self):
        counter = Counter(
            "per_identity_total", label_names=("identity",), max_series=3
        )
        for index in range(10):
            counter.inc(identity=f"user{index}")
        # Memory stays bounded; the total stays exact.
        assert len(counter.series()) <= 4  # 3 real + _other
        assert counter.total() == 10
        assert counter.value(identity=OVERFLOW_LABEL) > 0

    def test_invalid_name_rejected(self):
        with pytest.raises(MetricError, match="not a valid identifier"):
            Counter("bad name")

    def test_render_prometheus_lines(self):
        counter = Counter("denied_total", label_names=("reason",))
        counter.inc(reason="quota")
        assert counter.render() == ['denied_total{reason="quota"} 1']

    def test_thread_safety_no_lost_increments(self):
        counter = Counter("c_total")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("inflight")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value() == 4

    def test_callback_backed(self):
        state = {"n": 7}
        gauge = Gauge("population").set_function(lambda: state["n"])
        assert gauge.value() == 7
        state["n"] = 9
        assert gauge.value() == 9
        with pytest.raises(MetricError, match="callback-backed"):
            gauge.set(1)

    def test_raising_callback_skipped_not_fatal(self):
        gauge = Gauge("weird").set_function(lambda: 1 / 0)
        assert gauge.render() == []
        registry = MetricsRegistry()
        registry.register(gauge)
        # The scrape survives the broken callback.
        assert "weird" not in registry.render_prometheus()

    def test_labelled_callback_rejected(self):
        gauge = Gauge("g", label_names=("k",))
        with pytest.raises(MetricError, match="unlabelled"):
            gauge.set_function(lambda: 1.0)


class TestHistogram:
    def test_count_sum_min_max_exact(self):
        histogram = Histogram("h")
        for value in [0.0, 0.5, 2.0, 2.0, 100.0]:
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(104.5)
        assert histogram.min == 0.0
        assert histogram.max == 100.0
        assert histogram.mean() == pytest.approx(104.5 / 5)

    def test_quantiles_exact_for_distinct_buckets(self):
        histogram = Histogram("h")
        histogram.observe_many([4.0, 1.0, 3.0, 2.0])
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(0.5) == 2.0
        assert histogram.quantile(1.0) == 4.0

    def test_quantile_bounded_error_within_bucket(self):
        histogram = Histogram("h")
        # 1.0 and 1.1 share a bucket (10 buckets/decade ≈ 26% wide):
        # the estimate is the bucket mean, clamped to [min, max].
        histogram.observe_many([1.0, 1.1])
        estimate = histogram.quantile(0.5)
        assert 1.0 <= estimate <= 1.1

    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.count == 0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.min == 0.0
        assert histogram.max == 0.0

    def test_zero_has_its_own_bucket(self):
        histogram = Histogram("h")
        histogram.observe_many([0.0] * 99 + [50.0])
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantile(1.0) == 50.0

    def test_quantile_out_of_range(self):
        histogram = Histogram("h")
        with pytest.raises(MetricError, match="quantile"):
            histogram.quantile(1.5)

    def test_nan_rejected(self):
        histogram = Histogram("h")
        with pytest.raises(MetricError, match="NaN"):
            histogram.observe(float("nan"))

    def test_memory_bounded_regardless_of_observations(self):
        histogram = Histogram("h")
        buckets = len(histogram.bucket_bounds()) + 1
        for index in range(10_000):
            histogram.observe(index % 97 * 0.01)
        assert len(histogram._counts) == buckets
        assert histogram.count == 10_000

    def test_render_cumulative_buckets(self):
        histogram = Histogram("h", buckets=[1.0, 10.0])
        histogram.observe_many([0.5, 5.0, 50.0])
        lines = histogram.render()
        assert 'h_bucket{le="1"} 1' in lines
        assert 'h_bucket{le="10"} 2' in lines
        assert 'h_bucket{le="+Inf"} 3' in lines
        assert "h_count 3" in lines

    def test_snapshot_materialises_only_touched_buckets(self):
        histogram = Histogram("h")
        histogram.observe_many([1.0, 1.0, 500.0])
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert len(snapshot["buckets"]) == 2
        assert snapshot["quantiles"]["p50"] == 1.0

    def test_bad_bucket_bounds_rejected(self):
        with pytest.raises(MetricError, match="ascending"):
            Histogram("h", buckets=[1.0, 1.0])
        with pytest.raises(MetricError, match="finite"):
            Histogram("h", buckets=[1.0, math.inf])

    def test_delay_buckets_layout(self):
        bounds = delay_buckets()
        assert bounds[0] == 0.0
        assert bounds[1] == pytest.approx(1e-4)
        assert bounds[-1] == pytest.approx(1e5)
        assert bounds == sorted(bounds)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total")
        second = registry.counter("c_total")
        assert first is second

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(MetricError, match="already registered"):
            registry.histogram("x")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", label_names=("a",))
        with pytest.raises(MetricError, match="labels"):
            registry.counter("x", label_names=("b",))

    def test_register_adopts_external_metric(self):
        registry = MetricsRegistry()
        histogram = Histogram("delays")
        assert registry.register(histogram) is histogram
        assert registry.get("delays") is histogram
        # Re-registering the same object is a no-op; a different object
        # under the same name is an error.
        registry.register(histogram)
        with pytest.raises(MetricError, match="already registered"):
            registry.register(Histogram("delays"))

    def test_to_json_and_prometheus_cover_all(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "help a").inc(3)
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(2.0)
        payload = registry.to_json()
        assert set(payload) == {"a_total", "b", "c"}
        text = registry.render_prometheus()
        assert "# HELP a_total help a" in text
        assert "# TYPE a_total counter" in text
        assert "a_total 3" in text
        assert "b 1.5" in text
        assert "c_count 1" in text
