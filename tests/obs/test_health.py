"""Tests for build info and the rolling SLO tracker."""

import pytest

from repro.obs import SloTracker, build_info


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBuildInfo:
    def test_reports_version_and_python(self):
        info = build_info()
        assert set(info) == {"version", "python"}
        assert info["version"]
        assert info["python"].count(".") == 2


class TestSloTracker:
    def test_validation(self):
        with pytest.raises(ValueError):
            SloTracker(horizon=0)
        with pytest.raises(ValueError):
            SloTracker(availability_target=1.0)
        with pytest.raises(ValueError):
            SloTracker(latency_threshold=0.0)
        with pytest.raises(ValueError):
            SloTracker().note("parked")

    def test_denials_do_not_burn_the_error_budget(self):
        clock = FakeClock()
        tracker = SloTracker(availability_target=0.9, clock=clock)
        for _ in range(8):
            tracker.note("ok", latency=0.01)
        tracker.note("denied")
        tracker.note("denied")
        summary = tracker.summary(60)
        assert summary["requests"] == 10
        assert summary["denied"] == 2
        assert summary["availability"] == 1.0
        assert summary["burn_rate"] == 0.0

    def test_sheds_and_errors_burn(self):
        clock = FakeClock()
        tracker = SloTracker(availability_target=0.9, clock=clock)
        for _ in range(8):
            tracker.note("ok")
        tracker.note("shed")
        tracker.note("error")
        summary = tracker.summary(60)
        assert summary["availability"] == pytest.approx(0.8)
        # 20% failure against a 10% budget: burning 2x.
        assert summary["burn_rate"] == pytest.approx(2.0)

    def test_latency_mean_and_slow_fraction(self):
        clock = FakeClock()
        tracker = SloTracker(latency_threshold=0.1, clock=clock)
        tracker.note("ok", latency=0.05)
        tracker.note("ok", latency=0.05)
        tracker.note("ok", latency=0.5)
        summary = tracker.summary(60)
        assert summary["mean_latency_seconds"] == pytest.approx(0.2)
        assert summary["slow_fraction"] == pytest.approx(1 / 3)

    def test_goodput_is_ok_per_window_second(self):
        clock = FakeClock()
        tracker = SloTracker(clock=clock)
        for _ in range(30):
            tracker.note("ok")
            clock.advance(1.0)
        summary = tracker.summary(60)
        assert summary["goodput_per_second"] == pytest.approx(0.5)

    def test_old_slots_age_out_of_the_window(self):
        clock = FakeClock()
        tracker = SloTracker(horizon=3600, clock=clock)
        tracker.note("error")
        clock.advance(301)
        tracker.note("ok")
        recent = tracker.summary(300)
        assert recent["requests"] == 1
        assert recent["errors"] == 0
        assert recent["availability"] == 1.0
        full = tracker.summary(3600)
        assert full["errors"] == 1

    def test_ring_reuses_slots_beyond_horizon(self):
        clock = FakeClock()
        tracker = SloTracker(horizon=10, clock=clock)
        for _ in range(25):
            tracker.note("ok")
            clock.advance(1.0)
        # Notes landed at seconds 1000..1024; the ring retains the last
        # 10 slots and the 10 s window (floor-exclusive) sees 9 of them.
        summary = tracker.summary(10)
        assert summary["requests"] == 9
        assert tracker.noted_total == 25

    def test_empty_window_is_healthy(self):
        tracker = SloTracker(clock=FakeClock())
        summary = tracker.summary(300)
        assert summary["requests"] == 0
        assert summary["availability"] == 1.0
        assert summary["mean_latency_seconds"] == 0.0

    def test_report_structure(self):
        tracker = SloTracker(clock=FakeClock())
        tracker.note("ok", latency=0.01)
        report = tracker.report(windows=(60, 600))
        assert set(report["windows"]) == {"60", "600"}
        assert report["availability_target"] == 0.999
        assert report["windows"]["60"]["ok"] == 1
