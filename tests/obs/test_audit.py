"""Tests for the audit event log and its background JSONL writer."""

import json
import threading
import time

import pytest

from repro.obs import (
    AUDIT_SCHEMA_VERSION,
    AuditLog,
    BackgroundJsonlWriter,
    iter_audit_events,
)
from repro.obs.metrics import MetricsRegistry
from repro.testing import injected_faults


class TestBackgroundJsonlWriter:
    def test_writes_records_as_json_lines(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        writer = BackgroundJsonlWriter(str(path))
        assert writer.submit({"a": 1})
        assert writer.submit({"b": 2})
        writer.close()
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line) for line in lines] == [
            {"a": 1}, {"b": 2},
        ]
        assert writer.written_total == 2
        assert writer.dropped_total == 0

    def test_flush_waits_for_pending_records(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        writer = BackgroundJsonlWriter(str(path))
        for index in range(50):
            writer.submit({"n": index})
        assert writer.flush()
        assert writer.written_total == 50
        writer.close()

    def test_submit_after_close_is_refused(self, tmp_path):
        writer = BackgroundJsonlWriter(str(tmp_path / "a.jsonl"))
        writer.close()
        assert writer.submit({"late": True}) is False
        writer.close()  # idempotent

    def test_full_queue_drops_instead_of_blocking(self, tmp_path):
        """A stalled disk bounds audit completeness, never submit()."""
        path = tmp_path / "audit.jsonl"
        with injected_faults() as faults:
            faults.stall("audit.write", seconds=0.4, times=1)
            writer = BackgroundJsonlWriter(str(path), max_queue=4)
            writer.submit({"n": 0})  # the writer thread stalls on this
            time.sleep(0.05)
            started = time.perf_counter()
            results = [writer.submit({"n": i}) for i in range(1, 10)]
            elapsed = time.perf_counter() - started
        # submit never waited on the stalled disk...
        assert elapsed < 0.2
        # ...and the overflow was counted, not silently lost.
        assert results.count(False) == writer.dropped_total > 0
        writer.close()
        written = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert len(written) == writer.written_total
        assert writer.written_total + writer.dropped_total == 10

    def test_write_errors_counted_and_recovered(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        writer = BackgroundJsonlWriter(str(path))
        with injected_faults() as faults:
            faults.fail("audit.write", times=1)
            writer.submit({"lost": True})
            writer.submit({"kept": True})
            writer.flush()
        assert writer.write_errors_total == 1
        assert writer.written_total == 1
        writer.close()
        assert json.loads(path.read_text().strip()) == {"kept": True}

    def test_rotation_keeps_max_files(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        writer = BackgroundJsonlWriter(
            str(path), max_bytes=64, max_files=3
        )
        for index in range(40):
            writer.submit({"n": index, "pad": "x" * 16})
        writer.close()
        assert writer.rotations_total > 2
        files = sorted(p.name for p in tmp_path.iterdir())
        assert len(files) <= 3
        assert "audit.jsonl.1" in files
        assert not (tmp_path / "audit.jsonl.3").exists()

    def test_replay_is_oldest_first_across_rotations(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        writer = BackgroundJsonlWriter(
            str(path), max_bytes=64, max_files=4
        )
        for index in range(12):
            writer.submit({"n": index})
        writer.close()
        replayed = [
            record["n"]
            for record in iter_audit_events(str(path), max_files=4)
        ]
        assert replayed == sorted(replayed)
        assert replayed[-1] == 11

    def test_invalid_bounds_rejected(self, tmp_path):
        path = str(tmp_path / "a.jsonl")
        with pytest.raises(ValueError):
            BackgroundJsonlWriter(path, max_bytes=0)
        with pytest.raises(ValueError):
            BackgroundJsonlWriter(path, max_files=0)
        with pytest.raises(ValueError):
            BackgroundJsonlWriter(path, max_queue=0)

    def test_concurrent_read_while_rotating(self, tmp_path):
        """A reader replaying during heavy rotation never crashes."""
        path = tmp_path / "audit.jsonl"
        writer = BackgroundJsonlWriter(
            str(path), max_bytes=128, max_files=3
        )
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    for record in iter_audit_events(str(path), max_files=3):
                        assert isinstance(record, dict)
                except Exception as error:  # pragma: no cover
                    errors.append(error)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        for index in range(300):
            writer.submit({"n": index, "pad": "y" * 24})
        writer.flush()
        stop.set()
        thread.join(timeout=10)
        writer.close()
        assert not errors
        assert writer.rotations_total > 0


class TestIterAuditEvents:
    def test_skips_corrupt_blank_and_non_dict_lines(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text(
            '{"n": 1}\n'
            "\n"
            '{"torn": tru\n'
            "[1, 2, 3]\n"
            '"just a string"\n'
            '{"n": 2}\n'
        )
        assert [r["n"] for r in iter_audit_events(str(path))] == [1, 2]

    def test_missing_files_are_tolerated(self, tmp_path):
        assert list(iter_audit_events(str(tmp_path / "nope.jsonl"))) == []


class TestAuditLog:
    def test_emit_stamps_envelope(self, tmp_path):
        log = AuditLog(
            str(tmp_path / "audit.jsonl"), clock=lambda: 123.5
        )
        assert log.emit("query_served", trace_id="t-1", rows=3)
        log.close()
        (record,) = list(log.replay())
        assert record["v"] == AUDIT_SCHEMA_VERSION
        assert record["ts"] == 123.5
        assert record["event"] == "query_served"
        assert record["trace_id"] == "t-1"
        assert record["rows"] == 3

    def test_fields_cannot_clobber_envelope(self, tmp_path):
        log = AuditLog(str(tmp_path / "audit.jsonl"), clock=lambda: 9.0)
        log.emit("checkpoint", **{"v": 99, "ts": -1, "event": "spoofed"})
        log.close()
        (record,) = list(log.replay())
        assert record["v"] == AUDIT_SCHEMA_VERSION
        assert record["ts"] == 9.0
        assert record["event"] == "checkpoint"

    def test_per_kind_counts_and_stats(self, tmp_path):
        log = AuditLog(str(tmp_path / "audit.jsonl"))
        log.emit("query_served")
        log.emit("query_served")
        log.emit("query_denied")
        log.flush()
        stats = log.stats()
        assert stats["by_kind"] == {
            "query_served": 2, "query_denied": 1,
        }
        assert stats["written"] == 3
        log.close()

    def test_register_metrics_exports_writer_health(self, tmp_path):
        registry = MetricsRegistry()
        log = AuditLog(str(tmp_path / "audit.jsonl"))
        log.register_metrics(registry)
        log.emit("delay_priced", delay=1.5)
        log.flush()
        snapshot = registry.to_json()
        assert snapshot["audit_records_written_total"]["value"] == 1
        assert snapshot["audit_records_dropped_total"]["value"] == 0
        series = snapshot["audit_events_total"]["series"]
        assert series[0]["labels"] == {"kind": "delay_priced"}
        assert series[0]["value"] == 1
        log.close()
