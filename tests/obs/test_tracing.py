"""Tests for query-lifecycle tracing."""

import json
import time

import pytest

from repro.obs import QueryTrace, Tracer
from repro.obs.tracing import SQL_LIMIT


class TestQueryTrace:
    def test_spans_record_offset_and_duration(self):
        trace = QueryTrace(identity="alice", sql="SELECT 1")
        base = trace._perf_start
        trace.add_span("parse", base, base + 0.001)
        trace.add_span("engine", base + 0.001, base + 0.005)
        trace.finish("ok", delay=0.25, rows=3)
        assert [span.name for span in trace.spans] == ["parse", "engine"]
        assert trace.spans[0].offset == pytest.approx(0.0)
        assert trace.spans[1].offset == pytest.approx(0.001)
        assert trace.spans[1].duration == pytest.approx(0.004)
        assert trace.span_total() == pytest.approx(0.005)
        assert trace.stage_seconds()["engine"] == pytest.approx(0.004)
        assert trace.status == "ok"
        assert trace.delay == 0.25
        assert trace.rows == 3

    def test_repeated_stage_names_accumulate(self):
        trace = QueryTrace()
        base = trace._perf_start
        trace.add_span("record", base, base + 0.001)
        trace.add_span("record", base + 0.002, base + 0.004)
        assert trace.stage_seconds() == {"record": pytest.approx(0.003)}

    def test_sql_truncated(self):
        trace = QueryTrace(sql="x" * 1000)
        assert len(trace.sql) == SQL_LIMIT

    def test_to_dict_omits_absent_fields(self):
        payload = QueryTrace().finish().to_dict()
        assert "identity" not in payload
        assert "sql" not in payload
        assert "reason" not in payload
        denied = QueryTrace().finish("denied", reason="quota").to_dict()
        assert denied["reason"] == "quota"


class TestTracer:
    def test_ring_buffer_bounded(self):
        tracer = Tracer(capacity=3)
        for index in range(10):
            tracer.finish(tracer.start(identity=f"u{index}").finish())
        assert len(tracer) == 3
        assert tracer.finished_total == 10
        newest_first = tracer.recent()
        assert [trace.identity for trace in newest_first] == [
            "u9", "u8", "u7",
        ]

    def test_recent_limit(self):
        tracer = Tracer()
        for _ in range(5):
            tracer.finish(tracer.start().finish())
        assert len(tracer.recent(limit=2)) == 2
        with pytest.raises(ValueError):
            tracer.recent(limit=0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear_keeps_lifetime_total(self):
        tracer = Tracer()
        tracer.finish(tracer.start().finish())
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.finished_total == 1

    def test_jsonl_sink_path(self, tmp_path):
        sink = tmp_path / "traces.jsonl"
        tracer = Tracer(sink=str(sink))
        tracer.finish(tracer.start(identity="a", sql="SELECT 1").finish())
        tracer.finish(
            tracer.start(identity="b").finish("denied", reason="quota")
        )
        tracer.close()
        lines = sink.read_text().strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["identity"] == "a"
        assert second["status"] == "denied"

    def test_file_object_sink(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            tracer = Tracer(sink=handle)
            tracer.finish(tracer.start().finish())
        assert json.loads(path.read_text())["status"] == "ok"

    def test_duration_tracks_wall_clock(self):
        trace = QueryTrace()
        time.sleep(0.01)
        trace.finish()
        assert trace.duration >= 0.01

    def test_every_trace_carries_a_unique_id(self):
        first, second = QueryTrace(), QueryTrace()
        assert first.trace_id != second.trace_id
        assert first.to_dict()["trace_id"] == first.trace_id

    def test_slow_sink_disk_cannot_stall_tracing(self, tmp_path):
        """Regression: the JSONL sink used to write synchronously on
        the serving thread; a slow disk now only delays the background
        writer, never ``finish``."""
        from repro.testing import injected_faults

        sink = tmp_path / "traces.jsonl"
        tracer = Tracer(sink=str(sink), sink_max_queue=4)
        with injected_faults() as faults:
            faults.stall("audit.write", seconds=0.5, times=1)
            started = time.perf_counter()
            for index in range(12):
                tracer.finish(
                    tracer.start(identity=f"u{index}").finish()
                )
            elapsed = time.perf_counter() - started
            # 12 finishes against a 0.5 s-per-record disk: synchronous
            # writes would need ~0.5 s before the first one returned.
            assert elapsed < 0.25
            writer = tracer.sink_writer
            assert writer.dropped_total > 0  # bounded, loss counted
            tracer.close()
        assert tracer.finished_total == 12
        written = sink.read_text().strip().splitlines()
        assert len(written) == writer.written_total
        assert writer.written_total + writer.dropped_total == 12
