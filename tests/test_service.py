"""Tests for the DataProviderService facade."""

import pytest

from repro.core import AccessDenied, AccountPolicy, GuardConfig, VirtualClock
from repro.core.errors import ConfigError
from repro.engine.persistence import PersistenceError
from repro.service import DataProviderService


def make_service(rows=50, account_policy=None, **config_kwargs):
    service = DataProviderService(
        guard_config=GuardConfig(**config_kwargs) if config_kwargs else None,
        account_policy=account_policy,
    )
    service.database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
    )
    service.database.insert_rows(
        "t", [(i, f"v{i}") for i in range(1, rows + 1)]
    )
    return service


class TestQueries:
    def test_anonymous_queries_without_accounts(self):
        service = make_service()
        result = service.query(None, "SELECT * FROM t WHERE id = 1")
        assert result.rows == [(1, "v1")]
        assert result.delay > 0

    def test_register_requires_account_policy(self):
        with pytest.raises(ConfigError, match="without accounts"):
            make_service().register("alice")

    def test_registered_flow(self):
        service = make_service(account_policy=AccountPolicy())
        service.register("alice", subnet="10.0.0.0/8")
        result = service.query("alice", "SELECT * FROM t WHERE id = 2")
        assert result.rows == [(2, "v2")]
        assert service.accounts.account("alice").queries_issued == 1

    def test_quota_enforced_through_service(self):
        service = make_service(
            account_policy=AccountPolicy(daily_query_quota=1)
        )
        service.register("bob")
        service.query("bob", "SELECT * FROM t WHERE id = 1")
        with pytest.raises(AccessDenied):
            service.query("bob", "SELECT * FROM t WHERE id = 2")


class TestReport:
    def test_report_contents(self):
        service = make_service(rows=20, cap=5.0)
        for _ in range(10):
            service.query(None, "SELECT * FROM t WHERE id = 1")
        report = service.report()
        assert report.queries == 10
        assert report.users == 0
        assert report.extraction_cost > 0
        assert report.max_extraction_cost == pytest.approx(100.0)
        assert report.protection_ratio > 1
        assert report.top_tuples[0][:2] == ("t", 1)
        assert "extraction cost" in report.render()

    def test_report_with_no_traffic(self):
        report = make_service().report()
        assert report.median_user_delay == 0.0
        assert report.protection_ratio == float("inf")

    def test_top_tuple_shares_normalised_under_decay(self):
        # Every request hits the same tuple, so its share of the
        # (decayed) traffic is exactly 100% regardless of decay rate.
        # The old report divided decayed weights by the raw request
        # total, shrinking the share as decay accumulated.
        service = make_service(rows=20, cap=5.0, decay_rate=1.5)
        for _ in range(10):
            service.query(None, "SELECT * FROM t WHERE id = 1")
        report = service.report()
        table, rowid, share = report.top_tuples[0]
        assert (table, rowid) == ("t", 1)
        assert share == pytest.approx(1.0)

    def test_top_tuple_shares_stay_normalised_after_apply_decay(self):
        service = make_service(rows=20, cap=5.0, decay_rate=1.0)
        for _ in range(10):
            service.query(None, "SELECT * FROM t WHERE id = 1")
        service.guard.popularity.apply_decay(4.0)
        for _ in range(2):
            service.query(None, "SELECT * FROM t WHERE id = 2")
        report = service.report()
        shares = {
            (table, rowid): share
            for table, rowid, share in report.top_tuples
        }
        # Shares are proportions of the decayed total: they must sum to
        # at most 1 and reflect the post-decay balance (the old key-1
        # history is worth 10/4 = 2.5 present requests vs 2 for key 2).
        assert sum(shares.values()) <= 1.0 + 1e-9
        assert shares[("t", 1)] == pytest.approx(2.5 / 4.5)
        assert shares[("t", 2)] == pytest.approx(2.0 / 4.5)


class TestPersistence:
    def test_save_load_round_trip_keeps_delays(self, tmp_path):
        service = make_service(rows=30, cap=8.0)
        for _ in range(100):
            service.query(None, "SELECT * FROM t WHERE id = 3")
        warm = service.guard.delay_for("t", 3)
        cold = service.guard.delay_for("t", 17)
        path = tmp_path / "svc.json"
        service.save(path)

        restored = DataProviderService.load(
            path, guard_config=GuardConfig(cap=8.0)
        )
        assert restored.guard.delay_for("t", 3) == pytest.approx(warm)
        assert restored.guard.delay_for("t", 17) == pytest.approx(cold)
        assert restored.database.row_count("t") == 30

    def test_load_requires_matching_decay(self, tmp_path):
        service = make_service(rows=5, decay_rate=1.5)
        path = tmp_path / "svc.json"
        service.save(path)
        with pytest.raises(ConfigError, match="decay rate"):
            DataProviderService.load(
                path, guard_config=GuardConfig(decay_rate=1.0)
            )

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            DataProviderService.load(tmp_path / "nope.json")

    def test_load_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all")
        with pytest.raises(PersistenceError, match="corrupt"):
            DataProviderService.load(path)

    def test_load_wrong_format(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(PersistenceError, match="format"):
            DataProviderService.load(path)

    def test_decayed_state_round_trips(self, tmp_path):
        service = make_service(rows=10, decay_rate=1.01)
        for item in (1, 1, 2, 3, 1):
            service.query(None, f"SELECT * FROM t WHERE id = {item}")
        before = service.guard.delay_for("t", 1)
        path = tmp_path / "svc.json"
        service.save(path)
        restored = DataProviderService.load(
            path, guard_config=GuardConfig(decay_rate=1.01)
        )
        assert restored.guard.delay_for("t", 1) == pytest.approx(before)
        # And the restored tracker keeps decaying consistently.
        restored.query(None, "SELECT * FROM t WHERE id = 2")
        assert restored.guard.popularity.total_requests == 6
