"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestSqlCommand:
    def test_execute_and_save(self, tmp_path, capsys):
        db_path = tmp_path / "db.json"
        status = main(
            [
                "sql", "--db", str(db_path),
                "-e", "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)",
                "-e", "INSERT INTO t VALUES (1, 'x'), (2, 'y')",
                "--save",
            ]
        )
        assert status == 0
        assert db_path.exists()
        out = capsys.readouterr().out
        assert "2 row(s) affected" in out

    def test_query_persisted_database(self, tmp_path, capsys):
        db_path = tmp_path / "db.json"
        main(
            [
                "sql", "--db", str(db_path),
                "-e", "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)",
                "-e", "INSERT INTO t VALUES (1, 'hello')",
                "--save",
            ]
        )
        capsys.readouterr()
        status = main(["sql", "--db", str(db_path), "-e", "SELECT v FROM t"])
        assert status == 0
        out = capsys.readouterr().out
        assert "hello" in out and "(1 row(s))" in out

    def test_nulls_rendered(self, capsys):
        main(
            [
                "sql",
                "-e", "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)",
                "-e", "INSERT INTO t (id) VALUES (1)",
                "-e", "SELECT v FROM t",
            ]
        )
        assert "NULL" in capsys.readouterr().out

    def test_sql_error_reported(self, capsys):
        status = main(["sql", "-e", "SELECT FROM"])
        assert status == 1
        assert "error:" in capsys.readouterr().err

    def test_save_without_db_rejected(self, capsys):
        status = main(["sql", "-e", "CREATE TABLE t (a INTEGER)", "--save"])
        assert status == 2

    def test_no_sql_given(self, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin.isatty", lambda: True)
        status = main(["sql"])
        assert status == 2


class TestCsvCommand:
    def test_export_import_round_trip(self, tmp_path, capsys):
        db_path = tmp_path / "db.json"
        csv_path = tmp_path / "t.csv"
        main(
            [
                "sql", "--db", str(db_path),
                "-e", "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)",
                "-e", "INSERT INTO t VALUES (1, 'a'), (2, 'b')",
                "--save",
            ]
        )
        status = main(
            ["csv", "export", "t", str(csv_path), "--db", str(db_path)]
        )
        assert status == 0
        assert "exported 2" in capsys.readouterr().out

        target_db = tmp_path / "db2.json"
        main(
            [
                "sql", "--db", str(target_db),
                "-e", "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)",
                "--save",
            ]
        )
        capsys.readouterr()
        status = main(
            ["csv", "import", "t", str(csv_path), "--db", str(target_db)]
        )
        assert status == 0
        assert "imported 2" in capsys.readouterr().out

    def test_missing_file_errors(self, tmp_path, capsys):
        status = main(["csv", "import", "t", str(tmp_path / "nope.csv")])
        assert status == 1
        assert "error:" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_prints_predictions(self, capsys):
        status = main(
            ["analyze", "--tuples", "10000", "--alpha", "1.5",
             "--cap", "10"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "median user delay" in out
        assert "adversary delay" in out
        assert "N*d_max bound" in out
        assert "27.78 h" in out  # 10000 * 10s

    def test_no_cap(self, capsys):
        status = main(
            ["analyze", "--tuples", "1000", "--alpha", "1.0", "--no-cap"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "cap (d_max)           : none" in out

    def test_staleness_option(self, capsys):
        main(
            ["analyze", "--tuples", "1000", "--alpha", "1.0",
             "--staleness-c", "1.0"]
        )
        out = capsys.readouterr().out
        assert "eq.12 staleness" in out and "50.0%" in out


class TestExperimentsCommand:
    def test_runs_named_experiment(self, capsys):
        status = main(["experiments", "fig1", "--scale", "0.01"])
        assert status == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
