"""Concurrent stress test: many clients through a live DelayServer.

Asserts the acceptance criteria for concurrent serving: with N client
threads each issuing M queries over real TCP connections, the guard
records exactly N*M queries, the popularity counts equal the tuples
charged (no lost increments), the virtual clock absorbed exactly the
delay that was charged, and no handler thread died on an exception.

Defaults are small (runs in seconds); scale with STRESS_THREADS /
STRESS_QUERIES for soak runs::

    STRESS_THREADS=32 STRESS_QUERIES=200 pytest -m stress
"""

import os
import threading

import pytest

from repro.core import GuardConfig
from repro.server import DelayClient, DelayServer
from repro.service import DataProviderService

THREADS = int(os.environ.get("STRESS_THREADS", "8"))
QUERIES = int(os.environ.get("STRESS_QUERIES", "25"))
ROWS = 20


@pytest.fixture
def service():
    provider = DataProviderService(guard_config=GuardConfig(cap=2.0))
    provider.database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
    )
    provider.database.insert_rows(
        "t", [(i, f"v{i}") for i in range(1, ROWS + 1)]
    )
    return provider


@pytest.mark.stress
class TestConcurrentStress:
    def test_no_lost_counts_under_concurrent_traffic(self, service):
        errors = []
        served = []

        def worker(index):
            try:
                with DelayClient(*server.address) as client:
                    for item in range(QUERIES):
                        key = 1 + (index * QUERIES + item) % ROWS
                        response = client.query(
                            f"SELECT * FROM t WHERE id = {key}"
                        )
                        assert response["rows"] == [[key, f"v{key}"]]
                        served.append(response["delay"])
            except BaseException as error:  # pragma: no cover - failure
                errors.append(error)

        with DelayServer(service) as server:
            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors
            assert list(server.handler_errors) == []
            with DelayClient(*server.address) as client:
                scrape = client.metrics()["metrics"]
                prometheus = client.metrics(format="prometheus")["text"]

        stats = service.guard.stats
        expected = THREADS * QUERIES
        # Every query counted exactly once.
        assert stats.queries == expected
        assert stats.selects == expected
        assert len(served) == expected
        # The scraped registry reconciles exactly with the guard stats:
        # the histogram IS stats.delay_histogram, the counters were fed
        # by the same code path.
        assert scrape["guard_queries_total"]["value"] == expected
        assert scrape["guard_selects_total"]["value"] == expected
        histogram = scrape["guard_select_delay_seconds"]
        assert histogram["count"] == expected
        assert histogram["sum"] == pytest.approx(stats.total_delay)
        requests_by_op = {
            tuple(series["labels"].values()): series["value"]
            for series in scrape["server_requests_total"]["series"]
        }
        assert requests_by_op[("query",)] == expected
        assert f"guard_queries_total {expected}" in prometheus
        assert f"guard_select_delay_seconds_count {expected}" in prometheus
        # Single-tuple SELECTs: popularity totals equal tuples charged.
        assert stats.tuples_charged == expected
        assert service.guard.popularity.total_requests == expected
        count_total = sum(
            count for _, count in service.guard.popularity.snapshot()
        )
        assert count_total == pytest.approx(expected)
        # The shared virtual clock absorbed exactly the charged delay.
        assert stats.total_delay == pytest.approx(sum(served))
        assert service.clock.total_slept == pytest.approx(stats.total_delay)

    def test_extraction_cost_consistent_after_stress(self, service):
        with DelayServer(service) as server:
            host, port = server.address

            def worker(index):
                with DelayClient(host, port) as client:
                    for item in range(QUERIES):
                        client.query(
                            f"SELECT * FROM t WHERE id = {1 + item % ROWS}"
                        )

            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            with DelayClient(host, port) as client:
                report = client.report()
            assert list(server.handler_errors) == []

        # The reported extraction cost is a pure function of the counts:
        # recomputing it after the fact gives the same answer, and it is
        # bounded by the N*d_max cap line.
        recomputed = service.guard.extraction_cost()
        assert report["extraction_cost"] == pytest.approx(recomputed)
        assert recomputed <= service.guard.max_extraction_cost() + 1e-9
        assert report["queries"] == THREADS * QUERIES


@pytest.mark.stress
class TestOverloadStress:
    """Drive the server past every admission limit at once.

    max_connections + OVERFLOW clients connect simultaneously; the
    overflow must be shed in well under 100 ms each, the process thread
    count must stay bounded by the worker pool (not connection count),
    and every *accepted* request must still complete correctly.
    """

    OVERFLOW = 6

    def test_overflow_is_shed_fast_and_admitted_work_completes(
        self, service
    ):
        import time as _time

        from repro.server import ServerError

        max_connections = max(4, THREADS)
        before_threads = threading.active_count()
        results = []
        lock = threading.Lock()

        def worker(index):
            outcome = None
            started = _time.perf_counter()
            try:
                with DelayClient(*server.address) as client:
                    response = client.query(
                        f"SELECT * FROM t WHERE id = {1 + index % ROWS}",
                        retries=0,
                    )
                    assert response["ok"] is True
                    outcome = ("served", _time.perf_counter() - started)
            except ServerError as error:
                outcome = (
                    "shed" if error.reason in ("overloaded", None) else "error",
                    _time.perf_counter() - started,
                )
            except BaseException as error:  # pragma: no cover - failure
                outcome = ("crash", error)
            with lock:
                results.append(outcome)

        with DelayServer(
            service,
            max_workers=4,
            max_connections=max_connections,
        ) as server:
            total = max_connections + self.OVERFLOW
            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in range(total)
            ]
            for thread in threads:
                thread.start()
            # Thread bound: worker pool + I/O loop + scheduler + main
            # machinery, *independent of how many clients piled in*.
            during_threads = threading.active_count()
            for thread in threads:
                thread.join(timeout=60)
            assert not any(kind == "crash" for kind, _ in results), results
            assert list(server.handler_errors) == []
            server_side_threads = during_threads - total - before_threads
            assert server_side_threads <= server.max_workers + 4

        served = [t for kind, t in results if kind == "served"]
        shed = [t for kind, t in results if kind == "shed"]
        assert len(results) == total
        # Everyone got an answer, and whoever was admitted was served.
        assert len(served) >= 1
        assert len(served) + len(shed) == total
        # Sheds are fast — the whole point of bounded admission. Allow
        # generous scheduler slack over the 100 ms budget on loaded CI.
        for elapsed in shed:
            assert elapsed < 1.0
        if shed:
            assert min(shed) < 0.1
            assert server.shed_counts.get("connection_limit", 0) >= 1
