"""Unit tests for the fault-injection layer (:mod:`repro.testing.faults`)."""

import threading
import time

import pytest

from repro.testing import (
    FaultError,
    FaultInjector,
    fire,
    injected_faults,
    injector,
)


class TestFaultInjector:
    def test_inactive_injector_is_a_noop(self):
        local = FaultInjector()
        assert not local.active
        local.fire("anything")  # nothing armed: does not raise

    def test_fail_raises_default_fault_error(self):
        local = FaultInjector()
        local.fail("db.read")
        with pytest.raises(FaultError):
            local.fire("db.read")

    def test_fail_raises_custom_error(self):
        local = FaultInjector()
        local.fail("db.read", error=OSError("disk on fire"))
        with pytest.raises(OSError, match="disk on fire"):
            local.fire("db.read")

    def test_rule_expires_after_times_firings(self):
        local = FaultInjector()
        local.fail("p", times=2)
        with pytest.raises(FaultError):
            local.fire("p")
        with pytest.raises(FaultError):
            local.fire("p")
        local.fire("p")  # spent: no longer raises
        assert not local.active

    def test_stall_sleeps(self):
        local = FaultInjector()
        local.stall("slow", seconds=0.05)
        start = time.perf_counter()
        local.fire("slow")
        assert time.perf_counter() - start >= 0.05

    def test_callback_rule(self):
        local = FaultInjector()
        seen = []
        local.on_fire("cb", lambda: seen.append("cb"))
        local.fire("cb")
        assert seen == ["cb"]

    def test_counts_by_point(self):
        local = FaultInjector()
        local.fail("a", times=3)
        for _ in range(3):
            with pytest.raises(FaultError):
                local.fire("a")
        assert local.fired_by_point["a"] == 3
        assert local.fired_total == 3

    def test_disarm_all_clears_rules(self):
        local = FaultInjector()
        local.fail("x", times=100)
        local.disarm_all()
        assert not local.active
        local.fire("x")

    def test_unmatched_point_passes_through(self):
        local = FaultInjector()
        local.fail("only.this")
        local.fire("something.else")  # armed but different point

    def test_concurrent_firing_respects_times(self):
        local = FaultInjector()
        local.fail("race", times=10)
        errors = []

        def worker():
            for _ in range(20):
                try:
                    local.fire("race")
                except FaultError:
                    errors.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(errors) == 10


class TestProcessWideInjector:
    def test_module_fire_uses_shared_injector(self):
        with injected_faults() as faults:
            assert faults is injector
            faults.fail("module.point")
            with pytest.raises(FaultError):
                fire("module.point")

    def test_context_manager_disarms_on_exit(self):
        with injected_faults() as faults:
            faults.fail("leaky", times=1000)
        assert not injector.active
        fire("leaky")  # disarmed

    def test_context_manager_disarms_on_error(self):
        with pytest.raises(RuntimeError):
            with injected_faults() as faults:
                faults.fail("leaky2", times=1000)
                raise RuntimeError("test escape")
        assert not injector.active
