"""Tests for the popularity tracker (§2.3 learning machinery)."""

import math

import pytest

from repro.core.counts import SpaceSavingStore
from repro.core.errors import ConfigError
from repro.core.popularity import AdaptiveTracker, PopularityTracker


class TestBasicCounting:
    def test_no_decay_popularity_is_relative_frequency(self):
        tracker = PopularityTracker()
        for _ in range(3):
            tracker.record("a")
        tracker.record("b")
        assert tracker.popularity("a") == pytest.approx(0.75)
        assert tracker.popularity("b") == pytest.approx(0.25)

    def test_unseen_key_zero(self):
        tracker = PopularityTracker()
        tracker.record("a")
        assert tracker.popularity("zzz") == 0.0

    def test_empty_tracker_zero(self):
        assert PopularityTracker().popularity("a") == 0.0

    def test_total_requests(self):
        tracker = PopularityTracker()
        tracker.record_many(["a", "b", "a"])
        assert tracker.total_requests == 3

    def test_weight_batches(self):
        tracker = PopularityTracker()
        tracker.record("a", weight=5.0)
        tracker.record("b", weight=5.0)
        assert tracker.popularity("a") == pytest.approx(0.5)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigError):
            PopularityTracker().record("a", weight=0)

    def test_present_count_matches_raw_without_decay(self):
        tracker = PopularityTracker()
        for _ in range(7):
            tracker.record("a")
        assert tracker.present_count("a") == pytest.approx(7.0)


class TestDecay:
    def test_decay_prefers_recent_keys(self):
        tracker = PopularityTracker(decay_rate=1.1)
        for _ in range(100):
            tracker.record("old")
        for _ in range(20):
            tracker.record("new")
        # Despite fewer accesses, 'new' dominates the decayed view.
        assert tracker.popularity("new", "decayed") > tracker.popularity(
            "old", "decayed"
        )

    def test_no_decay_keeps_history_dominant(self):
        tracker = PopularityTracker(decay_rate=1.0)
        for _ in range(100):
            tracker.record("old")
        for _ in range(20):
            tracker.record("new")
        assert tracker.popularity("old") > tracker.popularity("new")

    def test_raw_mode_shrinks_with_decay(self):
        """The paper normalisation: decayed count over raw total."""
        no_decay = PopularityTracker(decay_rate=1.0)
        decayed = PopularityTracker(decay_rate=1.01)
        for _ in range(500):
            no_decay.record("a")
            decayed.record("a")
        assert decayed.popularity("a", "raw") < no_decay.popularity("a", "raw")

    def test_decayed_mode_is_proper_probability(self):
        tracker = PopularityTracker(decay_rate=1.05)
        for key in ["a", "b", "a", "c", "a"]:
            tracker.record(key)
        total = sum(
            tracker.popularity(key, "decayed") for key in ["a", "b", "c"]
        )
        assert total == pytest.approx(1.0)

    def test_decay_rate_below_one_rejected(self):
        with pytest.raises(ConfigError):
            PopularityTracker(decay_rate=0.9)

    def test_unknown_mode_rejected(self):
        tracker = PopularityTracker()
        tracker.record("a")
        with pytest.raises(ConfigError):
            tracker.popularity("a", "bogus")


class TestRescaling:
    def test_rescale_triggers_and_preserves_ratios(self):
        tracker = PopularityTracker(decay_rate=2.0, rescale_threshold=1e6)
        for _ in range(10):
            tracker.record("a")
        for _ in range(30):
            tracker.record("b")
        assert tracker.rescales >= 1
        # b should utterly dominate after 30 recent accesses at decay 2.
        assert tracker.popularity("b", "decayed") > 0.99

    def test_rescale_keeps_popularity_continuous(self):
        tracker = PopularityTracker(decay_rate=1.5, rescale_threshold=100.0)
        history = []
        for index in range(50):
            tracker.record("a" if index % 2 else "b")
            history.append(tracker.popularity("a", "decayed"))
        # Alternating accesses with decay: popularity stays in a stable
        # band; a rescale bug would produce a jump toward 0 or 1.
        for value in history[10:]:
            assert 0.3 < value < 0.8

    def test_explicit_apply_decay(self):
        tracker = PopularityTracker()
        for _ in range(100):
            tracker.record("old")
        tracker.apply_decay(100.0)
        tracker.record("new")
        assert tracker.popularity("new", "decayed") == pytest.approx(
            0.5, rel=0.1
        )

    def test_apply_decay_below_one_rejected(self):
        with pytest.raises(ConfigError):
            PopularityTracker().apply_decay(0.5)


class TestRanks:
    def test_rank_orders_by_count(self):
        tracker = PopularityTracker(rank_refresh=1)
        for _ in range(5):
            tracker.record("top")
        for _ in range(3):
            tracker.record("mid")
        tracker.record("low")
        assert tracker.rank("top") == 1
        assert tracker.rank("mid") == 2
        assert tracker.rank("low") == 3

    def test_unseen_ranks_last(self):
        tracker = PopularityTracker(rank_refresh=1)
        tracker.record("a")
        assert tracker.rank("unseen") == 2

    def test_rank_cache_refreshes(self):
        tracker = PopularityTracker(rank_refresh=2)
        tracker.record("a")
        assert tracker.rank("a") == 1
        for _ in range(5):
            tracker.record("b")
        assert tracker.rank("b") == 1

    def test_snapshot_sorted_desc(self):
        tracker = PopularityTracker()
        tracker.record_many(["x", "y", "x", "x", "y", "z"])
        snapshot = tracker.snapshot()
        assert [key for key, _ in snapshot] == ["x", "y", "z"]
        counts = [count for _, count in snapshot]
        assert counts == sorted(counts, reverse=True)


class TestReset:
    def test_reset_forgets_everything(self):
        tracker = PopularityTracker(decay_rate=1.2)
        tracker.record_many(["a", "b"])
        tracker.reset()
        assert tracker.total_requests == 0
        assert tracker.popularity("a") == 0.0
        assert tracker.tracked_keys() == 0


class TestWithSampledStore:
    def test_space_saving_backend_tracks_heavy_keys(self):
        tracker = PopularityTracker(store=SpaceSavingStore(capacity=8))
        for index in range(2000):
            tracker.record("hot" if index % 2 else f"cold-{index}")
        assert tracker.popularity("hot") > 0.25


class TestAdaptiveTracker:
    def test_requires_unique_rates(self):
        with pytest.raises(ConfigError):
            AdaptiveTracker([1.0, 1.0])

    def test_requires_at_least_one(self):
        with pytest.raises(ConfigError):
            AdaptiveTracker([])

    def test_stationary_stream_prefers_low_decay(self):
        adaptive = AdaptiveTracker([1.0, 1.5], score_smoothing=0.05)
        for index in range(400):
            adaptive.record("a" if index % 4 else "b")
        assert adaptive.active_rate == 1.0

    def test_shifting_stream_prefers_high_decay(self):
        adaptive = AdaptiveTracker([1.0, 1.5], score_smoothing=0.05)
        # Popularity flips between disjoint key sets every 40 requests.
        for phase in range(10):
            for index in range(40):
                adaptive.record(f"phase-{phase}-{index % 2}")
        assert adaptive.active_rate == 1.5

    def test_delegation_matches_active(self):
        adaptive = AdaptiveTracker([1.0, 2.0])
        for _ in range(50):
            adaptive.record("k")
        assert adaptive.popularity("k") == adaptive.active.popularity("k")
        assert adaptive.rank("k") == 1
        assert adaptive.total_requests == 50
        assert adaptive.snapshot()[0][0] == "k"

    def test_scores_exposed(self):
        adaptive = AdaptiveTracker([1.0, 1.2])
        adaptive.record("a")
        scores = adaptive.scores()
        assert set(scores) == {1.0, 1.2}
