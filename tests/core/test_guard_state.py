"""Tests for guard state dump/load."""

import pytest

from repro.core import ConfigError, DelayGuard, GuardConfig, VirtualClock
from repro.engine import Database


def make_guard(decay=1.0, rows=30):
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    db.insert_rows("t", [(i, "x") for i in range(1, rows + 1)])
    return DelayGuard(
        db,
        config=GuardConfig(cap=5.0, decay_rate=decay),
        clock=VirtualClock(),
    )


class TestDumpLoad:
    def test_round_trip_preserves_delays(self):
        source = make_guard()
        for item in (1, 1, 1, 2, 7):
            source.execute(f"SELECT * FROM t WHERE id = {item}")
        source.execute("UPDATE t SET v = 'u' WHERE id = 2")
        state = source.dump_state()

        target = make_guard()
        target.load_state(state)
        for rowid in range(1, 31):
            assert target.delay_for("t", rowid) == pytest.approx(
                source.delay_for("t", rowid)
            )
        assert target.last_update_times == source.last_update_times

    def test_round_trip_with_decay(self):
        source = make_guard(decay=1.05)
        for item in (1, 2, 1, 3, 1):
            source.execute(f"SELECT * FROM t WHERE id = {item}")
        target = make_guard(decay=1.05)
        target.load_state(source.dump_state())
        assert target.popularity.total_requests == 5
        assert target.delay_for("t", 1) == pytest.approx(
            source.delay_for("t", 1)
        )
        # Continued recording stays consistent between the two guards.
        source.execute("SELECT * FROM t WHERE id = 4")
        target.execute("SELECT * FROM t WHERE id = 4")
        assert target.delay_for("t", 4) == pytest.approx(
            source.delay_for("t", 4)
        )

    def test_state_is_json_compatible(self):
        import json

        guard = make_guard()
        guard.execute("SELECT * FROM t WHERE id = 1")
        text = json.dumps(guard.dump_state())
        restored = make_guard()
        restored.load_state(json.loads(text))
        assert restored.popularity.total_requests == 1

    def test_decay_mismatch_rejected(self):
        source = make_guard(decay=1.5)
        target = make_guard(decay=1.0)
        with pytest.raises(ConfigError, match="decay rate"):
            target.load_state(source.dump_state())

    def test_bad_format_rejected(self):
        with pytest.raises(ConfigError, match="format"):
            make_guard().load_state({"format": "bogus"})

    def test_load_replaces_existing_state(self):
        source = make_guard()
        source.execute("SELECT * FROM t WHERE id = 1")
        target = make_guard()
        for _ in range(50):
            target.execute("SELECT * FROM t WHERE id = 9")
        target.load_state(source.dump_state())
        assert target.popularity.total_requests == 1
        assert target.popularity.present_count(("t", 9)) == 0.0
