"""Tests for count stores (§4.4 storage strategies)."""

import pytest

from repro.core.counts import (
    CountingSampleStore,
    InMemoryCountStore,
    SpaceSavingStore,
    WriteBehindCountStore,
)
from repro.core.errors import ConfigError


class TestInMemoryCountStore:
    def test_add_and_get(self):
        store = InMemoryCountStore()
        store.add(1)
        store.add(1, 2.5)
        assert store.get(1) == 3.5
        assert store.get(2) == 0.0

    def test_items_and_len(self):
        store = InMemoryCountStore()
        store.add(1)
        store.add(2, 4.0)
        assert dict(store.items()) == {1: 1.0, 2: 4.0}
        assert len(store) == 2

    def test_scale(self):
        store = InMemoryCountStore()
        store.add(1, 10.0)
        store.scale(0.5)
        assert store.get(1) == 5.0

    def test_clear(self):
        store = InMemoryCountStore()
        store.add(1)
        store.clear()
        assert len(store) == 0


class TestWriteBehindCountStore:
    def test_exact_counts_survive_eviction(self):
        store = WriteBehindCountStore(cache_size=2)
        for key in range(10):
            store.add(key, float(key))
        for key in range(10):
            assert store.get(key) == float(key)

    def test_eviction_causes_backing_io(self):
        store = WriteBehindCountStore(cache_size=2)
        for key in range(5):
            store.add(key)
        assert store.backing_writes >= 3

    def test_cache_hit_avoids_io(self):
        store = WriteBehindCountStore(cache_size=8)
        store.add(1)
        reads_before = store.backing_reads
        for _ in range(100):
            store.add(1)
        assert store.backing_reads == reads_before

    def test_flush_persists_dirty_entries(self):
        store = WriteBehindCountStore(cache_size=8)
        store.add(1, 3.0)
        store.flush()
        assert store._backing[1] == 3.0

    def test_items_includes_cached_and_backed(self):
        store = WriteBehindCountStore(cache_size=1)
        store.add(1, 1.0)
        store.add(2, 2.0)  # evicts key 1
        assert dict(store.items()) == {1: 1.0, 2: 2.0}

    def test_scale_covers_everything(self):
        store = WriteBehindCountStore(cache_size=1)
        store.add(1, 2.0)
        store.add(2, 4.0)
        store.scale(0.5)
        assert store.get(1) == 1.0
        assert store.get(2) == 2.0

    def test_len_deduplicates(self):
        store = WriteBehindCountStore(cache_size=1)
        store.add(1)
        store.add(2)
        store.get(1)
        assert len(store) == 2

    def test_invalid_cache_size(self):
        with pytest.raises(ConfigError):
            WriteBehindCountStore(cache_size=0)

    def test_clear(self):
        store = WriteBehindCountStore(cache_size=2)
        store.add(1)
        store.clear()
        assert store.get(1) == 0.0

    def test_clear_resets_io_counters(self):
        # A reused store must not report the previous run's phantom I/O
        # in the cache-effectiveness numbers.
        store = WriteBehindCountStore(cache_size=2)
        for key in range(10):
            store.add(key)
        assert store.backing_reads > 0 and store.backing_writes > 0
        store.clear()
        assert store.backing_reads == 0
        assert store.backing_writes == 0
        # get() on a cleared store repopulates the counters from zero.
        store.get(1)
        assert store.backing_reads == 1


class TestCountingSampleStore:
    def test_exact_below_capacity_with_unit_tau(self):
        store = CountingSampleStore(capacity=100, seed=1)
        for _ in range(50):
            store.add(7)
        assert store.get(7) == 50.0  # tau still 1 => exact

    def test_respects_capacity(self):
        store = CountingSampleStore(capacity=16, seed=2)
        for key in range(500):
            store.add(key)
        assert len(store) <= 16
        assert store.tau > 1.0

    def test_heavy_hitter_survives_decimation(self):
        store = CountingSampleStore(capacity=32, seed=3)
        for round_ in range(300):
            store.add(0)  # heavy key
            store.add(1000 + round_)  # stream of singletons
        assert store.get(0) > 100  # estimate retains the hot key

    def test_estimate_includes_tau_adjustment(self):
        store = CountingSampleStore(capacity=4, seed=4)
        for key in range(100):
            store.add(key % 8)
        for key, estimate in store.items():
            assert estimate >= store.tau - 1.0

    def test_weighted_add_rejected(self):
        store = CountingSampleStore()
        with pytest.raises(ConfigError, match="unit increments"):
            store.add(1, 2.0)

    def test_scale_rejected(self):
        with pytest.raises(ConfigError):
            CountingSampleStore().scale(0.5)

    def test_clear_resets_tau(self):
        store = CountingSampleStore(capacity=4, seed=5)
        for key in range(100):
            store.add(key)
        store.clear()
        assert store.tau == 1.0 and len(store) == 0

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            CountingSampleStore(capacity=0)
        with pytest.raises(ConfigError):
            CountingSampleStore(growth=1.0)


class TestSpaceSavingStore:
    def test_exact_below_capacity(self):
        store = SpaceSavingStore(capacity=10)
        store.add(1, 5.0)
        store.add(2, 3.0)
        assert store.get(1) == 5.0

    def test_capacity_bound(self):
        store = SpaceSavingStore(capacity=8)
        for key in range(100):
            store.add(key)
        assert len(store) == 8

    def test_overestimate_bound(self):
        store = SpaceSavingStore(capacity=10)
        total = 0.0
        true_counts = {}
        for i in range(1000):
            key = i % 25
            store.add(key)
            total += 1.0
            true_counts[key] = true_counts.get(key, 0) + 1
        for key, estimate in store.items():
            assert estimate >= true_counts.get(key, 0)
            assert estimate <= true_counts.get(key, 0) + total / 10

    def test_weighted_adds(self):
        store = SpaceSavingStore(capacity=4)
        store.add(1, 100.0)
        for key in range(2, 50):
            store.add(key, 0.1)
        assert store.get(1) >= 100.0  # heavy key retained

    def test_scale(self):
        store = SpaceSavingStore(capacity=4)
        store.add(1, 8.0)
        store.scale(0.25)
        assert store.get(1) == 2.0

    def test_eviction_inherits_weight(self):
        store = SpaceSavingStore(capacity=1)
        store.add(1, 5.0)
        store.add(2, 1.0)
        assert store.get(2) == 6.0  # inherited 5 + own 1
        assert store.get(1) == 0.0
