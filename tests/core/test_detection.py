"""Tests for extraction detection (coverage + novelty monitoring)."""

import pytest

from repro.core import AccountManager, DelayGuard, GuardConfig, VirtualClock
from repro.core.detection import (
    OVERFLOW_IDENTITY,
    CoverageMonitor,
    attach_monitor,
)
from repro.core.errors import ConfigError
from repro.engine import Database
from repro.workloads.zipf import ZipfSampler


def feed(monitor, identity, items, table="t"):
    for item in items:
        monitor.record(identity, [(table, item)])


class TestSignals:
    def test_coverage_counts_distinct(self):
        monitor = CoverageMonitor(population=100)
        feed(monitor, "u", [1, 2, 3, 1, 1])
        assert monitor.coverage("u") == pytest.approx(0.03)

    def test_novelty_rate_window(self):
        monitor = CoverageMonitor(population=100, window=4)
        feed(monitor, "u", [1, 2, 1, 2])  # recent: T T F F
        assert monitor.novelty_rate("u") == pytest.approx(0.5)

    def test_unknown_identity_defaults(self):
        monitor = CoverageMonitor(population=10)
        assert monitor.coverage("ghost") == 0.0
        assert monitor.novelty_rate("ghost") == 0.0
        assert monitor.evaluate("ghost") is None

    def test_callable_population(self):
        size = [10]
        monitor = CoverageMonitor(population=lambda: size[0])
        feed(monitor, "u", [1, 2, 3, 4, 5])
        assert monitor.coverage("u") == pytest.approx(0.5)
        size[0] = 20
        assert monitor.coverage("u") == pytest.approx(0.25)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            CoverageMonitor(10, coverage_threshold=0)
        with pytest.raises(ConfigError):
            CoverageMonitor(10, novelty_threshold=1.5)
        with pytest.raises(ConfigError):
            CoverageMonitor(10, window=0)
        with pytest.raises(ConfigError):
            CoverageMonitor(10, min_requests=0)


class TestFlagging:
    def test_coverage_flag(self):
        monitor = CoverageMonitor(
            population=10, coverage_threshold=0.5, min_requests=1000
        )
        feed(monitor, "robot", range(1, 6))
        suspect = monitor.evaluate("robot")
        assert suspect is not None
        assert "coverage" in suspect.reasons

    def test_novelty_flag_respects_grace_period(self):
        monitor = CoverageMonitor(
            population=10_000,
            coverage_threshold=1.0,
            novelty_threshold=0.9,
            min_requests=50,
        )
        feed(monitor, "young", range(1, 30))  # all novel but < 50 reqs
        assert monitor.evaluate("young") is None
        feed(monitor, "young", range(30, 80))
        suspect = monitor.evaluate("young")
        assert suspect is not None and "novelty" in suspect.reasons

    def test_suspects_sorted_by_coverage(self):
        monitor = CoverageMonitor(
            population=10, coverage_threshold=0.3, min_requests=1000
        )
        feed(monitor, "big", range(1, 9))
        feed(monitor, "small", range(1, 5))
        names = [s.identity for s in monitor.suspects()]
        assert names == ["big", "small"]


class TestDiscrimination:
    def test_robot_flagged_zipf_browser_not(self):
        """The core claim: extraction traffic separates cleanly from
        legitimate skewed browsing."""
        population = 2000
        monitor = CoverageMonitor(
            population=population,
            coverage_threshold=0.5,
            novelty_threshold=0.9,
            window=300,
            min_requests=200,
        )
        # A legitimate browser: 3000 Zipf(1.2) requests.
        sampler = ZipfSampler(population, alpha=1.2, seed=31)
        feed(monitor, "browser", (int(i) for i in sampler.sample_many(3000)))
        # A robot: walks the key space once.
        feed(monitor, "robot", range(1, population + 1))

        suspects = {s.identity for s in monitor.suspects()}
        assert "robot" in suspects
        assert "browser" not in suspects
        assert monitor.novelty_rate("robot") == pytest.approx(1.0)
        assert monitor.novelty_rate("browser") < 0.5


class TestGuardAttachment:
    def test_attach_monitor_profiles_queries(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        db.insert_rows("t", [(i, "x") for i in range(1, 21)])
        clock = VirtualClock()
        accounts = AccountManager(clock=clock)
        guard = DelayGuard(
            db, config=GuardConfig(cap=0.001), clock=clock,
            accounts=accounts,
        )
        accounts.register("u")
        monitor = CoverageMonitor(population=guard.population)
        attach_monitor(guard, monitor)
        for item in range(1, 6):
            guard.execute(
                f"SELECT * FROM t WHERE id = {item}", identity="u"
            )
        assert monitor.coverage("u") == pytest.approx(0.25)

    def test_anonymous_queries_not_profiled(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        db.insert_rows("t", [(1, "x")])
        guard = DelayGuard(db, clock=VirtualClock())
        monitor = CoverageMonitor(population=guard.population)
        attach_monitor(guard, monitor)
        guard.execute("SELECT * FROM t WHERE id = 1")
        assert monitor.profiles == {}


class TestBoundedMemory:
    def test_identity_cap_folds_tail_into_other(self):
        monitor = CoverageMonitor(population=100, max_identities=3)
        for index in range(10):
            monitor.record(f"u{index}", [("t", index)])
        assert len(monitor) == 4  # 3 individual + the aggregate
        assert OVERFLOW_IDENTITY in monitor.profiles
        assert monitor.overflowed_identities == 7
        assert monitor.profiles[OVERFLOW_IDENTITY].requests == 7

    def test_overflow_aggregate_is_never_flagged(self):
        monitor = CoverageMonitor(
            population=10, coverage_threshold=0.1, min_requests=1,
            max_identities=1,
        )
        monitor.record("first", [("t", 1)])
        for index in range(10):
            monitor.record(f"late{index}", [("t", index)])
        assert monitor.evaluate(OVERFLOW_IDENTITY) is None
        assert all(
            suspect.identity != OVERFLOW_IDENTITY
            for suspect in monitor.suspects()
        )

    def test_key_cap_bounds_retrieved_set(self):
        monitor = CoverageMonitor(
            population=1000, max_keys_per_identity=5
        )
        feed(monitor, "u", range(20))
        profile = monitor.profile("u")
        assert len(profile.retrieved) == 5
        assert profile.tuples == 20

    def test_cap_validation(self):
        with pytest.raises(ConfigError):
            CoverageMonitor(population=10, max_identities=0)
        with pytest.raises(ConfigError):
            CoverageMonitor(population=10, max_keys_per_identity=0)


class TestAccountingForForensics:
    def test_delay_paid_and_tuples_accumulate(self):
        monitor = CoverageMonitor(population=100)
        monitor.record("u", [("t", 1), ("t", 2)], delay=0.5)
        monitor.record("u", [("t", 2)], delay=0.25)
        profile = monitor.profile("u")
        assert profile.tuples == 3
        assert profile.delay_paid == pytest.approx(0.75)

    def test_summaries_are_plain_dicts(self):
        monitor = CoverageMonitor(population=10)
        monitor.record("u", [("t", 1)], delay=0.1)
        (entry,) = monitor.summaries()
        assert entry == {
            "identity": "u",
            "coverage": pytest.approx(0.1),
            "novelty": 1.0,
            "requests": 1,
            "tuples": 1,
            "delay_paid": pytest.approx(0.1),
            "distinct_keys": 1,
        }
