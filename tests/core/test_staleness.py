"""Tests for snapshot staleness evaluation (§3)."""

import pytest

from repro.core.errors import ConfigError
from repro.core.staleness import (
    Snapshot,
    stale_fraction,
    stale_fraction_from_history,
)


def make_snapshot(extraction_times, start=0.0, end=None):
    snapshot = Snapshot(started_at=start)
    for key, when in extraction_times.items():
        snapshot.add(key, f"value-{key}", when)
    snapshot.completed_at = (
        end if end is not None else max(extraction_times.values(), default=0)
    )
    return snapshot


class TestSnapshot:
    def test_len_and_duration(self):
        snapshot = make_snapshot({1: 1.0, 2: 2.0}, start=0.5, end=3.0)
        assert len(snapshot) == 2
        assert snapshot.duration == 2.5

    def test_re_adding_key_overwrites(self):
        snapshot = Snapshot()
        snapshot.add(1, "old", 1.0)
        snapshot.add(1, "new", 2.0)
        assert snapshot.tuples[1].value == "new"


class TestStaleFraction:
    def test_update_after_extraction_is_stale(self):
        snapshot = make_snapshot({1: 1.0, 2: 2.0}, end=10.0)
        report = stale_fraction(snapshot, {1: 5.0})
        assert report.stale == 1
        assert report.fraction == 0.5

    def test_update_before_extraction_not_stale(self):
        snapshot = make_snapshot({1: 5.0}, end=10.0)
        report = stale_fraction(snapshot, {1: 2.0})
        assert report.stale == 0

    def test_update_after_evaluation_time_ignored(self):
        snapshot = make_snapshot({1: 1.0}, end=10.0)
        report = stale_fraction(snapshot, {1: 50.0})
        assert report.stale == 0

    def test_as_of_extends_window(self):
        snapshot = make_snapshot({1: 1.0}, end=10.0)
        report = stale_fraction(snapshot, {1: 50.0}, as_of=100.0)
        assert report.stale == 1
        assert report.evaluated_at == 100.0

    def test_never_updated_not_stale(self):
        snapshot = make_snapshot({1: 1.0, 2: 2.0}, end=10.0)
        assert stale_fraction(snapshot, {}).fraction == 0.0

    def test_empty_snapshot(self):
        report = stale_fraction(make_snapshot({}), {1: 5.0})
        assert report.fraction == 0.0
        assert report.total == 0

    def test_boundary_update_at_extraction_instant_not_stale(self):
        snapshot = make_snapshot({1: 3.0}, end=10.0)
        assert stale_fraction(snapshot, {1: 3.0}).stale == 0

    def test_boundary_update_at_completion_is_stale(self):
        snapshot = make_snapshot({1: 3.0}, end=10.0)
        assert stale_fraction(snapshot, {1: 10.0}).stale == 1

    def test_evaluation_before_start_rejected(self):
        snapshot = make_snapshot({1: 5.0}, start=4.0, end=10.0)
        with pytest.raises(ConfigError):
            stale_fraction(snapshot, {}, as_of=1.0)


class TestStaleFractionFromHistory:
    def test_any_update_in_window_counts(self):
        snapshot = make_snapshot({1: 1.0, 2: 8.0}, end=10.0)
        history = {1: [0.5, 4.0], 2: [7.0]}
        report = stale_fraction_from_history(snapshot, history)
        assert report.stale == 1  # key 1 updated at 4.0 > 1.0; key 2 at 7 < 8

    def test_empty_history(self):
        snapshot = make_snapshot({1: 1.0}, end=5.0)
        assert stale_fraction_from_history(snapshot, {}).stale == 0

    def test_matches_last_update_variant_for_single_updates(self):
        snapshot = make_snapshot({1: 1.0, 2: 2.0, 3: 3.0}, end=10.0)
        last = {1: 5.0, 2: 0.5, 3: 9.0}
        history = {key: [when] for key, when in last.items()}
        a = stale_fraction(snapshot, last)
        b = stale_fraction_from_history(snapshot, history)
        assert a.stale == b.stale == 2
