"""Tests for rate-limiting primitives."""

import pytest

from repro.core.clock import VirtualClock
from repro.core.errors import ConfigError
from repro.core.ratelimit import FixedIntervalGate, TokenBucket


class TestTokenBucket:
    def test_burst_available_immediately(self):
        bucket = TokenBucket(rate=1.0, burst=5.0, clock=VirtualClock())
        for _ in range(5):
            assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_refills_over_time(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_acquire(2.0)
        assert bucket.try_acquire() > 0
        clock.advance(0.5)  # refills 1 token
        assert bucket.try_acquire() == 0.0

    def test_wait_time_is_deficit_over_rate(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.25)

    def test_tokens_capped_at_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(3.0)

    def test_failed_acquire_does_not_consume(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        before = bucket.tokens
        bucket.try_acquire()
        assert bucket.tokens == pytest.approx(before)

    def test_acquire_sleeps_until_available(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        waited = bucket.acquire()
        assert waited == pytest.approx(0.5)
        assert clock.now() == pytest.approx(0.5)

    def test_acquire_cost_beyond_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        waited = bucket.acquire(5.0)
        assert waited > 0
        assert clock.now() >= 3.0  # needed 3 extra tokens at 1/s

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ConfigError):
            TokenBucket(rate=1, burst=0)
        bucket = TokenBucket(rate=1, burst=1, clock=VirtualClock())
        with pytest.raises(ConfigError):
            bucket.try_acquire(0)


class TestFixedIntervalGate:
    def test_first_admission_free(self):
        gate = FixedIntervalGate(10.0, clock=VirtualClock())
        assert gate.try_admit() == 0.0
        assert gate.admitted == 1

    def test_second_admission_waits(self):
        clock = VirtualClock()
        gate = FixedIntervalGate(10.0, clock=clock)
        gate.try_admit()
        wait = gate.try_admit()
        assert wait == pytest.approx(10.0)
        assert gate.admitted == 1

    def test_admission_after_interval(self):
        clock = VirtualClock()
        gate = FixedIntervalGate(10.0, clock=clock)
        gate.try_admit()
        clock.advance(10.0)
        assert gate.try_admit() == 0.0

    def test_time_to_accumulate_fresh_gate(self):
        gate = FixedIntervalGate(5.0, clock=VirtualClock())
        assert gate.time_to_accumulate(0) == 0.0
        assert gate.time_to_accumulate(1) == 0.0
        # k identities: first free, then (k-1) intervals.
        assert gate.time_to_accumulate(4) == pytest.approx(15.0)

    def test_time_to_accumulate_respects_recent_admission(self):
        clock = VirtualClock()
        gate = FixedIntervalGate(5.0, clock=clock)
        gate.try_admit()
        clock.advance(2.0)
        # Next admission in 3s, then 2 more at 5s apart.
        assert gate.time_to_accumulate(3) == pytest.approx(13.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            FixedIntervalGate(0)
        gate = FixedIntervalGate(1.0, clock=VirtualClock())
        with pytest.raises(ConfigError):
            gate.time_to_accumulate(-1)
