"""Unit tests for the client-side resilience primitives.

The breaker is driven with a fake time source so every state
transition — closed → open → half-open → closed, and the half-open
re-trip — is exercised deterministically, without sleeping.
"""

import random

import pytest

from repro.core.resilience import BackoffPolicy, BreakerOpen, CircuitBreaker


class FakeTime:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# BackoffPolicy
# ---------------------------------------------------------------------------


class TestBackoffPolicy:
    def test_ceiling_grows_exponentially(self):
        policy = BackoffPolicy(base=0.1, cap=100.0, multiplier=2.0)
        assert policy.ceiling(0) == pytest.approx(0.1)
        assert policy.ceiling(1) == pytest.approx(0.2)
        assert policy.ceiling(3) == pytest.approx(0.8)

    def test_ceiling_is_capped(self):
        policy = BackoffPolicy(base=1.0, cap=5.0, multiplier=10.0)
        assert policy.ceiling(10) == 5.0

    def test_wait_is_full_jitter_within_ceiling(self):
        policy = BackoffPolicy(
            base=0.5, cap=4.0, multiplier=2.0, rng=random.Random(7)
        )
        for attempt in range(8):
            for _ in range(50):
                wait = policy.wait(attempt)
                assert 0.0 <= wait <= policy.ceiling(attempt)

    def test_wait_varies_between_draws(self):
        policy = BackoffPolicy(base=1.0, cap=8.0, rng=random.Random(3))
        draws = {policy.wait(3) for _ in range(20)}
        assert len(draws) > 1

    def test_invalid_config_rejected(self):
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError):
            BackoffPolicy(base=0.0)
        with pytest.raises(ConfigError):
            BackoffPolicy(cap=-1.0)
        with pytest.raises(ConfigError):
            BackoffPolicy(multiplier=0.5)


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, threshold=3, probe=10.0):
        clock = FakeTime()
        breaker = CircuitBreaker(
            endpoint="test:1",
            failure_threshold=threshold,
            probe_interval=probe,
            time_source=clock,
        )
        return breaker, clock

    def test_starts_closed_and_permits_calls(self):
        breaker, _ = self.make()
        assert breaker.state == "closed"
        breaker.before_call()  # does not raise

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.transitions.get("closed->open") == 1

    def test_success_resets_the_failure_count(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_open_breaker_fails_fast_with_retry_after(self):
        breaker, clock = self.make(threshold=1, probe=10.0)
        breaker.record_failure()
        clock.advance(4.0)
        with pytest.raises(BreakerOpen) as excinfo:
            breaker.before_call()
        assert excinfo.value.reason == "circuit_open"
        assert excinfo.value.retry_after == pytest.approx(6.0)

    def test_half_open_after_probe_interval(self):
        breaker, clock = self.make(threshold=1, probe=10.0)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(10.1)
        assert breaker.state == "half_open"

    def test_half_open_permits_exactly_one_probe(self):
        breaker, clock = self.make(threshold=1, probe=10.0)
        breaker.record_failure()
        clock.advance(10.1)
        breaker.before_call()  # the probe is admitted
        with pytest.raises(BreakerOpen):
            breaker.before_call()  # concurrent second call is not

    def test_successful_probe_closes_the_breaker(self):
        breaker, clock = self.make(threshold=1, probe=10.0)
        breaker.record_failure()
        clock.advance(10.1)
        breaker.before_call()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.transitions.get("half_open->closed") == 1
        breaker.before_call()  # fully recovered

    def test_failed_probe_reopens_and_restarts_the_timer(self):
        breaker, clock = self.make(threshold=1, probe=10.0)
        breaker.record_failure()
        clock.advance(10.1)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.transitions.get("half_open->open") == 1
        clock.advance(5.0)
        with pytest.raises(BreakerOpen):
            breaker.before_call()
        clock.advance(5.1)
        assert breaker.state == "half_open"

    def test_snapshot_reports_state(self):
        breaker, _ = self.make(threshold=1)
        breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "open"
        assert snapshot["endpoint"] == "test:1"
        assert snapshot["transitions"]["closed->open"] == 1

    def test_invalid_config_rejected(self):
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigError):
            CircuitBreaker(probe_interval=0)
