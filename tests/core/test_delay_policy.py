"""Tests for delay policies."""

import math

import pytest

from repro.core.clock import VirtualClock
from repro.core.delay_policy import (
    CompositeDelayPolicy,
    FixedDelayPolicy,
    NoDelayPolicy,
    PopularityDelayPolicy,
    UpdateRateDelayPolicy,
)
from repro.core.errors import ConfigError
from repro.core.popularity import PopularityTracker
from repro.core.update_tracker import UpdateRateTracker


def warm_tracker(counts):
    tracker = PopularityTracker(rank_refresh=1)
    for key, count in counts.items():
        for _ in range(count):
            tracker.record(key)
    return tracker


class TestBaselinePolicies:
    def test_no_delay(self):
        policy = NoDelayPolicy()
        assert policy.delay_for("anything") == 0.0
        assert "no delay" in policy.describe()

    def test_fixed_delay(self):
        policy = FixedDelayPolicy(2.5)
        assert policy.delay_for("x") == 2.5

    def test_fixed_negative_rejected(self):
        with pytest.raises(ConfigError):
            FixedDelayPolicy(-1)


class TestPopularityDelayPolicy:
    def test_inverse_popularity(self):
        tracker = warm_tracker({"hot": 90, "cold": 10})
        policy = PopularityDelayPolicy(tracker, population=100, cap=1e9)
        # d = 1/(N p): hot p=0.9 => 1/90; cold p=0.1 => 1/10
        assert policy.delay_for("hot") == pytest.approx(1.0 / 90.0)
        assert policy.delay_for("cold") == pytest.approx(1.0 / 10.0)

    def test_cold_start_gets_cap(self):
        tracker = PopularityTracker()
        policy = PopularityDelayPolicy(tracker, population=10, cap=7.0)
        assert policy.delay_for("never-seen") == 7.0

    def test_cold_start_without_cap_uses_fallback(self):
        tracker = PopularityTracker()
        policy = PopularityDelayPolicy(
            tracker, population=10, cap=None, uncapped_cold=123.0
        )
        assert policy.delay_for("never-seen") == 123.0

    def test_cap_clamps_unpopular(self):
        tracker = warm_tracker({"hot": 999, "cold": 1})
        # cold popularity 1e-3 => uncapped delay 1/(10 * 1e-3) = 100s
        policy = PopularityDelayPolicy(tracker, population=10, cap=5.0)
        assert policy.delay_for("cold") == 5.0

    def test_matches_equation_one_for_zipf_counts(self):
        """With Zipf counts, the policy reproduces eq (1) exactly."""
        n, alpha, fmax_count = 50, 1.0, 10_000
        tracker = PopularityTracker(rank_refresh=1)
        for rank in range(1, n + 1):
            count = max(1, int(fmax_count * rank ** -alpha))
            tracker.record(rank, weight=count)
        total = tracker.total_requests
        for rank in (1, 5, 20):
            policy = PopularityDelayPolicy(
                tracker, population=n, cap=None
            )
            p = tracker.popularity(rank)
            assert policy.delay_for(rank) == pytest.approx(1.0 / (n * p))

    def test_beta_multiplies_by_rank_power(self):
        tracker = warm_tracker({"a": 50, "b": 30, "c": 20})
        base = PopularityDelayPolicy(tracker, population=3, cap=None)
        boosted = PopularityDelayPolicy(
            tracker, population=3, cap=None, beta=1.0
        )
        # 'b' has rank 2: delay doubles with beta=1.
        assert boosted.delay_for("b") == pytest.approx(
            2 * base.delay_for("b")
        )

    def test_unit_scales_linearly(self):
        tracker = warm_tracker({"a": 10})
        one = PopularityDelayPolicy(tracker, population=5, cap=None, unit=1.0)
        two = PopularityDelayPolicy(tracker, population=5, cap=None, unit=2.0)
        assert two.delay_for("a") == pytest.approx(2 * one.delay_for("a"))

    def test_callable_population(self):
        tracker = warm_tracker({"a": 10})
        policy = PopularityDelayPolicy(
            tracker, population=lambda: 10, cap=None
        )
        assert policy.delay_for("a") == pytest.approx(0.1)

    def test_invalid_configs(self):
        tracker = PopularityTracker()
        with pytest.raises(ConfigError):
            PopularityDelayPolicy(tracker, 10, cap=0)
        with pytest.raises(ConfigError):
            PopularityDelayPolicy(tracker, 10, beta=-1)
        with pytest.raises(ConfigError):
            PopularityDelayPolicy(tracker, 10, unit=0)
        with pytest.raises(ConfigError):
            PopularityDelayPolicy(tracker, 10, mode="nope")

    def test_describe_mentions_parameters(self):
        tracker = PopularityTracker()
        text = PopularityDelayPolicy(tracker, 10, cap=3.0, beta=0.5).describe()
        assert "beta=0.5" in text and "cap=3s" in text


class TestUpdateRateDelayPolicy:
    def make(self, rates, n=100, c=1.0, cap=10.0):
        clock = VirtualClock(1000.0)
        tracker = UpdateRateTracker(clock=clock)
        tracker.prime(rates, window=1000.0)
        return UpdateRateDelayPolicy(tracker, population=n, c=c, cap=cap)

    def test_inverse_rate(self):
        policy = self.make({"fast": 1.0, "slow": 0.001}, n=100, c=1.0,
                           cap=1e9)
        assert policy.delay_for("fast") == pytest.approx(0.01)
        assert policy.delay_for("slow") == pytest.approx(10.0)

    def test_never_updated_gets_cap(self):
        policy = self.make({}, cap=4.0)
        assert policy.delay_for("unknown") == 4.0

    def test_never_updated_without_cap_infinite(self):
        policy = self.make({})
        policy.cap = None
        assert policy.delay_for("unknown") == math.inf

    def test_c_scales(self):
        one = self.make({"a": 1.0}, c=1.0, cap=None)
        two = self.make({"a": 1.0}, c=2.0, cap=None)
        assert two.delay_for("a") == pytest.approx(2 * one.delay_for("a"))

    def test_matches_equation_nine_for_zipf_rates(self):
        n, alpha, rmax = 20, 1.0, 2.0
        rates = {rank: rmax * rank ** -alpha for rank in range(1, n + 1)}
        policy = self.make(rates, n=n, c=1.5, cap=None)
        for rank in (1, 7, 20):
            expected = (1.5 / n) * (rank ** alpha) / rmax
            assert policy.delay_for(rank) == pytest.approx(expected)

    def test_invalid_configs(self):
        tracker = UpdateRateTracker(clock=VirtualClock())
        with pytest.raises(ConfigError):
            UpdateRateDelayPolicy(tracker, 10, c=0)
        with pytest.raises(ConfigError):
            UpdateRateDelayPolicy(tracker, 10, cap=-1)


class TestCompositeDelayPolicy:
    def test_max_combination(self):
        policy = CompositeDelayPolicy(
            [FixedDelayPolicy(1.0), FixedDelayPolicy(3.0)], combine="max"
        )
        assert policy.delay_for("x") == 3.0

    def test_sum_combination(self):
        policy = CompositeDelayPolicy(
            [FixedDelayPolicy(1.0), FixedDelayPolicy(3.0)], combine="sum"
        )
        assert policy.delay_for("x") == 4.0

    def test_min_combination(self):
        policy = CompositeDelayPolicy(
            [FixedDelayPolicy(1.0), FixedDelayPolicy(3.0)], combine="min"
        )
        assert policy.delay_for("x") == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            CompositeDelayPolicy([])

    def test_unknown_combine_rejected(self):
        with pytest.raises(ConfigError):
            CompositeDelayPolicy([NoDelayPolicy()], combine="avg")

    def test_describe_nests(self):
        policy = CompositeDelayPolicy(
            [NoDelayPolicy(), FixedDelayPolicy(1.0)]
        )
        assert "max(" in policy.describe()
