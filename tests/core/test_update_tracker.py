"""Tests for update-rate tracking (§3)."""

import pytest

from repro.core.clock import VirtualClock
from repro.core.errors import ConfigError
from repro.core.update_tracker import UpdateRateTracker


class TestStationaryEstimation:
    def test_rate_is_count_over_elapsed(self):
        clock = VirtualClock()
        tracker = UpdateRateTracker(clock=clock)
        for _ in range(10):
            tracker.record_update("a")
            clock.advance(1.0)
        assert tracker.rate("a") == pytest.approx(1.0)

    def test_unseen_key_rate_zero(self):
        tracker = UpdateRateTracker(clock=VirtualClock())
        assert tracker.rate("missing") == 0.0

    def test_zero_elapsed_reports_count(self):
        tracker = UpdateRateTracker(clock=VirtualClock())
        tracker.record_update("a")
        assert tracker.rate("a") == 1.0

    def test_relative_rates(self):
        clock = VirtualClock()
        tracker = UpdateRateTracker(clock=clock)
        for _ in range(100):
            tracker.record_update("fast")
            clock.advance(0.1)
        for _ in range(10):
            tracker.record_update("slow")
            clock.advance(0.1)
        assert tracker.rate("fast") == pytest.approx(
            10 * tracker.rate("slow"), rel=0.01
        )

    def test_total_updates(self):
        tracker = UpdateRateTracker(clock=VirtualClock())
        tracker.record_update("a")
        tracker.record_update("b")
        assert tracker.total_updates == 2


class TestDecayedEstimation:
    def test_steady_state_rate_recovered(self):
        clock = VirtualClock()
        tracker = UpdateRateTracker(clock=clock, time_constant=100.0)
        # 1 update/sec for 1000 seconds: steady state count = 100.
        for _ in range(1000):
            tracker.record_update("a")
            clock.advance(1.0)
        assert tracker.rate("a") == pytest.approx(1.0, rel=0.05)

    def test_rate_decays_after_silence(self):
        clock = VirtualClock()
        tracker = UpdateRateTracker(clock=clock, time_constant=10.0)
        for _ in range(100):
            tracker.record_update("a")
            clock.advance(0.1)
        busy = tracker.rate("a")
        clock.advance(100.0)  # 10 time constants of silence
        assert tracker.rate("a") < busy / 100

    def test_invalid_time_constant(self):
        with pytest.raises(ConfigError):
            UpdateRateTracker(time_constant=0)


class TestSnapshotAndMax:
    def test_max_rate(self):
        clock = VirtualClock()
        tracker = UpdateRateTracker(clock=clock)
        tracker.record_update("a")
        tracker.record_update("a")
        tracker.record_update("b")
        clock.advance(2.0)
        assert tracker.max_rate() == pytest.approx(1.0)

    def test_max_rate_empty(self):
        assert UpdateRateTracker(clock=VirtualClock()).max_rate() == 0.0

    def test_snapshot_sorted_fastest_first(self):
        clock = VirtualClock()
        tracker = UpdateRateTracker(clock=clock)
        for _ in range(5):
            tracker.record_update("fast")
        tracker.record_update("slow")
        clock.advance(1.0)
        snapshot = tracker.snapshot()
        assert snapshot[0][0] == "fast"

    def test_tracked_keys(self):
        tracker = UpdateRateTracker(clock=VirtualClock())
        tracker.record_update("a")
        tracker.record_update("b")
        assert tracker.tracked_keys() == 2

    def test_reset(self):
        tracker = UpdateRateTracker(clock=VirtualClock())
        tracker.record_update("a")
        tracker.reset()
        assert tracker.rate("a") == 0.0
        assert tracker.total_updates == 0


class TestPrime:
    def test_prime_matches_given_rates_stationary(self):
        clock = VirtualClock(1000.0)
        tracker = UpdateRateTracker(clock=clock)
        tracker.prime({"a": 0.5, "b": 0.01}, window=1e6)
        assert tracker.rate("a") == pytest.approx(0.5)
        assert tracker.rate("b") == pytest.approx(0.01)

    def test_prime_matches_given_rates_decayed(self):
        clock = VirtualClock()
        tracker = UpdateRateTracker(clock=clock, time_constant=50.0)
        tracker.prime({"a": 2.0})
        assert tracker.rate("a") == pytest.approx(2.0)

    def test_prime_zero_rate_stays_unseen(self):
        tracker = UpdateRateTracker(clock=VirtualClock())
        tracker.prime({"a": 0.0})
        assert tracker.rate("a") == 0.0
        assert tracker.tracked_keys() == 0

    def test_prime_agrees_with_replayed_learning(self):
        """Primed tracker ≈ tracker that actually saw the updates."""
        clock_a = VirtualClock()
        learned = UpdateRateTracker(clock=clock_a)
        rate = 0.25
        for _ in range(500):
            learned.record_update("k")
            clock_a.advance(1.0 / rate)

        clock_b = VirtualClock(clock_a.now())
        primed = UpdateRateTracker(clock=clock_b)
        primed.prime({"k": rate}, window=clock_a.now())
        assert primed.rate("k") == pytest.approx(learned.rate("k"), rel=0.02)

    def test_prime_invalid_inputs(self):
        tracker = UpdateRateTracker(clock=VirtualClock())
        with pytest.raises(ConfigError):
            tracker.prime({"a": -1.0})
        with pytest.raises(ConfigError):
            tracker.prime({"a": 1.0}, window=0)
