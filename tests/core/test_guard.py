"""Tests for the DelayGuard front door."""

import pytest

from repro.core import (
    AccessDenied,
    AccountManager,
    AccountPolicy,
    ConfigError,
    DelayGuard,
    FixedDelayPolicy,
    GuardConfig,
    VirtualClock,
)
from repro.engine import Database


def make_db(rows=100):
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    db.insert_rows("t", [(i, f"v{i}") for i in range(1, rows + 1)])
    return db


def make_guard(rows=100, config=None, **kwargs):
    clock = VirtualClock()
    guard = DelayGuard(make_db(rows), config=config, clock=clock, **kwargs)
    return guard, clock


class TestDelayCharging:
    def test_cold_start_charges_cap(self):
        guard, _ = make_guard(config=GuardConfig(cap=10.0))
        result = guard.execute("SELECT * FROM t WHERE id = 1")
        assert result.delay == 10.0
        assert result.per_tuple_delays == [10.0]

    def test_popular_tuple_gets_cheap(self):
        guard, _ = make_guard(config=GuardConfig(cap=10.0))
        for _ in range(200):
            guard.execute("SELECT * FROM t WHERE id = 1")
        assert guard.execute("SELECT * FROM t WHERE id = 1").delay < 0.1

    def test_multi_tuple_query_charges_sum(self):
        guard, _ = make_guard(config=GuardConfig(cap=2.0))
        result = guard.execute("SELECT * FROM t WHERE id <= 5")
        assert result.delay == pytest.approx(10.0)  # 5 cold tuples
        assert len(result.per_tuple_delays) == 5

    def test_max_charging_mode(self):
        guard, _ = make_guard(
            config=GuardConfig(cap=2.0, charge_returned_tuples=False)
        )
        result = guard.execute("SELECT * FROM t WHERE id <= 5")
        assert result.delay == pytest.approx(2.0)

    def test_empty_result_no_delay(self):
        guard, _ = make_guard(config=GuardConfig(cap=10.0))
        result = guard.execute("SELECT * FROM t WHERE id = 99999")
        assert result.delay == 0.0

    def test_sleep_happens_on_clock(self):
        guard, clock = make_guard(config=GuardConfig(cap=3.0))
        guard.execute("SELECT * FROM t WHERE id = 1")
        assert clock.total_slept == pytest.approx(3.0)

    def test_delay_computed_before_recording(self):
        """First access must not see its own count."""
        guard, _ = make_guard(config=GuardConfig(cap=10.0))
        first = guard.execute("SELECT * FROM t WHERE id = 7")
        assert first.delay == 10.0  # not 1/(N * tiny popularity)

    def test_record_false_leaves_counts_alone(self):
        guard, _ = make_guard(config=GuardConfig(cap=10.0))
        guard.execute("SELECT * FROM t WHERE id = 1", record=False)
        assert guard.popularity.total_requests == 0

    def test_dml_charges_no_delay(self):
        guard, _ = make_guard(config=GuardConfig(cap=10.0))
        result = guard.execute("UPDATE t SET v = 'x' WHERE id = 1")
        assert result.delay == 0.0

    def test_custom_policy_overrides_config(self):
        guard, _ = make_guard(policy=FixedDelayPolicy(1.5))
        result = guard.execute("SELECT * FROM t WHERE id = 1")
        assert result.delay == 1.5


class TestUpdateTracking:
    def test_updates_recorded(self):
        guard, clock = make_guard()
        clock.advance(5.0)
        guard.execute("UPDATE t SET v = 'new' WHERE id = 3")
        times = guard.last_update_times_for("t")
        assert times[3] == pytest.approx(5.0)
        assert guard.update_rates.total_updates == 1

    def test_insert_and_delete_tracked(self):
        guard, _ = make_guard(rows=5)
        guard.execute("INSERT INTO t VALUES (100, 'new')")
        assert guard.update_rates.total_updates == 1
        guard.execute("DELETE FROM t WHERE id = 100")
        assert guard.update_rates.total_updates == 2

    def test_record_updates_disabled(self):
        guard, _ = make_guard(config=GuardConfig(record_updates=False))
        guard.execute("UPDATE t SET v = 'x' WHERE id = 1")
        assert guard.update_rates.total_updates == 0


class TestAccountsIntegration:
    def test_identity_required_when_accounts_attached(self):
        accounts = AccountManager(clock=VirtualClock())
        guard = DelayGuard(
            make_db(), clock=VirtualClock(), accounts=accounts
        )
        with pytest.raises(ConfigError, match="identity"):
            guard.execute("SELECT * FROM t WHERE id = 1")

    def test_quota_denial_counted(self):
        clock = VirtualClock()
        accounts = AccountManager(
            policy=AccountPolicy(daily_query_quota=1), clock=clock
        )
        guard = DelayGuard(make_db(), clock=clock, accounts=accounts)
        accounts.register("u")
        guard.execute("SELECT * FROM t WHERE id = 1", identity="u")
        with pytest.raises(AccessDenied):
            guard.execute("SELECT * FROM t WHERE id = 2", identity="u")
        assert guard.stats.denied == 1

    def test_retrievals_recorded_per_identity(self):
        clock = VirtualClock()
        accounts = AccountManager(clock=clock)
        guard = DelayGuard(make_db(), clock=clock, accounts=accounts)
        accounts.register("u")
        guard.execute("SELECT * FROM t WHERE id <= 3", identity="u")
        assert accounts.account("u").tuples_retrieved == 3


class TestStats:
    def test_median_and_quantiles(self):
        guard, _ = make_guard(config=GuardConfig(cap=10.0))
        guard.execute("SELECT * FROM t WHERE id = 1")  # 10
        for _ in range(3):
            guard.execute("SELECT * FROM t WHERE id = 1")  # cheap
        assert guard.stats.selects == 4
        assert guard.stats.median_delay() < 10.0
        assert guard.stats.quantile_delay(1.0) == 10.0
        with pytest.raises(ConfigError):
            guard.stats.quantile_delay(1.5)

    def test_quantile_nearest_rank_boundaries(self):
        guard, _ = make_guard()
        for delay in [4.0, 1.0, 3.0, 2.0]:
            guard.stats.note_select(delay, 1)
        # Nearest-rank over [1, 2, 3, 4]: q=0 is the minimum, q=0.5 the
        # 2nd element (not the 3rd, the old int-truncation bias), q=1
        # the maximum. The histogram answers exactly here because each
        # delay occupies its own bucket.
        assert guard.stats.quantile_delay(0.0) == 1.0
        assert guard.stats.quantile_delay(0.5) == 2.0
        assert guard.stats.quantile_delay(1.0) == 4.0

    def test_quantile_nearest_rank_odd_length(self):
        guard, _ = make_guard()
        for delay in [5.0, 1.0, 3.0]:
            guard.stats.note_select(delay, 1)
        assert guard.stats.quantile_delay(0.0) == 1.0
        assert guard.stats.quantile_delay(0.5) == 3.0
        assert guard.stats.quantile_delay(1.0) == 5.0

    def test_empty_stats(self):
        guard, _ = make_guard()
        assert guard.stats.median_delay() == 0.0
        assert guard.stats.quantile_delay(0.5) == 0.0
        assert guard.stats.overhead_fraction() == 0.0

    def test_timing_buckets_accumulate(self):
        guard, _ = make_guard()
        guard.execute("SELECT * FROM t WHERE id = 1")
        assert guard.stats.engine_seconds > 0
        assert guard.stats.accounting_seconds > 0


class TestExtractionCost:
    def test_cold_table_costs_n_times_cap(self):
        guard, _ = make_guard(rows=50, config=GuardConfig(cap=2.0))
        assert guard.extraction_cost("t") == pytest.approx(100.0)
        assert guard.max_extraction_cost("t") == pytest.approx(100.0)

    def test_warm_table_costs_less(self):
        guard, _ = make_guard(rows=50, config=GuardConfig(cap=2.0))
        for _ in range(100):
            guard.execute("SELECT * FROM t WHERE id = 1")
        assert guard.extraction_cost("t") < 100.0

    def test_extraction_cost_does_not_mutate(self):
        guard, _ = make_guard(rows=10)
        before = guard.popularity.total_requests
        guard.extraction_cost("t")
        assert guard.popularity.total_requests == before

    def test_max_cost_requires_cap(self):
        guard, _ = make_guard(config=GuardConfig(cap=None))
        with pytest.raises(ConfigError):
            guard.max_extraction_cost("t")

    def test_population_counts_all_tables(self):
        guard, _ = make_guard(rows=10)
        guard.database.execute("CREATE TABLE u (id INTEGER PRIMARY KEY)")
        guard.database.insert_rows("u", [(i,) for i in range(5)])
        assert guard.population() == 15


class TestConfigValidation:
    def test_bad_policy_name(self):
        with pytest.raises(ConfigError):
            GuardConfig(policy="bogus").validate()

    def test_bad_store_name(self):
        with pytest.raises(ConfigError):
            GuardConfig(count_store="bogus").validate()

    def test_counting_sample_with_decay_rejected(self):
        with pytest.raises(ConfigError):
            GuardConfig(
                count_store="counting_sample", decay_rate=1.5
            ).validate()

    def test_policy_kinds_build(self):
        for policy in ("popularity", "update", "both", "fixed", "none"):
            guard, _ = make_guard(rows=3, config=GuardConfig(policy=policy))
            guard.execute("SELECT * FROM t WHERE id = 1")

    def test_store_kinds_build(self):
        for store in ("memory", "write_behind", "space_saving",
                      "counting_sample"):
            guard, _ = make_guard(
                rows=3, config=GuardConfig(count_store=store)
            )
            guard.execute("SELECT * FROM t WHERE id = 1")

    def test_repr_mentions_policy(self):
        guard, _ = make_guard()
        assert "popularity" in repr(guard)
