"""Tests for account management and §2.4 defenses."""

import pytest

from repro.core.accounts import AccountManager, AccountPolicy
from repro.core.clock import VirtualClock
from repro.core.errors import AccessDenied, ConfigError, UnknownAccount


def manager(clock=None, **policy_kwargs):
    return AccountManager(
        policy=AccountPolicy(**policy_kwargs),
        clock=clock or VirtualClock(),
    )


class TestRegistration:
    def test_register_and_lookup(self):
        m = manager()
        account = m.register("alice", subnet="10.0.0.0/24")
        assert m.account("alice") is account
        assert account.subnet == "10.0.0.0/24"

    def test_duplicate_identity_rejected(self):
        m = manager()
        m.register("alice")
        with pytest.raises(ConfigError):
            m.register("alice")

    def test_unknown_account_raises(self):
        with pytest.raises(UnknownAccount):
            manager().account("ghost")

    def test_registration_throttle(self):
        clock = VirtualClock()
        m = manager(clock=clock, registration_interval=60.0)
        m.register("a")
        with pytest.raises(AccessDenied) as excinfo:
            m.register("b")
        assert excinfo.value.reason == "registration_rate"
        assert excinfo.value.retry_after == pytest.approx(60.0)
        clock.advance(60.0)
        m.register("b")  # now admitted

    def test_time_to_register_lower_bound(self):
        m = manager(registration_interval=30.0)
        m.register("a")
        # 10 more identities need >= 10 * 30s (first waits full interval).
        assert m.time_to_register(10) == pytest.approx(300.0)

    def test_time_to_register_without_gate_is_zero(self):
        assert manager().time_to_register(100) == 0.0

    def test_fees_collected(self):
        m = manager(registration_fee=5.0)
        m.register("a")
        m.register("b")
        assert m.fees_collected == 10.0
        assert m.cost_to_register(7) == 35.0
        assert m.account("a").fee_paid == 5.0


class TestQueryAuthorization:
    def test_no_limits_always_allowed(self):
        m = manager()
        m.register("a")
        for _ in range(1000):
            m.authorize_query("a")
        assert m.account("a").queries_issued == 1000

    def test_daily_quota(self):
        clock = VirtualClock()
        m = manager(clock=clock, daily_query_quota=3)
        m.register("a")
        for _ in range(3):
            m.authorize_query("a")
        with pytest.raises(AccessDenied) as excinfo:
            m.authorize_query("a")
        assert excinfo.value.reason == "query_quota"
        assert excinfo.value.retry_after > 0

    def test_quota_resets_after_a_day(self):
        clock = VirtualClock()
        m = manager(clock=clock, daily_query_quota=1)
        m.register("a")
        m.authorize_query("a")
        clock.advance(86401)
        m.authorize_query("a")  # new day, new quota

    def test_quota_tracked_per_identity(self):
        m = manager(daily_query_quota=1)
        m.register("a")
        m.register("b")
        m.authorize_query("a")
        m.authorize_query("b")  # independent quota

    def test_user_rate_limit(self):
        clock = VirtualClock()
        m = manager(
            clock=clock, user_query_rate=1.0, user_query_burst=2.0
        )
        m.register("a")
        m.authorize_query("a")
        m.authorize_query("a")
        with pytest.raises(AccessDenied) as excinfo:
            m.authorize_query("a")
        assert excinfo.value.reason == "user_rate"
        clock.advance(1.0)
        m.authorize_query("a")

    def test_subnet_rate_shared_by_sybils(self):
        """The Sybil defense: many identities, one subnet budget."""
        clock = VirtualClock()
        m = manager(
            clock=clock, subnet_query_rate=1.0, subnet_query_burst=3.0
        )
        for name in ("s1", "s2", "s3", "s4"):
            m.register(name, subnet="evil/24")
        m.authorize_query("s1")
        m.authorize_query("s2")
        m.authorize_query("s3")
        with pytest.raises(AccessDenied) as excinfo:
            m.authorize_query("s4")
        assert excinfo.value.reason == "subnet_rate"

    def test_different_subnets_independent(self):
        m = manager(subnet_query_rate=1.0, subnet_query_burst=1.0)
        m.register("a", subnet="net-a")
        m.register("b", subnet="net-b")
        m.authorize_query("a")
        m.authorize_query("b")  # separate bucket

    def test_record_retrieval(self):
        m = manager()
        m.register("a")
        m.record_retrieval("a", 17)
        assert m.account("a").tuples_retrieved == 17


class TestSubnetReporting:
    def test_subnet_accounts(self):
        m = manager()
        m.register("a", subnet="x")
        m.register("b", subnet="x")
        m.register("c", subnet="y")
        assert m.subnet_accounts("x") == 2
        assert m.subnet_accounts("z") == 0
