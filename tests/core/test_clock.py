"""Tests for clocks."""

import time

import pytest

from repro.core.clock import RealClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock(100.0).now() == 100.0

    def test_sleep_advances(self):
        clock = VirtualClock()
        clock.sleep(5.0)
        clock.sleep(2.5)
        assert clock.now() == 7.5

    def test_sleeps_recorded(self):
        clock = VirtualClock()
        clock.sleep(1.0)
        clock.sleep(2.0)
        assert clock.sleeps == [1.0, 2.0]
        assert clock.total_slept == 3.0

    def test_advance_does_not_record_sleep(self):
        clock = VirtualClock()
        clock.advance(10.0)
        assert clock.now() == 10.0
        assert clock.sleeps == []

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().sleep(-1)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_zero_sleep_allowed(self):
        clock = VirtualClock()
        clock.sleep(0.0)
        assert clock.now() == 0.0


class TestRealClock:
    def test_now_is_monotonic(self):
        clock = RealClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_sleep_actually_blocks(self):
        clock = RealClock()
        started = time.monotonic()
        clock.sleep(0.02)
        assert time.monotonic() - started >= 0.015

    def test_zero_sleep_fast(self):
        started = time.monotonic()
        RealClock().sleep(0)
        assert time.monotonic() - started < 0.01

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            RealClock().sleep(-0.1)
