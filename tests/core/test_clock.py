"""Tests for clocks."""

import threading
import time

import pytest

from repro.core.clock import RealClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock(100.0).now() == 100.0

    def test_sleep_advances(self):
        clock = VirtualClock()
        clock.sleep(5.0)
        clock.sleep(2.5)
        assert clock.now() == 7.5

    def test_sleeps_recorded(self):
        clock = VirtualClock()
        clock.sleep(1.0)
        clock.sleep(2.0)
        assert clock.sleeps == [1.0, 2.0]
        assert clock.total_slept == 3.0

    def test_advance_does_not_record_sleep(self):
        clock = VirtualClock()
        clock.advance(10.0)
        assert clock.now() == 10.0
        assert clock.sleeps == []

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().sleep(-1)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_zero_sleep_allowed(self):
        clock = VirtualClock()
        clock.sleep(0.0)
        assert clock.now() == 0.0

    def test_parallel_sleeps_are_charged_not_overlapped(self):
        """sleep(d) models *charged* time: k threads sleeping d seconds
        move the clock k*d, matching GuardStats.total_delay."""
        clock = VirtualClock()
        threads = [
            threading.Thread(target=clock.sleep, args=(2.0,))
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert clock.now() == 8.0
        assert clock.total_slept == 8.0

    def test_sleep_until_future_deadline_advances(self):
        clock = VirtualClock(start=10.0)
        waited = clock.sleep_until(12.5)
        assert waited == 2.5
        assert clock.now() == 12.5
        assert clock.sleeps == [2.5]

    def test_sleep_until_past_deadline_waits_zero(self):
        clock = VirtualClock()
        clock.advance(5.0)
        assert clock.sleep_until(3.0) == 0.0
        assert clock.now() == 5.0
        assert clock.sleeps == []

    def test_sleep_until_coalesces_overlapping_waiters(self):
        """Two threads racing toward one deadline charge the gap once
        between them (makespan semantics), unlike two sleep() calls."""
        clock = VirtualClock()
        waited = []

        def waiter():
            waited.append(clock.sleep_until(4.0))

        threads = [threading.Thread(target=waiter) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert clock.now() == 4.0
        assert sorted(waited) == [0.0, 4.0]
        assert clock.total_slept == 4.0

    def test_elapsed_is_makespan_style(self):
        clock = VirtualClock(start=100.0)
        assert clock.elapsed == 0.0
        clock.sleep(3.0)
        clock.advance(2.0)
        assert clock.elapsed == 5.0
        assert clock.now() == 105.0


class TestRealClock:
    def test_now_is_monotonic(self):
        clock = RealClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_sleep_actually_blocks(self):
        clock = RealClock()
        started = time.monotonic()
        clock.sleep(0.02)
        assert time.monotonic() - started >= 0.015

    def test_zero_sleep_fast(self):
        started = time.monotonic()
        RealClock().sleep(0)
        assert time.monotonic() - started < 0.01

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            RealClock().sleep(-0.1)

    def test_sleep_until_past_deadline_returns_immediately(self):
        clock = RealClock()
        started = time.monotonic()
        assert clock.sleep_until(clock.now() - 1.0) == 0.0
        assert time.monotonic() - started < 0.01

    def test_sleep_until_future_deadline_blocks(self):
        clock = RealClock()
        started = time.monotonic()
        waited = clock.sleep_until(clock.now() + 0.02)
        assert waited > 0.0
        assert time.monotonic() - started >= 0.015
