"""The delay-aware result cache: priced hits, epoch invalidation.

The cache sits between authorize and execute in the guard pipeline. A
hit skips ONLY the engine's execute stage — accounting, pricing,
popularity recording, and the mandated sleep all still run against the
cached result's touched set, so the delay defense is unchanged: an
adversary cannot launder probes through the cache to dodge the price.
The unit tests pin the `ResultCache` container semantics (LRU, TTL,
epoch sweeps, stale-put refusal); the guard tests pin hit/miss
equivalence; the laundering test compares a cache-on and a cache-off
service end to end.
"""

import pytest

from repro.core import (
    AccountManager,
    AccountPolicy,
    ConfigError,
    DelayGuard,
    GuardConfig,
    ResultCache,
    VirtualClock,
)
from repro.core.result_cache import CachedResult
from repro.engine import Database
from repro.engine.executor import ResultSet


def make_db(rows=6):
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    for i in range(rows):
        db.execute(f"INSERT INTO t (id, v) VALUES ({i}, 'x{i}')")
    return db


def select_result(n=2):
    return ResultSet(
        columns=["id", "v"],
        rows=[(i, f"x{i}") for i in range(n)],
        rowcount=n,
        statement_kind="select",
        table="t",
        rowids=list(range(n)),
        touched=[("t", i) for i in range(n)],
    )


# -- container semantics ------------------------------------------------------


class TestResultCacheUnit:
    def test_roundtrip(self):
        cache = ResultCache(maxsize=4)
        frozen = CachedResult.freeze(select_result())
        assert cache.put("SELECT * FROM t", 1, frozen)
        hit = cache.get("SELECT * FROM t", 1)
        assert hit is frozen
        assert cache.info()["hits"] == 1

    def test_miss_on_unknown_sql(self):
        cache = ResultCache(maxsize=4)
        assert cache.get("SELECT * FROM t", 1) is None
        assert cache.info()["misses"] == 1

    def test_miss_on_different_epoch(self):
        cache = ResultCache(maxsize=4)
        cache.put("q", 1, CachedResult.freeze(select_result()))
        assert cache.get("q", 2) is None

    def test_lru_eviction(self):
        cache = ResultCache(maxsize=2)
        frozen = CachedResult.freeze(select_result())
        cache.put("a", 1, frozen)
        cache.put("b", 1, frozen)
        cache.get("a", 1)  # refresh a
        cache.put("c", 1, frozen)  # evicts b, the LRU entry
        assert cache.get("a", 1) is not None
        assert cache.get("b", 1) is None
        assert cache.info()["evictions"] == 1

    def test_ttl_expiry(self):
        clock = VirtualClock()
        cache = ResultCache(maxsize=4, ttl=10.0, clock=clock.now)
        cache.put("q", 1, CachedResult.freeze(select_result()))
        clock.advance(9.0)
        assert cache.get("q", 1) is not None
        clock.advance(2.0)
        assert cache.get("q", 1) is None
        assert cache.info()["expirations"] == 1

    def test_newer_epoch_sweeps_older_entries(self):
        cache = ResultCache(maxsize=8)
        frozen = CachedResult.freeze(select_result())
        cache.put("a", 1, frozen)
        cache.put("b", 1, frozen)
        cache.put("c", 2, frozen)  # observing epoch 2 sweeps epoch-1 keys
        assert len(cache) == 1
        assert cache.info()["invalidations"] == 2
        assert cache.get("c", 2) is not None

    def test_stale_put_refused(self):
        cache = ResultCache(maxsize=8)
        frozen = CachedResult.freeze(select_result())
        cache.put("a", 5, frozen)
        # A racer that executed against epoch 3 must not insert a
        # result that epoch-3 lookups would then treat as current.
        assert not cache.put("b", 3, frozen)
        assert cache.get("b", 3) is None

    def test_clear(self):
        cache = ResultCache(maxsize=4)
        cache.put("a", 1, CachedResult.freeze(select_result()))
        cache.clear()
        assert len(cache) == 0

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            ResultCache(maxsize=0)
        with pytest.raises(ConfigError):
            ResultCache(maxsize=4, ttl=0.0)

    def test_thaw_builds_fresh_containers(self):
        frozen = CachedResult.freeze(select_result())
        first = frozen.thaw()
        second = frozen.thaw()
        first.rows.append(("poison",))
        first.columns.append("poison")
        assert second.rows == select_result().rows
        assert second.columns == ["id", "v"]
        assert frozen.thaw().rows == select_result().rows


# -- guard integration --------------------------------------------------------


def make_guard(db=None, **overrides):
    config = dict(
        policy="popularity", cap=5.0, unit=1.0, result_cache_size=32
    )
    config.update(overrides)
    return DelayGuard(
        db if db is not None else make_db(),
        config=GuardConfig(**config),
        clock=VirtualClock(),
    )


class TestGuardIntegration:
    def test_disabled_by_default(self):
        guard = make_guard(result_cache_size=None)
        assert guard.result_cache is None
        first = guard.execute("SELECT * FROM t WHERE id <= 1", sleep=False)
        second = guard.execute("SELECT * FROM t WHERE id <= 1", sleep=False)
        assert not first.cached and not second.cached

    def test_ttl_without_size_rejected(self):
        with pytest.raises(ConfigError):
            GuardConfig(result_cache_ttl=5.0).validate()

    def test_second_identical_query_hits(self):
        guard = make_guard()
        first = guard.execute("SELECT * FROM t WHERE id <= 2", sleep=False)
        second = guard.execute("SELECT * FROM t WHERE id <= 2", sleep=False)
        assert not first.cached
        assert second.cached
        assert second.result.rows == first.result.rows
        assert second.result.columns == first.result.columns
        assert guard.result_cache.info()["hits"] == 1

    def test_textual_variants_hit(self):
        guard = make_guard()
        guard.execute("SELECT * FROM t WHERE id <= 2", sleep=False)
        variant = guard.execute(
            "select *  from t -- probe\n where id<=2;", sleep=False
        )
        assert variant.cached

    def test_hit_skips_engine_execution(self):
        db = make_db()
        guard = make_guard(db)
        for _ in range(5):
            guard.execute("SELECT * FROM t WHERE id <= 2", sleep=False)
        assert db.stats.by_kind.get("select", 0) == 1

    def test_hit_still_pays_delay_and_popularity(self):
        # A hit skips the engine, never the price: every repetition is
        # charged a positive delay and recorded into popularity, so the
        # counts read 4 even though the engine ran once.
        guard = make_guard(cap=None, unit=0.001)
        results = [
            guard.execute("SELECT * FROM t WHERE id <= 2", sleep=False)
            for _ in range(4)
        ]
        assert not results[0].cached
        assert all(r.cached for r in results[1:])
        assert all(r.delay > 0 for r in results)
        assert guard.stats.total_delay == pytest.approx(
            sum(r.delay for r in results)
        )
        counts = dict(guard.popularity.store.items())
        assert counts == {key: 4.0 for key in results[0].result.touched}

    def test_dml_invalidates(self):
        db = make_db()
        guard = make_guard(db)
        guard.execute("SELECT * FROM t WHERE id <= 1", sleep=False)
        guard.execute("UPDATE t SET v = 'changed' WHERE id = 0", sleep=False)
        after = guard.execute("SELECT * FROM t WHERE id <= 1", sleep=False)
        assert not after.cached
        assert after.result.rows[0][1] == "changed"

    def test_zero_row_dml_keeps_cache_warm(self):
        guard = make_guard()
        guard.execute("SELECT * FROM t WHERE id <= 1", sleep=False)
        guard.execute("UPDATE t SET v = 'x' WHERE id = 999", sleep=False)
        assert guard.execute(
            "SELECT * FROM t WHERE id <= 1", sleep=False
        ).cached

    def test_cached_rows_cannot_be_poisoned(self):
        # Regression: the guard must hand each caller fresh containers.
        guard = make_guard()
        first = guard.execute("SELECT * FROM t WHERE id <= 2", sleep=False)
        pristine = [tuple(row) for row in first.result.rows]
        hit = guard.execute("SELECT * FROM t WHERE id <= 2", sleep=False)
        assert hit.cached
        hit.result.rows.append(("poison",))
        hit.result.rows[0] = ("poison",)
        hit.result.columns.append("poison")
        again = guard.execute("SELECT * FROM t WHERE id <= 2", sleep=False)
        assert again.cached
        assert [tuple(row) for row in again.result.rows] == pristine
        assert again.result.columns == ["id", "v"]

    def test_metrics_registered(self):
        guard = make_guard()
        guard.execute("SELECT * FROM t WHERE id <= 1", sleep=False)
        guard.execute("SELECT * FROM t WHERE id <= 1", sleep=False)
        exported = guard.obs.registry.render_prometheus()
        assert "guard_result_cache_hits 1" in exported
        assert "guard_result_cache_misses 1" in exported


# -- adversarial laundering ---------------------------------------------------


PROBES = [
    "SELECT * FROM t WHERE id <= 2",
    "SELECT * FROM t WHERE id <= 2",
    "select * from t where id <= 2;",
    "SELECT v FROM t WHERE id = 0",
    "SELECT * FROM t WHERE id <= 2",
]


def run_probe_stream(result_cache_size):
    """One identity hammering the same probes through a guard."""
    clock = VirtualClock()
    accounts = AccountManager(policy=AccountPolicy(), clock=clock)
    accounts.register("adversary")
    guard = DelayGuard(
        make_db(),
        config=GuardConfig(
            policy="popularity",
            cap=None,
            unit=0.001,
            result_cache_size=result_cache_size,
        ),
        clock=clock,
        accounts=accounts,
    )
    results = [
        guard.execute(sql, identity="adversary", sleep=False)
        for sql in PROBES
    ]
    return guard, accounts, results


class TestCacheLaundering:
    """Repeated identical probes must cost the same, hit or miss."""

    def test_hits_and_misses_priced_identically(self):
        guard_on, accounts_on, on = run_probe_stream(result_cache_size=32)
        guard_off, accounts_off, off = run_probe_stream(None)
        # The cache actually engaged (otherwise this test proves nothing).
        assert guard_on.result_cache.info()["hits"] >= 2
        assert guard_off.result_cache is None
        # Per-query mandated delay: bit-identical between hit and miss.
        assert [r.delay for r in on] == [r.delay for r in off]
        # Rows returned: identical.
        for r_on, r_off in zip(on, off):
            assert r_on.result.rows == r_off.result.rows
        # Popularity counts accrued per tuple: identical.
        assert dict(guard_on.popularity.store.items()) == dict(
            guard_off.popularity.store.items()
        )
        # Account charges: identical.
        acct_on = accounts_on.account("adversary")
        acct_off = accounts_off.account("adversary")
        assert acct_on.tuples_retrieved == acct_off.tuples_retrieved
        assert acct_on.queries_issued == acct_off.queries_issued
        # Guard-level pricing stats: identical.
        assert guard_on.stats.tuples_charged == guard_off.stats.tuples_charged
        assert guard_on.stats.total_delay == guard_off.stats.total_delay
