"""Tests for the §1.1 strawman result-size limit — and why it fails.

The paper's introduction: "most information providers restrict the
amount of information that can be queried in one request — users must
ask very selective queries. However, such restrictions are easy to
overcome — the attacker could trivially construct a robot that
repeatedly asks slightly different selective queries whose union is the
entire database." These tests implement both halves of that sentence.
"""

import pytest

from repro.attacks import ExtractionAdversary
from repro.core import AccessDenied, ConfigError, GuardConfig
from repro.sim.experiment import build_guarded_items


class TestResultLimitEnforcement:
    def test_large_result_refused(self):
        fixture = build_guarded_items(
            50, config=GuardConfig(max_result_rows=5, cap=1.0)
        )
        with pytest.raises(AccessDenied) as excinfo:
            fixture.guard.execute("SELECT * FROM items WHERE id <= 10")
        assert excinfo.value.reason == "result_limit"
        assert fixture.guard.stats.denied == 1

    def test_small_result_allowed(self):
        fixture = build_guarded_items(
            50, config=GuardConfig(max_result_rows=5, cap=1.0)
        )
        result = fixture.guard.execute("SELECT * FROM items WHERE id <= 5")
        assert len(result.rows) == 5

    def test_refused_query_not_recorded(self):
        fixture = build_guarded_items(
            50, config=GuardConfig(max_result_rows=2, cap=1.0)
        )
        with pytest.raises(AccessDenied):
            fixture.guard.execute("SELECT * FROM items WHERE id <= 10")
        assert fixture.guard.popularity.total_requests == 0

    def test_refused_query_charges_no_delay(self):
        fixture = build_guarded_items(
            50, config=GuardConfig(max_result_rows=2, cap=1.0)
        )
        with pytest.raises(AccessDenied):
            fixture.guard.execute("SELECT * FROM items WHERE id <= 10")
        assert fixture.clock.total_slept == 0.0

    def test_refused_query_still_accounts_engine_time(self):
        # The engine did the read before the limit refused the result,
        # so the Table 5 timing buckets must include that work.
        fixture = build_guarded_items(
            50, config=GuardConfig(max_result_rows=2, cap=1.0)
        )
        with pytest.raises(AccessDenied):
            fixture.guard.execute("SELECT * FROM items WHERE id <= 10")
        stats = fixture.guard.stats
        assert stats.queries == 1
        assert stats.denied == 1
        assert stats.engine_seconds > 0
        assert stats.accounting_seconds > 0
        assert stats.total_delay == 0.0

    def test_invalid_limit_rejected(self):
        with pytest.raises(ConfigError):
            GuardConfig(max_result_rows=0).validate()


class TestWhyTheStrawmanFails:
    def test_selective_robot_defeats_the_limit_alone(self):
        """With ONLY the result limit (no delays), a one-row-at-a-time
        robot extracts the entire database unimpeded."""
        fixture = build_guarded_items(
            100,
            config=GuardConfig(policy="none", max_result_rows=1),
        )
        result = ExtractionAdversary(fixture.guard, fixture.table).run()
        assert result.tuples == 100  # complete copy obtained
        assert result.total_delay == 0.0  # and it cost nothing
        assert fixture.guard.stats.denied == 0  # never even refused

    def test_delay_scheme_still_bites_with_limit_in_place(self):
        """The two defenses compose: the limit refuses bulk grabs and
        the delay scheme makes the selective robot pay."""
        fixture = build_guarded_items(
            100,
            config=GuardConfig(cap=2.0, max_result_rows=1),
        )
        result = ExtractionAdversary(fixture.guard, fixture.table).run()
        assert result.tuples == 100
        assert result.total_delay == pytest.approx(200.0)
