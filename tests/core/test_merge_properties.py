"""Algebraic properties of the tracker merge (the gossip substrate).

Anti-entropy only converges if the merge is a join: commutative,
associative, idempotent. These tests check those laws the way a
property-testing library would — seeded random workloads, random decay
rates, random interleavings — just with plain loops so the suite takes
no new dependency.

Also here: dump_state/load_state round trips for both tracker flavours,
since recovery composes with gossip through exactly these paths.
"""

import random

import pytest

from repro.core.popularity import AdaptiveTracker, PopularityTracker
from repro.core.clock import VirtualClock
from repro.core.update_tracker import UpdateRateTracker

KEYS = [("items", rowid) for rowid in range(1, 9)]


def build_tracker(origin, decay_rate=1.0):
    return PopularityTracker(decay_rate=decay_rate, origin=origin)


def random_workload(tracker, rng, records=30):
    for _ in range(records):
        tracker.record(rng.choice(KEYS), weight=rng.choice([1.0, 2.0, 0.5]))


def sync(receiver, sender):
    """One directed gossip exchange; returns entries adopted."""
    return receiver.merge(sender.delta_since(receiver.versions()))


def full_mesh(trackers):
    """Gossip rounds until quiescent (bounded; the join must converge)."""
    for _ in range(10):
        adopted = 0
        for sender in trackers:
            for receiver in trackers:
                if receiver is not sender:
                    adopted += sync(receiver, sender)
        if adopted == 0:
            return
    raise AssertionError("gossip failed to quiesce in 10 rounds")


def effective_view(tracker):
    return {
        "counts": {key: tracker.present_count(key) for key in KEYS},
        "total": tracker.total_requests,
        "decayed": tracker.decayed_total,
    }


def assert_views_equal(left, right, rel=1e-9):
    assert left["total"] == pytest.approx(right["total"], rel=rel)
    assert left["decayed"] == pytest.approx(right["decayed"], rel=rel)
    for key in KEYS:
        assert left["counts"][key] == pytest.approx(
            right["counts"][key], rel=rel, abs=1e-12
        ), key


class TestMergeLaws:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("decay_rate", [1.0, 1.05, 1.5])
    def test_commutative(self, seed, decay_rate):
        """A ⊔ B and B ⊔ A read back the same effective view."""
        rng = random.Random(seed)
        a = build_tracker("a", decay_rate)
        b = build_tracker("b", decay_rate)
        random_workload(a, rng)
        random_workload(b, rng)
        sync(a, b)
        sync(b, a)
        assert_views_equal(effective_view(a), effective_view(b))

    @pytest.mark.parametrize("seed", range(5))
    def test_associative_across_round_orders(self, seed):
        """Three trackers converge identically whatever the pair order."""

        def build_world():
            world = [build_tracker(name) for name in ("a", "b", "c")]
            rng = random.Random(seed)
            for tracker in world:
                random_workload(tracker, rng)
            return world

        orders = [
            [(0, 1), (1, 2), (2, 0), (0, 1), (1, 2), (2, 0)],
            [(2, 0), (1, 2), (0, 1), (2, 0), (1, 2), (0, 1)],
        ]
        results = []
        for order in orders:
            world = build_world()
            for receiver, sender in order:
                sync(world[receiver], world[sender])
            full_mesh(world)
            results.append([effective_view(t) for t in world])
        for left, right in zip(*results):
            assert_views_equal(left, right)

    @pytest.mark.parametrize("decay_rate", [1.0, 1.2])
    def test_idempotent(self, decay_rate):
        a = build_tracker("a", decay_rate)
        b = build_tracker("b", decay_rate)
        random_workload(a, random.Random(7))
        delta = a.delta_since(b.versions())
        assert b.merge(delta) > 0
        before = effective_view(b)
        assert b.merge(delta) == 0  # re-merge adopts nothing
        assert_views_equal(before, effective_view(b))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_interleavings_converge(self, seed):
        """Any mix of records and partial syncs quiesces to one view."""
        rng = random.Random(100 + seed)
        world = [build_tracker(f"t{i}") for i in range(3)]
        recorded = 0
        for _ in range(60):
            if rng.random() < 0.7:
                tracker = rng.choice(world)
                tracker.record(rng.choice(KEYS))
                recorded += 1
            else:
                receiver, sender = rng.sample(world, 2)
                sync(receiver, sender)
        full_mesh(world)
        reference = effective_view(world[0])
        for tracker in world[1:]:
            assert_views_equal(reference, effective_view(tracker))
        assert reference["total"] == pytest.approx(float(recorded))

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("decay_rate", [1.1, 2.0])
    def test_decayed_interleavings_never_understate(self, seed, decay_rate):
        """With decay, mirrors are stale but *conservative*.

        A mirrored mass is the origin's present-scale count as of its
        last shipped delta; subsequent decay can only shrink the true
        value, so every view bounds the global mass from above — the
        adversary cannot mint an undercount by gossip timing. Raw
        request totals (undecayed, monotone) still converge exactly.
        """
        rng = random.Random(500 + seed)
        world = [build_tracker(f"t{i}", decay_rate) for i in range(3)]
        recorded = 0
        for _ in range(60):
            if rng.random() < 0.7:
                tracker = rng.choice(world)
                tracker.record(rng.choice(KEYS))
                recorded += 1
            else:
                receiver, sender = rng.sample(world, 2)
                sync(receiver, sender)
        full_mesh(world)
        for tracker in world:
            assert tracker.total_requests == pytest.approx(float(recorded))
        for key in KEYS:
            true_mass = sum(
                t.store.get(key) / t._increment for t in world
            )
            for viewer in world:
                assert (
                    viewer.present_count(key) >= true_mass - 1e-9
                ), (viewer.origin, key)

    def test_period_decay_reships_masses(self):
        """apply_decay changes every present mass; peers must re-adopt."""
        a = build_tracker("a")
        b = build_tracker("b")
        a.record(("items", 1), weight=8.0)
        sync(b, a)
        a.apply_decay(2.0)
        assert b.present_count(("items", 1)) == pytest.approx(8.0)
        sync(b, a)
        assert b.present_count(("items", 1)) == pytest.approx(4.0)
        assert_views_equal(effective_view(a), effective_view(b))


class TestUpdateTrackerMerge:
    def build(self, origin, clock):
        return UpdateRateTracker(
            clock=clock, time_constant=50.0, origin=origin
        )

    def test_commutative_and_convergent(self):
        clock = VirtualClock()
        a = self.build("a", clock)
        b = self.build("b", clock)
        rng = random.Random(3)
        for _ in range(20):
            clock.advance(rng.random())
            rng.choice([a, b]).record_update(rng.choice(KEYS))
        sync(a, b)
        sync(b, a)
        for key in KEYS:
            assert a.rate(key) == pytest.approx(b.rate(key))

    def test_idempotent(self):
        clock = VirtualClock()
        a = self.build("a", clock)
        b = self.build("b", clock)
        a.record_update(("items", 1))
        delta = a.delta_since(b.versions())
        assert b.merge(delta) > 0
        rate = b.rate(("items", 1))
        assert b.merge(delta) == 0
        assert b.rate(("items", 1)) == pytest.approx(rate)


class TestStateRoundTrips:
    @pytest.mark.parametrize("decay_rate", [1.0, 1.3])
    def test_popularity_tracker_round_trip(self, decay_rate):
        source = build_tracker("shard-0", decay_rate)
        random_workload(source, random.Random(11))
        peer = build_tracker("shard-1", decay_rate)
        random_workload(peer, random.Random(12))
        sync(source, peer)  # the dump must carry the mirror too

        restored = build_tracker("ignored", decay_rate)
        restored.load_state(source.dump_state())
        assert restored.origin == "shard-0"
        assert_views_equal(effective_view(source), effective_view(restored))

        # Post-recovery records outrank anything peers mirror back.
        restored.record(("items", 1), weight=3.0)
        before = restored.present_count(("items", 1))
        sync(restored, peer)
        assert restored.present_count(("items", 1)) >= before - 1e-12

    def test_popularity_load_rejects_other_decay(self):
        source = build_tracker("a", 1.5)
        with pytest.raises(Exception, match="decay_rate"):
            build_tracker("b", 1.0).load_state(source.dump_state())

    def test_adaptive_tracker_round_trip(self):
        rates = (1.0, 1.4)
        source = AdaptiveTracker(rates, origin="shard-0")
        rng = random.Random(21)
        for _ in range(40):
            source.record(rng.choice(KEYS))
        restored = AdaptiveTracker(rates, origin="other")
        restored.load_state(source.dump_state())
        assert restored.origin == "shard-0"
        assert restored.active_rate == source.active_rate
        assert restored.scores() == pytest.approx(source.scores())
        for rate in rates:
            assert_views_equal(
                effective_view(source.trackers[rate]),
                effective_view(restored.trackers[rate]),
            )

    def test_update_tracker_round_trip(self):
        clock = VirtualClock()
        source = UpdateRateTracker(
            clock=clock, time_constant=30.0, origin="shard-0"
        )
        rng = random.Random(31)
        for _ in range(15):
            clock.advance(rng.random() * 2)
            source.record_update(rng.choice(KEYS))
        restored = UpdateRateTracker(
            clock=clock, time_constant=30.0, origin="other"
        )
        restored.load_state(source.dump_state())
        assert restored.origin == "shard-0"
        for key in KEYS:
            assert restored.rate(key) == pytest.approx(source.rate(key))
