"""Property-based tests for the delay-defense core (hypothesis)."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import analysis
from repro.core.counts import InMemoryCountStore, SpaceSavingStore
from repro.core.delay_policy import PopularityDelayPolicy
from repro.core.popularity import PopularityTracker

keys = st.integers(min_value=0, max_value=20)
alphas = st.floats(min_value=0.1, max_value=3.0, allow_nan=False)
small_alphas = st.floats(min_value=0.05, max_value=0.95, allow_nan=False)


class TestTrackerInvariants:
    @given(st.lists(keys, min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_no_decay_popularity_sums_to_one(self, stream):
        tracker = PopularityTracker()
        tracker.record_many(stream)
        total = sum(
            tracker.popularity(key) for key in set(stream)
        )
        assert total == pytest.approx(1.0)

    @given(
        st.lists(keys, min_size=1, max_size=200),
        st.floats(min_value=1.0, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_decayed_popularity_sums_to_one(self, stream, decay):
        tracker = PopularityTracker(decay_rate=decay, rescale_threshold=1e50)
        tracker.record_many(stream)
        total = sum(
            tracker.popularity(key, "decayed") for key in set(stream)
        )
        assert total == pytest.approx(1.0)

    @given(
        st.lists(keys, min_size=5, max_size=300),
        st.floats(min_value=1.0, max_value=1.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_rescaling_is_invisible(self, stream, decay):
        """Aggressive rescaling must not change popularity estimates."""
        stable = PopularityTracker(decay_rate=decay, rescale_threshold=1e100)
        twitchy = PopularityTracker(decay_rate=decay, rescale_threshold=10.0)
        stable.record_many(stream)
        twitchy.record_many(stream)
        for key in set(stream):
            assert twitchy.popularity(key, "decayed") == pytest.approx(
                stable.popularity(key, "decayed"), rel=1e-6
            )
            assert twitchy.popularity(key, "raw") == pytest.approx(
                stable.popularity(key, "raw"), rel=1e-6
            )

    @given(st.lists(keys, min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_ranks_are_a_permutation(self, stream):
        tracker = PopularityTracker(rank_refresh=1)
        tracker.record_many(stream)
        distinct = set(stream)
        ranks = {tracker.rank(key) for key in distinct}
        assert ranks == set(range(1, len(distinct) + 1))

    @given(st.lists(keys, min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_rank_agrees_with_count_order(self, stream):
        tracker = PopularityTracker(rank_refresh=1)
        tracker.record_many(stream)
        snapshot = tracker.snapshot()
        for earlier, later in zip(snapshot, snapshot[1:]):
            assert earlier[1] >= later[1]


class TestPolicyInvariants:
    @given(st.lists(keys, min_size=1, max_size=200),
           st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=50, deadline=None)
    def test_delay_never_exceeds_cap(self, stream, cap):
        tracker = PopularityTracker()
        tracker.record_many(stream)
        policy = PopularityDelayPolicy(tracker, population=50, cap=cap)
        for key in range(25):
            assert 0 < policy.delay_for(key) <= cap

    @given(st.lists(keys, min_size=2, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_delay_antitone_in_popularity(self, stream):
        tracker = PopularityTracker()
        tracker.record_many(stream)
        policy = PopularityDelayPolicy(tracker, population=50, cap=1e9)
        observed = sorted(
            (tracker.popularity(key), policy.delay_for(key))
            for key in set(stream)
        )
        for (p1, d1), (p2, d2) in zip(observed, observed[1:]):
            if p1 < p2:
                assert d1 >= d2


class TestAnalysisInvariants:
    @given(alphas, st.integers(min_value=2, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_median_rank_in_range(self, alpha, n):
        m = analysis.median_rank(n, alpha)
        assert 1 <= m <= n

    @given(alphas, st.floats(min_value=0.01, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_staleness_bounds(self, alpha, c):
        s = analysis.staleness_fraction(c, alpha)
        assert 0.0 <= s <= 1.0

    @given(
        st.integers(min_value=10, max_value=2000),
        st.floats(min_value=0.01, max_value=1.0),
        alphas,
        st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_capped_total_at_most_uncapped_and_bounded(
        self, n, fmax, alpha, cap
    ):
        capped = analysis.total_extraction_delay(n, fmax, alpha, cap=cap)
        uncapped = analysis.total_extraction_delay(n, fmax, alpha)
        assert capped <= uncapped + 1e-9
        assert capped <= n * cap + 1e-9

    @given(
        st.integers(min_value=10, max_value=1000),
        st.floats(min_value=0.05, max_value=1.0),
        alphas,
    )
    @settings(max_examples=40, deadline=None)
    def test_delay_monotone_in_rank(self, n, fmax, alpha):
        previous = 0.0
        for rank in range(1, min(n, 30) + 1):
            delay = analysis.popularity_delay(rank, n, fmax, alpha)
            assert delay >= previous
            previous = delay

    @given(st.floats(min_value=0.05, max_value=0.99), alphas)
    @settings(max_examples=60, deadline=None)
    def test_required_c_round_trips(self, target, alpha):
        c = analysis.required_c_for_staleness(target, alpha)
        assert analysis.staleness_fraction(c, alpha) == pytest.approx(
            target, rel=1e-6
        )


class TestSpaceSavingInvariants:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=400
        ),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_error_bound(self, stream, capacity):
        store = SpaceSavingStore(capacity=capacity)
        truth = {}
        for key in stream:
            store.add(key)
            truth[key] = truth.get(key, 0) + 1
        bound = len(stream) / capacity
        for key, estimate in store.items():
            true = truth.get(key, 0)
            assert true <= estimate <= true + bound + 1e-9

    @given(
        st.lists(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=400
        ),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_never_exceeded(self, stream, capacity):
        store = SpaceSavingStore(capacity=capacity)
        for key in stream:
            store.add(key)
        assert len(store) <= capacity
