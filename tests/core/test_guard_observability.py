"""Tests for the guard's metrics and lifecycle-trace instrumentation."""

import pytest

from repro.core import (
    AccessDenied,
    AccountManager,
    AccountPolicy,
    DelayGuard,
    GuardConfig,
    RealClock,
    VirtualClock,
)
from repro.engine import Database
from repro.obs import Observability, Tracer

from .test_guard import make_db, make_guard


class TestGuardMetrics:
    def test_counters_reconcile_with_stats(self):
        guard, _ = make_guard(config=GuardConfig(cap=5.0))
        for item in range(1, 6):
            guard.execute(f"SELECT * FROM t WHERE id = {item}")
        guard.execute("UPDATE t SET v = 'x' WHERE id = 1")
        registry = guard.obs.registry
        stats = guard.stats
        assert registry.get("guard_queries_total").value() == stats.queries
        assert registry.get("guard_selects_total").value() == stats.selects
        assert (
            registry.get("guard_tuples_charged_total").value()
            == stats.tuples_charged
        )
        assert registry.get("guard_delay_seconds_total").value() == (
            pytest.approx(stats.total_delay)
        )
        assert registry.get("guard_engine_seconds_total").value() == (
            pytest.approx(stats.engine_seconds)
        )
        assert registry.get("guard_accounting_seconds_total").value() == (
            pytest.approx(stats.accounting_seconds)
        )

    def test_delay_histogram_is_the_stats_histogram(self):
        guard, _ = make_guard(config=GuardConfig(cap=5.0))
        guard.execute("SELECT * FROM t WHERE id = 1")
        registered = guard.obs.registry.get("guard_select_delay_seconds")
        assert registered is guard.stats.delay_histogram
        assert registered.count == 1
        assert registered.max == 5.0

    def test_denials_counted_by_reason(self):
        clock = VirtualClock()
        accounts = AccountManager(
            policy=AccountPolicy(daily_query_quota=2), clock=clock
        )
        guard = DelayGuard(make_db(), clock=clock, accounts=accounts)
        accounts.register("u")
        guard.execute("SELECT * FROM t WHERE id = 1", identity="u")
        guard.execute("SELECT * FROM t WHERE id = 2", identity="u")
        with pytest.raises(AccessDenied):
            guard.execute("SELECT * FROM t WHERE id = 3", identity="u")
        denied = guard.obs.registry.get("guard_denied_total")
        assert denied.value(reason="query_quota") == 1
        assert guard.stats.denied == 1

    def test_per_identity_delay_attribution(self):
        clock = VirtualClock()
        accounts = AccountManager(clock=clock)
        guard = DelayGuard(
            make_db(),
            config=GuardConfig(cap=4.0),
            clock=clock,
            accounts=accounts,
        )
        accounts.register("alice")
        accounts.register("bob")
        guard.execute("SELECT * FROM t WHERE id = 1", identity="alice")
        guard.execute("SELECT * FROM t WHERE id = 2", identity="bob")
        guard.execute("SELECT * FROM t WHERE id = 3", identity="bob")
        per_identity = guard.obs.registry.get(
            "guard_identity_delay_seconds_total"
        )
        assert per_identity.value(identity="alice") == pytest.approx(4.0)
        assert per_identity.value(identity="bob") == pytest.approx(8.0)

    def test_state_gauges_track_trackers(self):
        guard, _ = make_guard(rows=50, config=GuardConfig(cap=1.0))
        registry = guard.obs.registry
        assert registry.get("guard_population").value() == 50
        assert registry.get("guard_popularity_tracked_keys").value() == 0
        guard.execute("SELECT * FROM t WHERE id <= 3")
        assert registry.get("guard_popularity_tracked_keys").value() == 3
        assert registry.get("guard_popularity_requests_total").value() == 3
        guard.execute("UPDATE t SET v = 'y' WHERE id = 1")
        assert registry.get("guard_update_tracker_keys").value() == 1
        assert registry.get("guard_count_store_entries").value() == 3

    def test_count_store_gauges_for_write_behind(self):
        guard, _ = make_guard(
            config=GuardConfig(
                cap=1.0, count_store="write_behind", count_cache_size=2
            )
        )
        for item in range(1, 6):
            guard.execute(f"SELECT * FROM t WHERE id = {item}")
        registry = guard.obs.registry
        assert registry.get("guard_count_store_entries").value() == 5
        assert registry.get("guard_count_store_cache_entries").value() <= 2
        assert registry.get("guard_count_store_backing_writes").value() > 0

    def test_disabled_observability_is_inert(self):
        guard, _ = make_guard(
            config=GuardConfig(cap=5.0), obs=Observability.disabled()
        )
        guard.execute("SELECT * FROM t WHERE id = 1")
        # No metrics registered, no traces collected — but stats (and
        # their canonical histogram) still work.
        assert len(guard.obs.registry) == 0
        assert len(guard.obs.tracer) == 0
        assert guard.stats.selects == 1
        assert guard.stats.delay_histogram.count == 1
        assert guard.stats.median_delay() == 5.0


class TestGuardTracing:
    def test_ok_select_records_lifecycle_stages(self):
        guard, _ = make_guard(config=GuardConfig(cap=3.0))
        guard.execute("SELECT * FROM t WHERE id = 1", identity=None)
        [trace] = guard.obs.tracer.recent(limit=1)
        assert trace.status == "ok"
        assert trace.delay == 3.0
        assert trace.rows == 1
        assert trace.sql == "SELECT * FROM t WHERE id = 1"
        stages = [span.name for span in trace.spans]
        # No accounts → no admit/authorize stages; virtual clock →
        # sleep span still recorded (the sleep itself is instantaneous).
        assert stages == [
            "parse", "execute", "account", "price", "record", "sleep"
        ]

    def test_denied_query_traced_with_reason(self):
        clock = VirtualClock()
        accounts = AccountManager(
            policy=AccountPolicy(daily_query_quota=1), clock=clock
        )
        guard = DelayGuard(make_db(), clock=clock, accounts=accounts)
        accounts.register("u")
        guard.execute("SELECT * FROM t WHERE id = 1", identity="u")
        with pytest.raises(AccessDenied):
            guard.execute("SELECT * FROM t WHERE id = 2", identity="u")
        [denied, ok] = guard.obs.tracer.recent(limit=2)
        assert ok.status == "ok"
        assert denied.status == "denied"
        assert denied.reason == "query_quota"
        assert [span.name for span in denied.spans] == [
            "admit", "parse", "authorize"
        ]

    def test_error_query_traced(self):
        guard, _ = make_guard()
        with pytest.raises(Exception):
            guard.execute("SELECT * FROM missing WHERE id = 1")
        [trace] = guard.obs.tracer.recent(limit=1)
        assert trace.status == "error"
        assert trace.reason

    def test_statement_object_traced_without_parse_stage(self):
        from repro.engine.parser.parser import parse_cached

        guard, _ = make_guard(config=GuardConfig(cap=1.0))
        statement = parse_cached("SELECT * FROM t WHERE id = 1")
        guard.execute(statement)
        [trace] = guard.obs.tracer.recent(limit=1)
        assert trace.sql is None
        assert trace.spans[0].name == "execute"

    def test_delayed_select_span_durations_match_wall_clock(self):
        """Acceptance: stage durations ≈ observed wall-clock delay."""
        database = Database()
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        database.insert_rows("t", [(1, "v1")])
        guard = DelayGuard(
            database, config=GuardConfig(cap=0.15), clock=RealClock()
        )
        import time

        start = time.perf_counter()
        result = guard.execute("SELECT * FROM t WHERE id = 1")
        wall = time.perf_counter() - start
        assert result.delay == pytest.approx(0.15)
        [trace] = guard.obs.tracer.recent(limit=1)
        stages = trace.stage_seconds()
        # The sleep stage served (at least) the charged delay…
        assert stages["sleep"] >= 0.15
        # …and the spans together account for the observed wall clock:
        # span sum and total duration agree, and both bracket the wall
        # time within a small tolerance for untraced gaps.
        assert trace.span_total() == pytest.approx(
            trace.duration, rel=0.05, abs=0.01
        )
        assert trace.duration == pytest.approx(wall, rel=0.05, abs=0.01)
        assert wall >= 0.15

    def test_ring_bounded_under_many_queries(self):
        guard, _ = make_guard(
            config=GuardConfig(cap=1.0),
            obs=Observability(tracer=Tracer(capacity=8)),
        )
        for _ in range(50):
            guard.execute("SELECT * FROM t WHERE id = 1")
        assert len(guard.obs.tracer) == 8
        assert guard.obs.tracer.finished_total == 50
