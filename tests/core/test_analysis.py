"""Tests for the closed-form analysis (paper equations 1-12)."""

import math

import numpy as np
import pytest

from repro.core import analysis
from repro.core.errors import ConfigError


class TestZipfWeights:
    def test_normalised(self):
        assert analysis.zipf_weights(100, 1.5).sum() == pytest.approx(1.0)

    def test_alpha_zero_uniform(self):
        weights = analysis.zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_monotone_decreasing(self):
        weights = analysis.zipf_weights(50, 0.8)
        assert (np.diff(weights) <= 0).all()

    def test_ratio_follows_power_law(self):
        weights = analysis.zipf_weights(100, 2.0)
        assert weights[0] / weights[3] == pytest.approx(16.0)

    def test_invalid_n(self):
        with pytest.raises(ConfigError):
            analysis.zipf_weights(0, 1.0)


class TestSums:
    def test_generalized_harmonic(self):
        assert analysis.generalized_harmonic(3, 1.0) == pytest.approx(
            1 + 0.5 + 1 / 3
        )

    def test_power_sum_small(self):
        assert analysis.power_sum(4, 2.0) == pytest.approx(1 + 4 + 9 + 16)

    def test_power_sum_large_approximation(self):
        exact = analysis.power_sum(10_000_000, 1.5)
        approx_n = 20_000_000
        approx = analysis.power_sum(approx_n, 1.5)
        # leading term is n^2.5/2.5: doubling n multiplies by ~5.66
        assert approx / exact == pytest.approx(2 ** 2.5, rel=0.01)


class TestPopularityDelay:
    def test_equation_one(self):
        # d = i^(a+b) / (N fmax)
        assert analysis.popularity_delay(
            rank=10, n=100, fmax=0.5, alpha=1.0, beta=1.0
        ) == pytest.approx(100 / 50.0)

    def test_cap_applied(self):
        assert analysis.popularity_delay(
            rank=1000, n=10, fmax=0.01, alpha=2.0, cap=5.0
        ) == 5.0

    def test_monotone_in_rank(self):
        delays = [
            analysis.popularity_delay(rank, 1000, 0.1, 1.5)
            for rank in range(1, 50)
        ]
        assert delays == sorted(delays)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            analysis.popularity_delay(0, 10, 0.1, 1.0)
        with pytest.raises(ConfigError):
            analysis.popularity_delay(1, 10, 0.0, 1.0)


class TestCapRank:
    def test_equation_five_inversion(self):
        n, fmax, alpha, beta = 10_000, 0.2, 1.0, 0.5
        m = analysis.cap_rank(n, fmax, alpha, beta, dmax=10.0)
        below = analysis.popularity_delay(m, n, fmax, alpha, beta)
        above = analysis.popularity_delay(m + 1, n, fmax, alpha, beta)
        assert below <= 10.0 < above

    def test_clamped_to_population(self):
        assert analysis.cap_rank(100, 1.0, 1.0, 0.0, dmax=1e9) == 100

    def test_at_least_one(self):
        assert analysis.cap_rank(100, 1.0, 2.0, 0.0, dmax=1e-9) == 1

    def test_invalid_dmax(self):
        with pytest.raises(ConfigError):
            analysis.cap_rank(10, 1.0, 1.0, 0.0, dmax=0)


class TestTotalExtractionDelay:
    def test_uncapped_matches_direct_sum(self):
        n, fmax, alpha = 500, 0.3, 1.2
        expected = sum(
            analysis.popularity_delay(rank, n, fmax, alpha)
            for rank in range(1, n + 1)
        )
        assert analysis.total_extraction_delay(
            n, fmax, alpha
        ) == pytest.approx(expected)

    def test_capped_matches_direct_sum(self):
        n, fmax, alpha, cap = 500, 0.3, 1.2, 2.0
        expected = sum(
            analysis.popularity_delay(rank, n, fmax, alpha, cap=cap)
            for rank in range(1, n + 1)
        )
        assert analysis.total_extraction_delay(
            n, fmax, alpha, cap=cap
        ) == pytest.approx(expected, rel=0.01)

    def test_cap_reduces_total(self):
        uncapped = analysis.total_extraction_delay(1000, 0.2, 1.5)
        capped = analysis.total_extraction_delay(1000, 0.2, 1.5, cap=1.0)
        assert capped < uncapped

    def test_capped_total_bounded_by_n_dmax(self):
        total = analysis.total_extraction_delay(1000, 0.2, 1.5, cap=1.0)
        assert total <= 1000 * 1.0 + 1e-9


class TestMedianRank:
    def test_uniform_median_is_middle(self):
        assert analysis.median_rank(100, 0.0) == pytest.approx(50, abs=1)

    def test_high_skew_median_near_head(self):
        assert analysis.median_rank(10_000, 2.0) <= 3

    def test_cumulative_definition(self):
        n, alpha = 1000, 1.0
        m = analysis.median_rank(n, alpha)
        weights = analysis.zipf_weights(n, alpha)
        assert weights[:m].sum() >= 0.5
        assert weights[: m - 1].sum() < 0.5

    def test_asymptotic_regimes(self):
        n = 10_000
        assert analysis.median_rank_asymptotic(n, 1.0) == pytest.approx(
            math.sqrt(n)
        )
        assert analysis.median_rank_asymptotic(n, 2.0) == pytest.approx(
            math.log(n)
        )
        # alpha < 1: 2^(1/(alpha-1)) * N with negative exponent => < N
        low = analysis.median_rank_asymptotic(n, 0.5)
        assert 0 < low < n

    def test_asymptotic_tracks_exact_for_alpha_over_one(self):
        # Θ(log N): the exact median should grow like log N.
        small = analysis.median_rank(1_000, 1.5)
        large = analysis.median_rank(1_000_000, 1.5)
        assert large <= small * 8  # far sub-linear growth


class TestRatio:
    def test_equation_four_definition(self):
        n, fmax, alpha, beta = 2000, 0.25, 1.5, 0.0
        ratio = analysis.adversary_to_user_ratio(n, fmax, alpha, beta)
        expected = analysis.total_extraction_delay(
            n, fmax, alpha, beta
        ) / analysis.median_delay(n, fmax, alpha, beta)
        assert ratio == pytest.approx(expected)

    def test_ratio_orders_of_magnitude(self):
        # The paper's core claim: for alpha >= 1 the ratio is huge.
        ratio = analysis.adversary_to_user_ratio(100_000, 0.1, 1.5)
        assert ratio > 1e5

    def test_beta_increases_ratio(self):
        low = analysis.adversary_to_user_ratio(10_000, 0.1, 1.0, beta=0.0)
        high = analysis.adversary_to_user_ratio(10_000, 0.1, 1.0, beta=1.0)
        assert high > low

    def test_cap_keeps_asymptotics(self):
        # §2.2: the capped ratio still grows with N.
        small = analysis.adversary_to_user_ratio(1_000, 0.1, 1.5, cap=10.0)
        large = analysis.adversary_to_user_ratio(100_000, 0.1, 1.5, cap=10.0)
        assert large > small * 10

    def test_ratio_asymptotic_regimes(self):
        n = 10_000
        assert analysis.ratio_asymptotic(n, 1.0, 1.0) == pytest.approx(
            n ** 2.0
        )
        # (alpha+beta)/(1-alpha) = 1/0.5 = 2 => 2^2 * n
        assert analysis.ratio_asymptotic(n, 0.5, 0.5) == pytest.approx(
            4.0 * n
        )
        over = analysis.ratio_asymptotic(n, 1.5, 0.0)
        assert over == pytest.approx(n * (n / math.log(n)) ** 1.5)


class TestUpdateDelays:
    def test_equation_nine(self):
        assert analysis.update_delay(
            rank=4, n=100, rmax=2.0, alpha=1.0, c=1.0
        ) == pytest.approx((1.0 / 100) * 4 / 2.0)

    def test_cap(self):
        assert analysis.update_delay(
            rank=10**6, n=10, rmax=0.001, alpha=2.0, c=1.0, cap=10.0
        ) == 10.0

    def test_total_matches_direct_sum(self):
        n, rmax, alpha, c = 300, 0.5, 1.3, 2.0
        expected = sum(
            analysis.update_delay(rank, n, rmax, alpha, c)
            for rank in range(1, n + 1)
        )
        assert analysis.total_update_extraction_delay(
            n, rmax, alpha, c
        ) == pytest.approx(expected)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            analysis.update_delay(1, 10, 0.0, 1.0, 1.0)
        with pytest.raises(ConfigError):
            analysis.update_delay(1, 10, 1.0, 1.0, 0.0)


class TestStaleness:
    def test_equation_twelve(self):
        assert analysis.staleness_fraction(1.0, 1.0) == pytest.approx(0.5)
        assert analysis.staleness_fraction(2.0, 1.0) == 1.0  # clamped

    def test_bounds(self):
        for c in (0.1, 0.5, 1.0, 5.0):
            for alpha in (0.25, 1.0, 2.5):
                s = analysis.staleness_fraction(c, alpha)
                assert 0.0 <= s <= 1.0

    def test_zero_c_zero_staleness(self):
        assert analysis.staleness_fraction(0.0, 1.0) == 0.0

    def test_inverse_consistency(self):
        for target in (0.1, 0.5, 0.9):
            c = analysis.required_c_for_staleness(target, alpha=1.5)
            assert analysis.staleness_fraction(c, 1.5) == pytest.approx(
                target
            )

    def test_required_c_invalid_target(self):
        with pytest.raises(ConfigError):
            analysis.required_c_for_staleness(0.0, 1.0)
        with pytest.raises(ConfigError):
            analysis.required_c_for_staleness(1.5, 1.0)

    def test_exact_matches_approximation_for_large_n(self):
        # eq (12) is the n→∞ limit of the exact eq (10)-(11) computation.
        approx = analysis.staleness_fraction(1.0, 1.0)
        exact = analysis.exact_stale_fraction(
            100_000, rmax=1.0, alpha=1.0, c=1.0
        )
        assert exact == pytest.approx(approx, rel=0.01)

    def test_exact_with_cap_not_more_stale(self):
        uncapped = analysis.exact_stale_fraction(10_000, 1.0, 1.5, 2.0)
        capped = analysis.exact_stale_fraction(
            10_000, 1.0, 1.5, 2.0, cap=0.001
        )
        assert capped <= uncapped


class TestFitZipfAlpha:
    def test_recovers_exact_alpha(self):
        frequencies = [1000 * i ** -1.3 for i in range(1, 200)]
        assert analysis.fit_zipf_alpha(frequencies) == pytest.approx(
            1.3, abs=0.01
        )

    def test_ignores_zero_entries(self):
        frequencies = [100.0, 50.0, 0.0, 25.0]
        assert analysis.fit_zipf_alpha(frequencies) > 0

    def test_needs_two_points(self):
        with pytest.raises(ConfigError):
            analysis.fit_zipf_alpha([5.0])
