"""Thread-safety tests for the serving-stack components.

The TCP front door runs one handler thread per connection against one
shared guard, so the clock, count stores, trackers, and stats must all
tolerate concurrent mutation without losing updates. These tests hammer
each component from many threads and assert exact totals — a lost
increment anywhere fails deterministically.
"""

import threading

import pytest

from repro.core.clock import VirtualClock
from repro.core.counts import (
    CountingSampleStore,
    InMemoryCountStore,
    SpaceSavingStore,
    WriteBehindCountStore,
)
from repro.core.guard import GuardStats
from repro.core.popularity import PopularityTracker
from repro.core.update_tracker import UpdateRateTracker

THREADS = 8
ROUNDS = 500


def hammer(worker):
    """Run ``worker(thread_index)`` on THREADS threads; re-raise failures."""
    errors = []

    def run(index):
        try:
            worker(index)
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [
        threading.Thread(target=run, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors


class TestVirtualClock:
    def test_concurrent_sleeps_all_land(self):
        clock = VirtualClock()
        hammer(lambda index: [clock.sleep(0.5) for _ in range(ROUNDS)])
        assert clock.now() == pytest.approx(THREADS * ROUNDS * 0.5)
        assert len(clock.sleeps) == THREADS * ROUNDS
        assert clock.total_slept == pytest.approx(THREADS * ROUNDS * 0.5)

    def test_concurrent_advance_and_sleep(self):
        clock = VirtualClock()

        def worker(index):
            for _ in range(ROUNDS):
                clock.advance(1.0)
                clock.sleep(2.0)

        hammer(worker)
        assert clock.now() == pytest.approx(THREADS * ROUNDS * 3.0)
        assert clock.total_slept == pytest.approx(THREADS * ROUNDS * 2.0)


class TestCountStores:
    @pytest.mark.parametrize(
        "store_factory",
        [
            InMemoryCountStore,
            lambda: WriteBehindCountStore(cache_size=4),
            lambda: SpaceSavingStore(capacity=64),
        ],
    )
    def test_concurrent_adds_exact_total(self, store_factory):
        store = store_factory()
        # 16 keys << SpaceSaving capacity, so every backend is exact here;
        # the tiny write-behind cache forces constant eviction traffic.
        hammer(
            lambda index: [
                store.add(item % 16, 1.0) for item in range(ROUNDS)
            ]
        )
        total = sum(weight for _, weight in store.items())
        assert total == pytest.approx(THREADS * ROUNDS)

    def test_counting_sample_exact_below_capacity(self):
        store = CountingSampleStore(capacity=64, seed=7)
        hammer(
            lambda index: [
                store.add(item % 16) for item in range(ROUNDS)
            ]
        )
        # Below capacity tau stays 1, so counts are exact.
        assert store.tau == 1.0
        total = sum(weight for _, weight in store.items())
        assert total == pytest.approx(THREADS * ROUNDS)

    def test_concurrent_add_and_scale(self):
        store = InMemoryCountStore()

        def worker(index):
            for item in range(ROUNDS):
                store.add(item % 8, 1.0)
                if index == 0 and item % 100 == 99:
                    store.scale(1.0)  # no-op factor: exercises the path

        hammer(worker)
        total = sum(weight for _, weight in store.items())
        assert total == pytest.approx(THREADS * ROUNDS)


class TestPopularityTracker:
    def test_no_lost_records_without_decay(self):
        tracker = PopularityTracker()
        hammer(
            lambda index: [
                tracker.record((f"t{index}", item % 32))
                for item in range(ROUNDS)
            ]
        )
        assert tracker.total_requests == THREADS * ROUNDS
        assert tracker.decayed_total == pytest.approx(THREADS * ROUNDS)
        total = sum(count for _, count in tracker.snapshot())
        assert total == pytest.approx(THREADS * ROUNDS)

    def test_no_lost_records_with_decay_and_rescale(self):
        tracker = PopularityTracker(
            decay_rate=1.05, rescale_threshold=1e6
        )
        hammer(
            lambda index: [
                tracker.record((0, item % 8)) for item in range(ROUNDS)
            ]
        )
        # Decayed weights depend on interleaving order, but the raw
        # request total must be exact and the rescale guard must hold.
        assert tracker.total_requests == THREADS * ROUNDS
        assert tracker._increment <= 1e6 * 1.05
        assert tracker.rescales > 0

    def test_concurrent_record_and_rank(self):
        tracker = PopularityTracker(rank_refresh=10)

        def worker(index):
            for item in range(ROUNDS):
                tracker.record((0, item % 16))
                tracker.rank((0, item % 16))

        hammer(worker)
        assert tracker.total_requests == THREADS * ROUNDS


class TestUpdateRateTracker:
    def test_no_lost_updates(self):
        tracker = UpdateRateTracker(clock=VirtualClock())
        hammer(
            lambda index: [
                tracker.record_update((0, item % 16))
                for item in range(ROUNDS)
            ]
        )
        assert tracker.total_updates == THREADS * ROUNDS
        total = sum(
            tracker.count((0, item)) for item in range(16)
        )
        assert total == pytest.approx(THREADS * ROUNDS)


class TestGuardStats:
    def test_concurrent_notes_are_atomic(self):
        stats = GuardStats()

        def worker(index):
            for _ in range(ROUNDS):
                stats.note_query(0.5, 0.001, 0.002)
                stats.note_select(0.5, 3)
                stats.note_denied()

        hammer(worker)
        expected = THREADS * ROUNDS
        assert stats.queries == expected
        assert stats.selects == expected
        assert stats.denied == expected
        assert stats.tuples_charged == 3 * expected
        assert stats.delay_histogram.count == expected
        assert stats.total_delay == pytest.approx(0.5 * expected)
        assert stats.engine_seconds == pytest.approx(0.001 * expected)
        assert stats.accounting_seconds == pytest.approx(0.002 * expected)
