"""Tests for delay metrics and formatting."""

import pytest

from repro.core.errors import ConfigError
from repro.sim.metrics import DelayDistribution, format_ratio, format_seconds


class TestDelayDistribution:
    def test_empty_distribution(self):
        d = DelayDistribution()
        assert d.count == 0
        assert d.median == 0.0
        assert d.mean == 0.0
        assert d.maximum == 0.0
        assert d.stdev == 0.0
        assert d.quantile(0.9) == 0.0

    def test_basic_stats(self):
        d = DelayDistribution()
        d.observe_many([1.0, 2.0, 3.0, 4.0, 100.0])
        assert d.count == 5
        assert d.median == 3.0
        assert d.mean == 22.0
        assert d.maximum == 100.0
        assert d.total == 110.0

    def test_median_robust_to_outliers(self):
        """The paper's §2.1 point: median unaffected by outliers."""
        d = DelayDistribution()
        d.observe_many([0.001] * 99 + [1e6])
        assert d.median == 0.001
        assert d.mean > 1000

    def test_quantiles(self):
        d = DelayDistribution()
        d.observe_many(float(i) for i in range(100))
        assert d.quantile(0.0) == 0.0
        assert d.quantile(0.5) == 50.0
        assert d.quantile(1.0) == 99.0

    def test_quantile_bounds(self):
        d = DelayDistribution()
        d.observe(1.0)
        with pytest.raises(ConfigError):
            d.quantile(-0.1)
        with pytest.raises(ConfigError):
            d.quantile(1.1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigError):
            DelayDistribution().observe(-1.0)

    def test_stdev(self):
        d = DelayDistribution()
        d.observe_many([2.0, 4.0])
        assert d.stdev == pytest.approx(1.4142, rel=0.01)

    def test_len(self):
        d = DelayDistribution()
        d.observe(1.0)
        assert len(d) == 1


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0, "0 s"),
            (0.0000005, "0.50 µs"),
            (0.0154, "15.40 ms"),
            (2.5, "2.50 s"),
            (90, "1.50 min"),
            (7200, "2.00 h"),
            (108612, "30.17 h"),
            (2 * 86400, "48.00 h"),
            (14 * 86400, "2.00 weeks"),
        ],
    )
    def test_unit_selection(self, seconds, expected):
        assert format_seconds(seconds) == expected

    def test_infinity(self):
        assert format_seconds(float("inf")) == "inf"

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            format_seconds(-1)

    def test_digits_parameter(self):
        assert format_seconds(2.5, digits=0) == "2 s"


class TestFormatRatio:
    def test_zero(self):
        assert format_ratio(0) == "0"

    def test_small_and_large_scientific(self):
        assert "e" in format_ratio(1e6)
        assert "e" in format_ratio(1e-3)

    def test_mid_range_plain(self):
        assert format_ratio(12.5) == "12.50"
