"""Tests for the concurrent multi-session simulator."""

import pytest

from repro.core import (
    AccountManager,
    AccountPolicy,
    DelayGuard,
    GuardConfig,
    RealClock,
    VirtualClock,
)
from repro.core.errors import ConfigError
from repro.engine import Database
from repro.sim.concurrent import (
    ConcurrentSimulation,
    SimStep,
    extraction_script,
    trace_script,
)
from repro.workloads.generators import make_zipf_query_trace
from repro.workloads.traces import Trace


def make_guard(rows=20, cap=2.0, accounts=None):
    db = Database()
    db.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, v TEXT)")
    db.insert_rows("items", [(i, "x") for i in range(1, rows + 1)])
    clock = VirtualClock()
    return DelayGuard(
        db, config=GuardConfig(cap=cap), clock=clock, accounts=accounts
    )


class TestScripts:
    def test_extraction_script(self):
        steps = list(extraction_script("t", [1, 2, 3], think_time=0.5))
        assert len(steps) == 3
        assert steps[0].sql == "SELECT * FROM t WHERE id = 1"
        assert steps[0].think_time == 0.5

    def test_trace_script_skips_non_queries(self):
        trace = Trace(population=5)
        trace.add_query(1)
        trace.add_update(2)
        trace.add_mark("m")
        steps = list(trace_script(trace, "t"))
        assert len(steps) == 1


class TestSingleSession:
    def test_sequential_session_matches_inline_execution(self):
        guard = make_guard(rows=10, cap=2.0)
        sim = ConcurrentSimulation(guard)
        sim.add_session(
            "solo", extraction_script("items", range(1, 11)), record=False
        )
        report = sim.run()
        solo = report.session("solo")
        assert solo.queries == 10
        assert solo.total_delay == pytest.approx(20.0)  # all cold at cap
        assert solo.duration == pytest.approx(20.0)

    def test_think_time_extends_duration(self):
        guard = make_guard(rows=3, cap=1.0)
        sim = ConcurrentSimulation(guard)
        sim.add_session(
            "slow",
            extraction_script("items", [1, 2, 3], think_time=5.0),
            record=False,
        )
        report = sim.run()
        assert report.session("slow").duration == pytest.approx(18.0)

    def test_delayed_start(self):
        guard = make_guard(rows=2, cap=1.0)
        sim = ConcurrentSimulation(guard)
        sim.add_session(
            "late", extraction_script("items", [1]), start=100.0
        )
        report = sim.run()
        late = report.session("late")
        assert late.started_at == pytest.approx(100.0)
        assert late.finished_at == pytest.approx(101.0)


class TestParallelism:
    def test_sybil_shards_overlap(self):
        """k concurrent shards finish in ~1/k the single-session time."""
        guard = make_guard(rows=40, cap=2.0)
        sim = ConcurrentSimulation(guard)
        for shard in range(4):
            items = range(shard + 1, 41, 4)
            sim.add_session(
                f"shard-{shard}",
                extraction_script("items", items),
                record=False,
            )
        report = sim.run()
        # Total work: 40 tuples * 2s = 80s; 4-way split => 20s makespan.
        assert report.makespan == pytest.approx(20.0)
        for shard in range(4):
            assert report.session(f"shard-{shard}").total_delay == (
                pytest.approx(20.0)
            )

    def test_sessions_do_not_serialise(self):
        guard = make_guard(rows=10, cap=3.0)
        sim = ConcurrentSimulation(guard)
        sim.add_session("a", extraction_script("items", [1, 2]), record=False)
        sim.add_session("b", extraction_script("items", [3, 4]), record=False)
        report = sim.run()
        # Each session: 2 * 3s; concurrent => makespan 6s, not 12s.
        assert report.makespan == pytest.approx(6.0)

    def test_legitimate_user_unbothered_by_concurrent_extraction(self):
        guard = make_guard(rows=50, cap=5.0)
        # Warm a popular tuple first.
        for _ in range(200):
            guard.execute("SELECT * FROM items WHERE id = 1")
        sim = ConcurrentSimulation(guard)
        sim.add_session(
            "robot", extraction_script("items", range(1, 51)), record=False
        )
        sim.add_session(
            "user",
            [SimStep("SELECT * FROM items WHERE id = 1", 1.0)] * 5,
            record=False,
        )
        report = sim.run()
        user = report.session("user")
        robot = report.session("robot")
        assert user.delays.median < 0.1
        assert robot.total_delay > 100.0


class TestDenialsAndRetries:
    def make_quota_guard(self, quota):
        clock = VirtualClock()
        accounts = AccountManager(
            policy=AccountPolicy(user_query_rate=1.0, user_query_burst=quota),
            clock=clock,
        )
        db = Database()
        db.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, v TEXT)")
        db.insert_rows("items", [(i, "x") for i in range(1, 11)])
        guard = DelayGuard(
            db, config=GuardConfig(cap=0.0001), clock=clock,
            accounts=accounts,
        )
        accounts.register("u")
        return guard

    def test_rate_limited_session_retries_and_completes(self):
        guard = self.make_quota_guard(quota=2.0)
        sim = ConcurrentSimulation(guard)
        sim.add_session(
            "u-session",
            extraction_script("items", range(1, 11)),
            identity="u",
            record=False,
        )
        report = sim.run()
        session = report.session("u-session")
        assert session.queries == 10  # all completed after retries
        assert session.denied > 0
        # Rate 1/s with burst 2: ten queries need ~8s of waiting.
        assert session.duration == pytest.approx(8.0, rel=0.1)

    def test_retry_exhaustion_drops_queries(self):
        guard = self.make_quota_guard(quota=1.0)
        sim = ConcurrentSimulation(guard, max_retries=0)
        sim.add_session(
            "u-session",
            extraction_script("items", range(1, 6)),
            identity="u",
            record=False,
        )
        report = sim.run()
        session = report.session("u-session")
        assert session.queries < 5
        assert session.retries == 0


class TestValidation:
    def test_requires_virtual_clock(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        guard = DelayGuard(db, clock=RealClock())
        with pytest.raises(ConfigError, match="VirtualClock"):
            ConcurrentSimulation(guard)

    def test_duplicate_session_name(self):
        guard = make_guard()
        sim = ConcurrentSimulation(guard)
        sim.add_session("a", [])
        with pytest.raises(ConfigError, match="duplicate"):
            sim.add_session("a", [])

    def test_negative_start(self):
        sim = ConcurrentSimulation(make_guard())
        with pytest.raises(ConfigError):
            sim.add_session("a", [], start=-1.0)

    def test_until_cuts_off(self):
        guard = make_guard(rows=10, cap=10.0)
        sim = ConcurrentSimulation(guard)
        sim.add_session(
            "slow", extraction_script("items", range(1, 11)), record=False
        )
        report = sim.run(until=25.0)
        assert report.session("slow").queries <= 3
