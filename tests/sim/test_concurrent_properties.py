"""Property tests for the concurrent simulator's conservation laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DelayGuard, GuardConfig, VirtualClock
from repro.engine import Database
from repro.sim.concurrent import ConcurrentSimulation, extraction_script

session_plans = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=30), min_size=1, max_size=15
    ),
    min_size=1,
    max_size=5,
)


def make_guard(cap):
    db = Database()
    db.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, v TEXT)")
    db.insert_rows("items", [(i, "x") for i in range(1, 31)])
    return DelayGuard(
        db, config=GuardConfig(cap=cap), clock=VirtualClock()
    )


class TestConservation:
    @given(session_plans, st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds(self, plans, cap):
        """max(session delay) <= makespan <= sum(session delays)."""
        guard = make_guard(cap)
        sim = ConcurrentSimulation(guard)
        for index, items in enumerate(plans):
            sim.add_session(
                f"s{index}",
                extraction_script("items", items),
                record=False,
            )
        report = sim.run()
        delays = [s.total_delay for s in report.sessions.values()]
        assert report.makespan >= max(delays) - 1e-9
        assert report.makespan <= sum(delays) + 1e-9

    @given(session_plans, st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_every_query_served_and_charged(self, plans, cap):
        guard = make_guard(cap)
        sim = ConcurrentSimulation(guard)
        for index, items in enumerate(plans):
            sim.add_session(
                f"s{index}",
                extraction_script("items", items),
                record=False,
            )
        report = sim.run()
        total_queries = sum(s.queries for s in report.sessions.values())
        assert total_queries == sum(len(items) for items in plans)
        # Every query was cold (record=False): each charged the cap.
        for session in report.sessions.values():
            assert session.total_delay == pytest.approx(
                session.queries * cap
            )

    @given(session_plans)
    @settings(max_examples=30, deadline=None)
    def test_session_duration_at_least_own_delay(self, plans):
        guard = make_guard(1.0)
        sim = ConcurrentSimulation(guard)
        for index, items in enumerate(plans):
            sim.add_session(
                f"s{index}",
                extraction_script("items", items),
                record=False,
            )
        report = sim.run()
        for session in report.sessions.values():
            assert session.duration >= session.total_delay - 1e-9
