"""Tests for experiment scaffolding."""

import pytest

from repro.sim.experiment import GuardedFixture, ResultTable, build_guarded_items


class TestBuildGuardedItems:
    def test_builds_connected_fixture(self):
        fixture = build_guarded_items(12)
        assert fixture.database.row_count("items") == 12
        assert fixture.guard.database is fixture.database
        assert fixture.guard.clock is fixture.clock
        assert fixture.table == "items"

    def test_custom_table_name(self):
        fixture = build_guarded_items(3, table="records")
        assert fixture.database.row_count("records") == 3

    def test_guard_operational(self):
        fixture = build_guarded_items(5)
        result = fixture.guard.execute("SELECT * FROM items WHERE id = 1")
        assert len(result.rows) == 1


class TestResultTable:
    def test_render_alignment(self):
        table = ResultTable(title="T", columns=("a", "long header"))
        table.add_row("1", "2")
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "long header" in lines[1]
        assert set(lines[2]) <= {"-", "+"}

    def test_cell_count_enforced(self):
        table = ResultTable(title="T", columns=("a", "b"))
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_note_rendered(self):
        table = ResultTable(title="T", columns=("a",), note="hello")
        table.add_row("1")
        assert "note: hello" in table.render()

    def test_show_prints(self, capsys):
        table = ResultTable(title="T", columns=("a",))
        table.add_row("x")
        table.show()
        assert "x" in capsys.readouterr().out
