"""Tests for trace replay, including fast/sql path equivalence."""

import pytest

from repro.core import GuardConfig
from repro.core.errors import ConfigError
from repro.sim.experiment import build_guarded_items
from repro.sim.simulator import TraceReplayer
from repro.workloads.generators import (
    make_zipf_query_trace,
    make_zipf_update_trace,
)
from repro.workloads.traces import Trace, interleave


class TestFastReplay:
    def test_counts_queries_and_delays(self):
        fixture = build_guarded_items(20, config=GuardConfig(cap=1.0))
        trace = make_zipf_query_trace(20, 100, alpha=1.0, seed=1)
        report = TraceReplayer(fixture.guard, fixture.table).replay(trace)
        assert report.queries == 100
        assert report.user_delays.count == 100
        assert report.median_delay >= 0

    def test_guard_stats_updated(self):
        fixture = build_guarded_items(20, config=GuardConfig(cap=1.0))
        trace = make_zipf_query_trace(20, 50, alpha=1.0, seed=2)
        TraceReplayer(fixture.guard, fixture.table).replay(trace)
        assert fixture.guard.stats.selects == 50
        assert fixture.guard.popularity.total_requests == 50

    def test_clock_advances_by_delays_and_think_time(self):
        fixture = build_guarded_items(5, config=GuardConfig(cap=2.0))
        trace = Trace(population=5)
        trace.add_query(1, think_time=10.0)
        report = TraceReplayer(fixture.guard, fixture.table).replay(trace)
        # 10s think + 2s cold delay
        assert fixture.clock.now() == pytest.approx(12.0)
        assert report.duration == pytest.approx(12.0)

    def test_update_events_tracked(self):
        fixture = build_guarded_items(10)
        trace = make_zipf_update_trace(
            10, 30, alpha=1.0, seed=3, total_rate=1.0
        )
        report = TraceReplayer(fixture.guard, fixture.table).replay(trace)
        assert report.updates == 30
        assert fixture.guard.update_rates.total_updates == 30
        assert len(fixture.guard.last_update_times) > 0

    def test_limit_parameter(self):
        fixture = build_guarded_items(10)
        trace = make_zipf_query_trace(10, 100, alpha=1.0, seed=4)
        report = TraceReplayer(fixture.guard, fixture.table).replay(
            trace, limit=10
        )
        assert report.queries == 10

    def test_mark_applies_boundary_decay(self):
        fixture = build_guarded_items(5)
        guard = fixture.guard
        trace = Trace(population=5)
        trace.add_query(1)
        trace.add_mark("week-1")
        trace.add_query(2)
        replayer = TraceReplayer(
            guard, fixture.table, boundary_decay=100.0
        )
        report = replayer.replay(trace)
        assert report.marks == 1
        # After the boundary, item 2's single access dominates item 1's.
        key1 = (fixture.table, 1)
        key2 = (fixture.table, 2)
        assert guard.popularity.popularity(key2, "decayed") > (
            guard.popularity.popularity(key1, "decayed") * 10
        )

    def test_mark_without_decay_is_annotation(self):
        fixture = build_guarded_items(5)
        trace = Trace(population=5)
        trace.add_mark("week-1")
        report = TraceReplayer(fixture.guard, fixture.table).replay(trace)
        assert report.marks == 1

    def test_unknown_item_raises(self):
        fixture = build_guarded_items(3)
        trace = Trace(population=10)
        trace.add_query(9)  # table only has items 1..3
        with pytest.raises(ConfigError, match="not present"):
            TraceReplayer(fixture.guard, fixture.table).replay(trace)

    def test_invalid_mode(self):
        fixture = build_guarded_items(3)
        with pytest.raises(ConfigError):
            TraceReplayer(fixture.guard, fixture.table, mode="turbo")

    def test_invalid_boundary_decay(self):
        fixture = build_guarded_items(3)
        with pytest.raises(ConfigError):
            TraceReplayer(fixture.guard, fixture.table, boundary_decay=0.5)


class TestReplayEquivalence:
    """The fast path must be indistinguishable from the SQL path."""

    def make_pair(self, config=None):
        return (
            build_guarded_items(15, config=config or GuardConfig(cap=2.0)),
            build_guarded_items(15, config=config or GuardConfig(cap=2.0)),
        )

    def test_query_delays_identical(self):
        fast_fx, sql_fx = self.make_pair()
        trace = make_zipf_query_trace(15, 120, alpha=1.2, seed=5)
        fast = TraceReplayer(fast_fx.guard, "items", mode="fast").replay(trace)
        slow = TraceReplayer(sql_fx.guard, "items", mode="sql").replay(trace)
        assert fast.user_delays.values == pytest.approx(
            slow.user_delays.values
        )
        assert fast_fx.clock.total_slept == pytest.approx(
            sql_fx.clock.total_slept
        )

    def test_popularity_state_identical(self):
        fast_fx, sql_fx = self.make_pair()
        trace = make_zipf_query_trace(15, 80, alpha=1.0, seed=6)
        TraceReplayer(fast_fx.guard, "items", mode="fast").replay(trace)
        TraceReplayer(sql_fx.guard, "items", mode="sql").replay(trace)
        for rowid in range(1, 16):
            key = ("items", rowid)
            assert fast_fx.guard.popularity.popularity(key) == pytest.approx(
                sql_fx.guard.popularity.popularity(key)
            )

    def test_update_state_equivalent(self):
        fast_fx, sql_fx = self.make_pair()
        trace = make_zipf_update_trace(
            15, 60, alpha=1.0, seed=7, total_rate=0.5
        )
        TraceReplayer(fast_fx.guard, "items", mode="fast").replay(trace)
        TraceReplayer(sql_fx.guard, "items", mode="sql").replay(trace)
        assert (
            fast_fx.guard.update_rates.total_updates
            == sql_fx.guard.update_rates.total_updates
        )
        for key, when in fast_fx.guard.last_update_times.items():
            assert sql_fx.guard.last_update_times[key] == pytest.approx(when)

    def test_mixed_workload_equivalent_extraction_cost(self):
        fast_fx, sql_fx = self.make_pair()
        queries = make_zipf_query_trace(15, 60, alpha=1.0, seed=8)
        updates = make_zipf_update_trace(
            15, 30, alpha=0.5, seed=9, total_rate=1.0
        )
        mixed = interleave([queries, updates])
        TraceReplayer(fast_fx.guard, "items", mode="fast").replay(mixed)
        TraceReplayer(sql_fx.guard, "items", mode="sql").replay(mixed)
        assert fast_fx.guard.extraction_cost("items") == pytest.approx(
            sql_fx.guard.extraction_cost("items")
        )

    def test_sql_mode_actually_bumps_versions(self):
        fixture = build_guarded_items(5)
        trace = Trace(population=5)
        trace.add_update(2)
        trace.add_update(2)
        TraceReplayer(fixture.guard, "items", mode="sql").replay(trace)
        version = fixture.database.execute(
            "SELECT version FROM items WHERE id = 2"
        ).scalar()
        assert version == 2
