"""Tests for the server's ``health`` and ``forensics`` ops."""

import pytest

from repro.core import AccountPolicy, GuardConfig
from repro.server import DelayClient, DelayServer, ServerError
from repro.service import DataProviderService

ROWS = 50


def build_service(audit_path=None, **config):
    defaults = dict(policy="fixed", fixed_delay=0.0)
    defaults.update(config)
    service = DataProviderService(
        guard_config=GuardConfig(**defaults),
        account_policy=AccountPolicy(),
        audit_path=audit_path,
    )
    service.register("loader")
    service.guard.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)",
        identity="loader",
    )
    service.database.insert_rows(
        "t", [(i, f"v{i}") for i in range(1, ROWS + 1)]
    )
    return service


@pytest.fixture
def server():
    instance = DelayServer(build_service())
    instance.start()
    yield instance
    instance.stop()


class TestHealthOp:
    def test_health_reports_slo_and_server_state(self, server):
        with DelayClient(*server.address) as client:
            client.register("alice")
            for i in range(5):
                client.query(
                    f"SELECT * FROM t WHERE id = {i + 1}",
                    identity="alice",
                )
            with pytest.raises(ServerError):
                client.query("SELECT * FROM t", identity="nobody")
            health = client.health()
        assert health["status"] == "serving"
        assert health["uptime_seconds"] > 0
        assert set(health["build"]) == {"version", "python"}
        window = health["slo"]["windows"]["300"]
        assert window["ok"] == 5
        assert window["denied"] == 1
        assert window["availability"] == 1.0
        assert window["mean_latency_seconds"] < 1.0
        state = health["server"]
        assert state["queue_capacity"] == server.max_queue
        assert state["workers"] == server.max_workers
        assert state["handler_errors_total"] == 0
        assert health["durability"]["journal_attached"] is False
        assert health["forensics"] is None
        # Shared breakers are process-wide; just check the shape.
        assert isinstance(health["breakers"], dict)
        assert not server.handler_errors

    def test_health_without_forensics_vs_with(self):
        service = build_service(forensics=True, forensics_min_requests=5)
        server = DelayServer(service)
        server.start()
        try:
            with DelayClient(*server.address) as client:
                client.register("bob")
                client.query(
                    "SELECT * FROM t WHERE id = 1", identity="bob"
                )
                health = client.health()
            forensics = health["forensics"]
            assert forensics["tracked_identities"] == 1
            assert forensics["flagged_identities"] == 0
        finally:
            server.stop()

    def test_staleness_under_live_updates(self):
        """S_max gauges move as updates arrive on a delayed table."""
        service = build_service(fixed_delay=0.05, record_updates=True)
        server = DelayServer(service)
        server.start()
        try:
            with DelayClient(*server.address) as client:
                client.register("writer")
                for i in range(10):
                    client.query(
                        f"UPDATE t SET v = 'x{i}' WHERE id = {i + 1}",
                        identity="writer",
                    )
                health = client.health()
                stale = health["staleness"]["t"]
                # T = N * d for the fixed policy; updates give a rate.
                assert stale["extraction_seconds"] == pytest.approx(
                    ROWS * 0.05
                )
                assert stale["update_rate_per_second"] > 0
                assert 0 < stale["smax_fraction"] <= 1
                assert stale["updated_keys"] == 10
                # The health refresh also pumped the gauges.
                text = client.metrics("prometheus")["text"]
            assert 'staleness_smax_fraction{table="t"}' in text
            assert 'staleness_extraction_seconds{table="t"}' in text
        finally:
            server.stop()

    def test_shed_feeds_slo_and_audit(self, tmp_path):
        audit_service = build_service(
            audit_path=str(tmp_path / "audit.jsonl")
        )
        audit_server = DelayServer(audit_service)
        audit_server._note_shed("unit_test")
        assert audit_server.shed_counts == {"unit_test": 1}
        assert audit_server.slo.summary(60)["shed"] == 1
        audit_service.obs.audit.flush()
        assert (
            audit_service.obs.audit.emitted_by_kind["query_shed"] == 1
        )


class TestForensicsOp:
    def test_not_enabled_is_a_structured_error(self, server):
        with DelayClient(*server.address) as client:
            with pytest.raises(ServerError) as excinfo:
                client.forensics()
        assert excinfo.value.reason == "not_enabled"

    def test_invalid_limit_rejected(self):
        service = build_service(forensics=True)
        server = DelayServer(service)
        server.start()
        try:
            with DelayClient(*server.address) as client:
                with pytest.raises(ServerError, match="limit"):
                    client.forensics(limit=0)
        finally:
            server.stop()

    def test_robot_ranked_and_flagged(self):
        service = build_service(
            forensics=True,
            forensics_min_requests=10,
            forensics_window=20,
        )
        server = DelayServer(service)
        server.start()
        try:
            with DelayClient(*server.address) as client:
                client.register("robot")
                client.register("browser")
                for i in range(ROWS):
                    client.query(
                        f"SELECT * FROM t WHERE id = {i + 1}",
                        identity="robot",
                    )
                for _ in range(ROWS):
                    client.query(
                        "SELECT * FROM t WHERE id = 1",
                        identity="browser",
                    )
                payload = client.forensics(limit=2)
            assert payload["flagged_identities"] == 1
            top = payload["identities"]
            assert top[0]["identity"] == "robot"
            assert top[0]["flagged"] is True
            assert top[0]["coverage"] == pytest.approx(1.0)
            assert top[1]["identity"] == "browser"
            assert top[1]["flagged"] is False
        finally:
            server.stop()


class TestBuildInfoMetrics:
    def test_uptime_and_build_info_in_both_formats(self, server):
        with DelayClient(*server.address) as client:
            snapshot = client.metrics("json")["metrics"]
            text = client.metrics("prometheus")["text"]
        assert snapshot["server_uptime_seconds"]["value"] > 0
        (series,) = snapshot["repro_build_info"]["series"]
        assert set(series["labels"]) == {"version", "python"}
        assert series["value"] == 1
        assert "server_uptime_seconds" in text
        assert "repro_build_info{" in text


class TestAuditTraceCorrelation:
    def test_audit_events_join_traces_by_trace_id(self, tmp_path):
        service = build_service(
            audit_path=str(tmp_path / "audit.jsonl"), fixed_delay=0.01
        )
        server = DelayServer(service)
        server.start()
        try:
            with DelayClient(*server.address) as client:
                client.register("carol")
                client.query(
                    "SELECT * FROM t WHERE id = 7", identity="carol"
                )
                traces = client.traces(limit=5)["traces"]
        finally:
            server.stop()
        audit = service.obs.audit
        audit.flush()
        events = list(audit.replay())
        served = [e for e in events if e["event"] == "query_served"]
        priced = [e for e in events if e["event"] == "delay_priced"]
        assert served and priced
        trace_ids = {trace["trace_id"] for trace in traces}
        assert served[-1]["trace_id"] in trace_ids
        assert priced[-1]["trace_id"] == served[-1]["trace_id"]
        assert served[-1]["identity"] == "carol"
        assert priced[-1]["delay"] == pytest.approx(0.01)
