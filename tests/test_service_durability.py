"""Service-level durability: journalled runs recover to identical state.

The acceptance bar for the durability subsystem: kill the service at an
arbitrary point in a write workload, recover, and the database *and*
the delay-relevant tracker state must match a reference that never
crashed — rowids preserved, eq. 1 delays unchanged.
"""

import json

import pytest

from repro.core import AccountPolicy
from repro.core.config import GuardConfig
from repro.engine.journal import MAGIC
from repro.engine.persistence import PersistenceError
from repro.service import DataProviderService


def make_config():
    return GuardConfig(policy="both", update_time_constant=50.0, cap=10.0)


def make_policy():
    return AccountPolicy(registration_fee=2.5, daily_query_quota=1000)


def build_service(tmp_path, journal=True):
    return DataProviderService(
        guard_config=make_config(),
        account_policy=make_policy(),
        snapshot_path=tmp_path / "snapshot.json",
        journal_path=(tmp_path / "journal.bin") if journal else None,
    )


def run_workload(service):
    """A mixed workload: DDL, inserts, reads, updates, a transaction."""
    service.database.execute(
        "CREATE TABLE items (id INTEGER PRIMARY KEY, v TEXT)"
    )
    service.database.execute(
        "INSERT INTO items VALUES (1,'a'), (2,'b'), (3,'c'), (4,'d')"
    )
    service.register("alice", subnet="10.0.0.0/8")
    service.register("bob", subnet="10.1.0.0/16")
    service.clock.advance(2.0)
    for _ in range(5):
        service.query("alice", "SELECT * FROM items WHERE id = 1")
    service.query("bob", "UPDATE items SET v = 'B' WHERE id = 2")
    service.clock.advance(3.0)
    service.query("bob", "UPDATE items SET v = 'BB' WHERE id = 2")
    service.query("alice", "DELETE FROM items WHERE id = 4")
    service.query(
        "alice", "INSERT INTO items VALUES (5, 'e')"
    )


def assert_equivalent(recovered, reference):
    """Recovered service state matches the reference in every delay input."""
    assert sorted(
        recovered.database.query("SELECT id, v FROM items")
    ) == sorted(reference.database.query("SELECT id, v FROM items"))
    assert (
        recovered.database.table("items").rowids()
        == reference.database.table("items").rowids()
    )
    assert dict(recovered.guard.last_update_times) == dict(
        reference.guard.last_update_times
    )
    for key in ("items", 1), ("items", 2), ("items", 5):
        assert recovered.guard.update_rates.rate(key) == pytest.approx(
            reference.guard.update_rates.rate(key)
        )


class TestRecoverFromJournalOnly:
    def test_database_and_update_trackers_match(self, tmp_path):
        service = build_service(tmp_path)
        run_workload(service)
        recovered = DataProviderService.recover(
            snapshot_path=tmp_path / "snapshot.json",
            journal_path=tmp_path / "journal.bin",
            guard_config=make_config(),
            account_policy=make_policy(),
        )
        assert_equivalent(recovered, service)
        assert not recovered.last_recovery.snapshot_loaded
        assert recovered.last_recovery.replayed_statements > 0

    def test_clock_restored_past_last_journal_ts(self, tmp_path):
        service = build_service(tmp_path)
        run_workload(service)
        recovered = DataProviderService.recover(
            journal_path=tmp_path / "journal.bin",
            guard_config=make_config(),
        )
        last_ts = max(
            entry.ts
            for entry in recovered.last_recovery.entries
            if entry.ts is not None
        )
        assert recovered.clock.now() >= last_ts

    def test_direct_engine_writes_do_not_feed_trackers(self, tmp_path):
        """Only guard-tracked statements rebuild update-rate state."""
        service = build_service(tmp_path)
        run_workload(service)
        # The CREATE/INSERT above went straight to the engine, not the
        # guard; a live run never recorded them as updates, so recovery
        # must not either.
        recovered = DataProviderService.recover(
            journal_path=tmp_path / "journal.bin",
            guard_config=make_config(),
        )
        assert ("items", 3) not in recovered.guard.last_update_times
        assert recovered.guard.update_rates.rate(("items", 3)) == 0.0


class TestCheckpoint:
    def test_checkpoint_truncates_journal(self, tmp_path):
        service = build_service(tmp_path)
        run_workload(service)
        assert service.journal.size_bytes > len(MAGIC)
        service.checkpoint()
        assert service.journal.size_bytes == len(MAGIC)
        assert service.checkpoints_completed == 1

    def test_recovery_after_checkpoint_matches(self, tmp_path):
        service = build_service(tmp_path)
        run_workload(service)
        service.checkpoint()
        # More traffic after the checkpoint: replay picks up the tail.
        service.query("bob", "UPDATE items SET v = 'post' WHERE id = 5")
        recovered = DataProviderService.recover(
            snapshot_path=tmp_path / "snapshot.json",
            journal_path=tmp_path / "journal.bin",
            guard_config=make_config(),
            account_policy=make_policy(),
        )
        assert recovered.last_recovery.snapshot_loaded
        assert recovered.last_recovery.replayed_statements == 1
        assert_equivalent(recovered, service)
        # Popularity (SELECT-driven, snapshot-only) survives via the
        # checkpoint, so eq. 1 delays match on the read side too.
        assert recovered.guard.delay_for("items", 1) == pytest.approx(
            service.guard.delay_for("items", 1)
        )

    def test_accounts_survive_checkpoint(self, tmp_path):
        service = build_service(tmp_path)
        run_workload(service)
        service.checkpoint()
        recovered = DataProviderService.recover(
            snapshot_path=tmp_path / "snapshot.json",
            journal_path=tmp_path / "journal.bin",
            guard_config=make_config(),
            account_policy=make_policy(),
        )
        live = service.accounts
        rec = recovered.accounts
        assert set(rec.accounts) == {"alice", "bob"}
        assert rec.fees_collected == live.fees_collected
        assert rec.account("alice").subnet == "10.0.0.0/8"
        assert (
            rec.account("alice").queries_issued
            == live.account("alice").queries_issued
        )
        assert rec._quota_windows == live._quota_windows

    def test_no_path_configured_raises(self, tmp_path):
        service = DataProviderService(
            guard_config=make_config(),
            journal_path=tmp_path / "journal.bin",
        )
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError, match="checkpoint path"):
            service.checkpoint()

    def test_checkpoint_crash_window_idempotent(self, tmp_path):
        """Snapshot replaced but journal not yet truncated: no double-apply."""
        service = build_service(tmp_path)
        run_workload(service)
        payload = service._dump_service()
        from repro.engine.persistence import atomic_write_json

        atomic_write_json(tmp_path / "snapshot.json", payload)
        # "Crash" before truncate: every journal record is <= journal_seq.
        recovered = DataProviderService.recover(
            snapshot_path=tmp_path / "snapshot.json",
            journal_path=tmp_path / "journal.bin",
            guard_config=make_config(),
            account_policy=make_policy(),
        )
        assert recovered.last_recovery.replayed_statements == 0
        assert recovered.last_recovery.skipped_records > 0
        assert_equivalent(recovered, service)


class TestTornJournal:
    def test_torn_tail_truncated_not_fatal(self, tmp_path):
        service = build_service(tmp_path)
        run_workload(service)
        journal_path = tmp_path / "journal.bin"
        with open(journal_path, "ab") as handle:
            handle.write(b"\x00\x00\x01\x99half-a-record")
        recovered = DataProviderService.recover(
            journal_path=journal_path,
            guard_config=make_config(),
            account_policy=make_policy(),
        )
        assert recovered.last_recovery.torn_bytes_truncated > 0
        assert sorted(
            recovered.database.query("SELECT id, v FROM items")
        ) == sorted(service.database.query("SELECT id, v FROM items"))
        # The re-attached journal accepts new commits after truncation.
        recovered.database.execute("INSERT INTO items VALUES (9, 'new')")
        again = DataProviderService.recover(
            journal_path=journal_path, guard_config=make_config()
        )
        assert again.database.query(
            "SELECT v FROM items WHERE id = 9"
        ) == [("new",)]


class TestSaveLoadFormats:
    def test_save_is_v2_and_atomic(self, tmp_path):
        service = build_service(tmp_path, journal=False)
        run_workload(service)
        path = tmp_path / "export.json"
        service.save(path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-service-v2"
        assert payload["accounts"] is not None
        assert "journal_seq" in payload

    def test_v2_round_trip(self, tmp_path):
        service = build_service(tmp_path, journal=False)
        run_workload(service)
        path = tmp_path / "export.json"
        service.save(path)
        loaded = DataProviderService.load(
            path, guard_config=make_config(), account_policy=make_policy()
        )
        assert_equivalent(loaded, service)
        assert loaded.accounts.fees_collected == (
            service.accounts.fees_collected
        )

    def test_v1_save_still_loads(self, tmp_path):
        """Pre-durability save files (v1) stay readable."""
        service = build_service(tmp_path, journal=False)
        run_workload(service)
        payload = service._dump_service()
        guard_v1 = dict(payload["guard"])
        guard_v1["format"] = "repro-guard-v1"
        guard_v1.pop("update_rates")
        v1 = {
            "format": "repro-service-v1",
            "database": payload["database"],
            "guard": guard_v1,
        }
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(v1))
        loaded = DataProviderService.load(path, guard_config=make_config())
        assert sorted(
            loaded.database.query("SELECT id, v FROM items")
        ) == sorted(service.database.query("SELECT id, v FROM items"))
        # v1 predates update-rate persistence: tracker starts empty.
        assert loaded.guard.update_rates.tracked_keys() == 0

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"format": "repro-service-v99"}))
        with pytest.raises(PersistenceError, match="unsupported"):
            DataProviderService.load(path)


class TestDurabilityMetrics:
    def test_journal_metrics_exposed(self, tmp_path):
        service = build_service(tmp_path)
        run_workload(service)
        service.checkpoint()
        text = service.obs.registry.render_prometheus()
        assert "durability_journal_records_total" in text
        assert "durability_journal_fsyncs_total" in text
        assert "durability_checkpoints_total 1" in text

    def test_recovery_metrics_exposed(self, tmp_path):
        service = build_service(tmp_path)
        run_workload(service)
        recovered = DataProviderService.recover(
            journal_path=tmp_path / "journal.bin",
            guard_config=make_config(),
        )
        text = recovered.obs.registry.render_prometheus()
        assert "durability_recovery_replayed_statements" in text
        assert "durability_recovery_seconds" in text

    def test_double_journal_attach_rejected(self, tmp_path):
        service = build_service(tmp_path)
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError, match="already attached"):
            service.enable_journal(tmp_path / "other.bin")


class TestMutationEpochDurability:
    """The result cache's epoch must survive crashes without rewinding.

    If recovery restarted the epoch at zero, a result cached against a
    pre-crash epoch could later be keyed current and serve pre-crash
    bytes for post-crash data.
    """

    def test_epoch_tracks_journal_during_run(self, tmp_path):
        service = build_service(tmp_path)
        run_workload(service)
        assert service.database.mutation_epoch == service.journal.last_seq

    def test_checkpoint_records_epoch(self, tmp_path):
        service = build_service(tmp_path)
        run_workload(service)
        service.checkpoint()
        payload = json.loads(
            (tmp_path / "snapshot.json").read_text()
        )
        assert payload["mutation_epoch"] == service.database.mutation_epoch

    def test_recovered_epoch_not_behind_crash_point(self, tmp_path):
        service = build_service(tmp_path)
        run_workload(service)
        service.checkpoint()
        service.query("bob", "UPDATE items SET v = 'post' WHERE id = 2")
        pre_crash = service.database.mutation_epoch
        recovered = DataProviderService.recover(
            snapshot_path=tmp_path / "snapshot.json",
            journal_path=tmp_path / "journal.bin",
            guard_config=make_config(),
            account_policy=make_policy(),
        )
        assert recovered.database.mutation_epoch >= pre_crash
        assert (
            recovered.database.mutation_epoch
            == recovered.last_recovery.last_seq
        )

    def test_snapshot_only_recovery_restores_epoch(self, tmp_path):
        service = build_service(tmp_path)
        run_workload(service)
        service.checkpoint()
        epoch = service.database.mutation_epoch
        recovered = DataProviderService.recover(
            snapshot_path=tmp_path / "snapshot.json",
            guard_config=make_config(),
            account_policy=make_policy(),
        )
        assert recovered.database.mutation_epoch >= epoch
