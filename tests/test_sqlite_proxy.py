"""Tests for the SQLite delay proxy adapter."""

import sqlite3

import pytest

from repro.adapters import SQLiteDelayProxy
from repro.core import (
    AccessDenied,
    AccountManager,
    AccountPolicy,
    GuardConfig,
    VirtualClock,
)
from repro.core.errors import ConfigError


@pytest.fixture
def conn():
    connection = sqlite3.connect(":memory:")
    connection.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT, n REAL)"
    )
    connection.executemany(
        "INSERT INTO t VALUES (?, ?, ?)",
        [(i, f"v{i}", float(i)) for i in range(1, 51)],
    )
    connection.commit()
    yield connection
    connection.close()


def make_proxy(conn, **config_kwargs):
    clock = VirtualClock()
    config = GuardConfig(**{"cap": 5.0, **config_kwargs})
    return SQLiteDelayProxy(conn, config=config, clock=clock), clock


class TestSelect:
    def test_cold_select_charges_cap(self, conn):
        proxy, clock = make_proxy(conn)
        result = proxy.execute("SELECT * FROM t WHERE id = 1")
        assert result.rows == [(1, "v1", 1.0)]
        assert result.columns == ["id", "v", "n"]
        assert result.delay == 5.0
        assert clock.total_slept == 5.0

    def test_popularity_lowers_delay(self, conn):
        proxy, _ = make_proxy(conn)
        for _ in range(200):
            proxy.execute("SELECT * FROM t WHERE id = 1")
        assert proxy.execute("SELECT * FROM t WHERE id = 1").delay < 0.5

    def test_multi_row_select_charges_each(self, conn):
        proxy, _ = make_proxy(conn)
        result = proxy.execute("SELECT * FROM t WHERE id <= 4")
        assert result.delay == pytest.approx(20.0)
        assert len(result.rowids) == 4

    def test_limit_respected_in_accounting(self, conn):
        proxy, _ = make_proxy(conn)
        result = proxy.execute("SELECT * FROM t ORDER BY id LIMIT 3")
        assert len(result.rowids) == 3
        assert result.delay == pytest.approx(15.0)

    def test_aggregate_charges_matching_rows(self, conn):
        proxy, _ = make_proxy(conn)
        result = proxy.execute("SELECT COUNT(*) FROM t WHERE id <= 10")
        assert result.rows == [(10,)]
        assert result.delay == pytest.approx(50.0)

    def test_empty_result_free(self, conn):
        proxy, _ = make_proxy(conn)
        assert proxy.execute("SELECT * FROM t WHERE id = 999").delay == 0.0

    def test_joins_rejected(self, conn):
        proxy, _ = make_proxy(conn)
        with pytest.raises(ConfigError, match="joins"):
            proxy.execute("SELECT * FROM t a JOIN t b ON a.id = b.id")

    def test_group_by_rejected(self, conn):
        proxy, _ = make_proxy(conn)
        with pytest.raises(ConfigError, match="GROUP BY"):
            proxy.execute("SELECT v, COUNT(*) FROM t GROUP BY v")


class TestDml:
    def test_update_tracked(self, conn):
        proxy, clock = make_proxy(conn)
        clock.advance(3.0)
        result = proxy.execute("UPDATE t SET v = 'x' WHERE id <= 2")
        assert result.rowcount == 2
        assert proxy.update_rates.total_updates == 2
        assert proxy.last_update_times[("t", 1)] == pytest.approx(3.0)
        # Persisted in sqlite itself.
        assert conn.execute(
            "SELECT v FROM t WHERE id = 1"
        ).fetchone() == ("x",)

    def test_delete_tracked(self, conn):
        proxy, _ = make_proxy(conn)
        result = proxy.execute("DELETE FROM t WHERE id > 45")
        assert result.rowcount == 5
        assert conn.execute("SELECT COUNT(*) FROM t").fetchone() == (45,)

    def test_insert_tracked(self, conn):
        proxy, _ = make_proxy(conn)
        result = proxy.execute("INSERT INTO t VALUES (100, 'new', 0.0)")
        assert result.statement_kind == "insert"
        assert proxy.update_rates.total_updates == 1

    def test_population_reflects_sqlite(self, conn):
        proxy, _ = make_proxy(conn)
        assert proxy.population() == 50
        proxy.execute("DELETE FROM t WHERE id > 25")
        assert proxy.population() == 25


class TestUpdatePolicy:
    def test_update_rate_policy_over_sqlite(self, conn):
        proxy, clock = make_proxy(conn, policy="update", update_c=1.0)
        # Update row 1 frequently: its retrieval becomes cheap.
        for _ in range(100):
            proxy.execute("UPDATE t SET n = n + 1 WHERE id = 1")
            clock.advance(1.0)
        hot = proxy.execute("SELECT * FROM t WHERE id = 1").delay
        cold = proxy.execute("SELECT * FROM t WHERE id = 2").delay
        assert hot < cold

    def test_extraction_cost(self, conn):
        proxy, _ = make_proxy(conn)
        assert proxy.extraction_cost("t") == pytest.approx(250.0)
        for _ in range(100):
            proxy.execute("SELECT * FROM t WHERE id = 1")
        assert proxy.extraction_cost("t") < 250.0


class TestAccounts:
    def test_quota_through_proxy(self, conn):
        clock = VirtualClock()
        accounts = AccountManager(
            policy=AccountPolicy(daily_query_quota=2), clock=clock
        )
        proxy = SQLiteDelayProxy(
            conn, config=GuardConfig(cap=1.0), clock=clock,
            accounts=accounts,
        )
        accounts.register("u")
        proxy.execute("SELECT * FROM t WHERE id = 1", identity="u")
        proxy.execute("SELECT * FROM t WHERE id = 2", identity="u")
        with pytest.raises(AccessDenied):
            proxy.execute("SELECT * FROM t WHERE id = 3", identity="u")
        assert proxy.stats.denied == 1

    def test_identity_required(self, conn):
        clock = VirtualClock()
        proxy = SQLiteDelayProxy(
            conn, clock=clock,
            accounts=AccountManager(clock=clock),
        )
        with pytest.raises(ConfigError, match="identity"):
            proxy.execute("SELECT * FROM t WHERE id = 1")


class TestPersistence:
    def test_guard_over_file_database(self, tmp_path):
        path = tmp_path / "data.db"
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        connection.execute("INSERT INTO t VALUES (1, 'persisted')")
        connection.commit()
        proxy, _ = make_proxy(connection)
        result = proxy.execute("SELECT * FROM t WHERE id = 1")
        assert result.rows == [(1, "persisted")]
        connection.close()

        reopened = sqlite3.connect(path)
        proxy2, _ = make_proxy(reopened)
        assert proxy2.execute("SELECT * FROM t WHERE id = 1").rows == [
            (1, "persisted")
        ]
        reopened.close()
