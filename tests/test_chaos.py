"""Chaos tests: overload shedding, deadlines, breaker, injected faults.

These tests drive the server into the failure modes the overload
design exists for — full queues, exhausted connections, oversubscribed
delay parking, dying sockets, failing disks — and assert two things
each time: the degradation is *bounded and fast* (sheds answer in
milliseconds, not timeouts), and the server *recovers completely* once
the pressure or the fault is gone.
"""

import json
import socket
import threading
import time

import pytest

from repro.core import GuardConfig, RealClock
from repro.core.resilience import BreakerOpen, CircuitBreaker
from repro.server import (
    ConnectionClosed,
    DelayClient,
    DelayServer,
    ServerError,
)
from repro.service import DataProviderService
from repro.testing import injected_faults

#: Sheds must be answered faster than this (the acceptance bar is
#: 100 ms; CI boxes get a little slack for scheduling noise).
SHED_LATENCY_BUDGET = 0.1


def make_service(fixed_delay=None, clock=None, **service_kwargs):
    provider = DataProviderService(
        guard_config=(
            GuardConfig(policy="fixed", fixed_delay=fixed_delay,
                        cap=3600.0)
            if fixed_delay is not None
            else GuardConfig(cap=0.001)
        ),
        clock=clock,
        **service_kwargs,
    )
    provider.database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
    )
    provider.database.insert_rows(
        "t", [(i, f"v{i}") for i in range(1, 21)]
    )
    return provider


@pytest.fixture
def service():
    return make_service()


def raw_request(address, payload, timeout=2.0):
    """One request over a raw socket; returns (response, seconds)."""
    with socket.create_connection(address, timeout=timeout) as sock:
        with sock.makefile("rwb") as stream:
            start = time.perf_counter()
            stream.write((json.dumps(payload) + "\n").encode())
            stream.flush()
            line = stream.readline()
            elapsed = time.perf_counter() - start
    if not line:
        raise ConnectionClosed()
    return json.loads(line), elapsed


class TestConnectionLimit:
    def test_over_limit_connect_is_shed_fast(self, service):
        with DelayServer(service, max_connections=2) as server:
            held = [DelayClient(*server.address) for _ in range(2)]
            try:
                for client in held:
                    client.ping()
                with socket.create_connection(
                    server.address, timeout=2.0
                ) as sock:
                    start = time.perf_counter()
                    line = sock.makefile("rb").readline()
                    elapsed = time.perf_counter() - start
                response = json.loads(line)
                assert response["ok"] is False
                assert response["reason"] == "overloaded"
                assert response["retry_after"] > 0
                assert elapsed < SHED_LATENCY_BUDGET
                # The held connections were untouched.
                for client in held:
                    assert client.ping()
            finally:
                for client in held:
                    client.close()
            assert server.shed_counts.get("connection_limit", 0) >= 1

    def test_capacity_frees_when_a_connection_closes(self, service):
        with DelayServer(service, max_connections=1) as server:
            first = DelayClient(*server.address)
            first.ping()
            first.close()
            # Give the I/O loop a beat to reap the closed socket.
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                try:
                    with DelayClient(*server.address) as second:
                        assert second.ping()
                    break
                except ServerError:
                    time.sleep(0.02)
            else:
                pytest.fail("capacity never recovered after close")


class TestAdmissionQueue:
    def test_queue_full_sheds_fast_and_admitted_work_completes(
        self, service
    ):
        with injected_faults() as faults:
            # One worker, wedged: the queue is the only buffer.
            faults.stall("server.handler", seconds=0.6, times=1)
            with DelayServer(
                service, max_workers=1, max_queue=1, max_connections=16
            ) as server:
                blocker = DelayClient(*server.address)
                queued = DelayClient(*server.address)
                shed = DelayClient(*server.address)
                results = {}

                def run(name, client):
                    try:
                        start = time.perf_counter()
                        response = client.query("SELECT * FROM t WHERE id = 1")
                        results[name] = (
                            "ok", response, time.perf_counter() - start
                        )
                    except ServerError as error:
                        results[name] = (
                            "denied", error, time.perf_counter() - start
                        )

                threads = []
                for name, client in (
                    ("blocker", blocker),
                    ("queued", queued),
                    ("shed", shed),
                ):
                    thread = threading.Thread(target=run, args=(name, client))
                    thread.start()
                    threads.append(thread)
                    # Deterministic arrival order: blocker grabs the
                    # worker, queued fills the queue, shed overflows it.
                    time.sleep(0.15)
                for thread in threads:
                    thread.join(timeout=5)
                for client in (blocker, queued, shed):
                    client.close()

        assert results["blocker"][0] == "ok"
        assert results["queued"][0] == "ok"
        status, error, elapsed = results["shed"]
        assert status == "denied"
        assert error.reason == "overloaded"
        assert error.retry_after > 0
        assert elapsed < SHED_LATENCY_BUDGET
        assert server.shed_counts.get("queue_full", 0) >= 1
        assert service.guard.stats.shed >= 1

    def test_higher_priority_displaces_queued_lower_priority(
        self, service
    ):
        with injected_faults() as faults:
            faults.stall("server.handler", seconds=0.6, times=1)
            with DelayServer(
                service, max_workers=1, max_queue=1, max_connections=16
            ) as server:
                blocker = DelayClient(*server.address)
                low = DelayClient(*server.address)
                high = DelayClient(*server.address)
                results = {}

                def run(name, client, priority):
                    try:
                        response = client.query(
                            "SELECT * FROM t WHERE id = 2",
                            priority=priority,
                        )
                        results[name] = ("ok", response)
                    except ServerError as error:
                        results[name] = ("denied", error)

                threads = []
                for name, client, priority in (
                    ("blocker", blocker, 5),
                    ("low", low, 1),
                    ("high", high, 8),
                ):
                    thread = threading.Thread(
                        target=run, args=(name, client, priority)
                    )
                    thread.start()
                    threads.append(thread)
                    time.sleep(0.15)
                for thread in threads:
                    thread.join(timeout=5)
                for client in (blocker, low, high):
                    client.close()

        # The low-priority request was displaced by the late,
        # high-priority one — not the other way round.
        assert results["high"][0] == "ok"
        status, error = results["low"]
        assert status == "denied"
        assert error.reason == "overloaded"
        assert "displaced" in str(error)


class TestDeadlines:
    def test_delay_beyond_deadline_rejected_up_front(self):
        # A 30-second mandated delay against a 200 ms budget: the
        # server must answer *immediately*, reporting the full delay —
        # not sit in the sleep it knows the client will not wait out.
        provider = make_service(fixed_delay=30.0, clock=RealClock())
        with DelayServer(provider) as server:
            with DelayClient(*server.address) as client:
                start = time.perf_counter()
                with pytest.raises(ServerError) as excinfo:
                    client.query(
                        "SELECT * FROM t WHERE id = 1", deadline_ms=200
                    )
                elapsed = time.perf_counter() - start
        assert excinfo.value.reason == "deadline_exceeded"
        assert excinfo.value.retry_after == pytest.approx(30.0)
        assert elapsed < 1.0
        assert provider.guard.stats.deadline_aborts >= 1

    def test_delay_within_deadline_succeeds(self):
        provider = make_service(fixed_delay=0.01, clock=RealClock())
        with DelayServer(provider) as server:
            with DelayClient(*server.address) as client:
                response = client.query(
                    "SELECT * FROM t WHERE id = 1", deadline_ms=60_000
                )
        assert response["ok"] is True
        assert response["delay"] == pytest.approx(0.01)

    def test_budget_spent_in_queue_aborts_before_work(self, service):
        with injected_faults() as faults:
            faults.stall("server.handler", seconds=0.3, times=1)
            with DelayServer(service, max_workers=1) as server:
                with DelayClient(*server.address) as client:
                    with pytest.raises(ServerError) as excinfo:
                        client.query(
                            "SELECT * FROM t WHERE id = 1",
                            deadline_ms=50,
                        )
        assert excinfo.value.reason == "deadline_exceeded"

    def test_client_never_retries_deadline_exceeded(self):
        provider = make_service(fixed_delay=30.0, clock=RealClock())
        with DelayServer(provider) as server:
            with DelayClient(*server.address) as client:
                start = time.perf_counter()
                with pytest.raises(ServerError) as excinfo:
                    client.query(
                        "SELECT * FROM t WHERE id = 1",
                        deadline_ms=200,
                        retries=5,
                    )
                elapsed = time.perf_counter() - start
        assert excinfo.value.reason == "deadline_exceeded"
        assert client.retries_performed == 0
        assert elapsed < 1.0


class TestValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("deadline_ms", "soon"),
            ("deadline_ms", True),
            ("deadline_ms", 0),
            ("deadline_ms", -5),
            ("deadline_ms", float("nan")),
            ("deadline_ms", 1e12),
            ("priority", "high"),
            ("priority", True),
            ("priority", 2.5),
            ("priority", -1),
            ("priority", 10),
        ],
    )
    def test_invalid_fields_are_bad_requests(self, service, field, value):
        with DelayServer(service) as server:
            payload = {"op": "query", "sql": "SELECT * FROM t", field: value}
            response, _ = raw_request(server.address, payload)
        assert response["ok"] is False
        assert response["reason"] == "bad_request"
        assert field in response["error"]

    def test_non_string_identity_rejected(self, service):
        with DelayServer(service) as server:
            response, _ = raw_request(
                server.address,
                {"op": "query", "sql": "SELECT 1", "identity": 42},
            )
        assert response["reason"] == "bad_request"

    def test_valid_bounds_accepted(self, service):
        with DelayServer(service) as server:
            with DelayClient(*server.address) as client:
                response = client.query(
                    "SELECT * FROM t WHERE id = 1",
                    deadline_ms=60_000,
                    priority=9,
                )
        assert response["ok"] is True


class TestDelayParkingShed:
    def test_largest_delay_shed_first(self):
        # A 0.2 s/tuple price: the point query owes 0.2 s, the range
        # scan owes 1 s. With room for one parked delay, the range scan
        # must be the one sacrificed — and its retry_after must be the
        # full delay it owed.
        provider = make_service(fixed_delay=0.2, clock=RealClock())
        with DelayServer(provider, max_parked=1) as server:
            cheap = DelayClient(*server.address)
            expensive = DelayClient(*server.address)
            results = {}

            def run(name, client, sql):
                start = time.perf_counter()
                try:
                    response = client.query(sql)
                    results[name] = (
                        "ok", response, time.perf_counter() - start
                    )
                except ServerError as error:
                    results[name] = (
                        "denied", error, time.perf_counter() - start
                    )

            cheap_thread = threading.Thread(
                target=run,
                args=("cheap", cheap, "SELECT * FROM t WHERE id = 1"),
            )
            cheap_thread.start()
            time.sleep(0.05)  # the cheap delay parks first
            expensive_thread = threading.Thread(
                target=run,
                args=(
                    "expensive",
                    expensive,
                    "SELECT * FROM t WHERE id <= 5",
                ),
            )
            expensive_thread.start()
            cheap_thread.join(timeout=5)
            expensive_thread.join(timeout=5)
            cheap.close()
            expensive.close()

        status, response, elapsed = results["cheap"]
        assert status == "ok"
        assert response["rows"] == [[1, "v1"]]
        assert elapsed >= 0.2  # it genuinely served its delay
        status, error, elapsed = results["expensive"]
        assert status == "denied"
        assert error.reason == "overloaded"
        assert error.retry_after == pytest.approx(1.0)
        # Shed the moment it tried to park — it never slept its 1 s.
        assert elapsed < 0.5
        assert server.shed_counts.get("delay_parking", 0) == 1

    def test_parked_delays_cancelled_on_stop(self):
        # stop() must not wait out a parked multi-second delay beyond
        # drain_timeout; the victim hears shutting_down + what it owed.
        provider = make_service(fixed_delay=30.0, clock=RealClock())
        server = DelayServer(provider, drain_timeout=0.2)
        server.start()
        client = DelayClient(*server.address)
        result = {}

        def run():
            try:
                result["response"] = client.query(
                    "SELECT * FROM t WHERE id = 1"
                )
            except ServerError as error:
                result["error"] = error

        thread = threading.Thread(target=run)
        thread.start()
        deadline = time.monotonic() + 2.0
        while server.parked_delays == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.parked_delays == 1
        start = time.perf_counter()
        server.stop()
        stop_elapsed = time.perf_counter() - start
        thread.join(timeout=5)
        client.close()
        assert stop_elapsed < 5.0  # not the 30 s the delay owed
        error = result.get("error")
        assert error is not None, f"expected a denial, got {result}"
        assert error.reason == "shutting_down"
        assert error.retry_after > 25.0


class TestFaultInjection:
    def test_read_fault_kills_one_connection_not_the_server(
        self, service
    ):
        with DelayServer(service) as server:
            with injected_faults() as faults:
                faults.fail(
                    "server.read", error=OSError("injected"), times=1
                )
                victim = DelayClient(*server.address)
                with pytest.raises(ConnectionClosed):
                    victim.ping()
            with DelayClient(*server.address) as survivor:
                assert survivor.ping()
        assert len(server.handler_errors) == 0

    def test_accept_fault_drops_connection_then_recovers(self, service):
        with DelayServer(service) as server:
            with injected_faults() as faults:
                faults.fail(
                    "server.accept", error=OSError("injected"), times=1
                )
                with pytest.raises(ConnectionClosed):
                    DelayClient(*server.address).ping()
            with DelayClient(*server.address) as client:
                assert client.ping()

    def test_handler_fault_is_recorded_and_isolated(self, service):
        with DelayServer(service) as server:
            with DelayClient(*server.address) as client:
                with injected_faults() as faults:
                    faults.fail(
                        "server.handler",
                        error=RuntimeError("injected handler crash"),
                        times=1,
                    )
                    with pytest.raises(ServerError) as excinfo:
                        client.ping()
                assert excinfo.value.reason == "internal_error"
                # The same connection keeps working afterwards.
                assert client.ping()
        assert server.handler_errors_total == 1

    def test_engine_fault_surfaces_and_server_survives(self, service):
        with DelayServer(service) as server:
            with DelayClient(*server.address) as client:
                with injected_faults() as faults:
                    faults.fail(
                        "engine.execute",
                        error=RuntimeError("injected engine crash"),
                        times=1,
                    )
                    with pytest.raises(ServerError):
                        client.query("SELECT * FROM t WHERE id = 1")
                response = client.query("SELECT * FROM t WHERE id = 1")
        assert response["rows"] == [[1, "v1"]]

    def test_fsync_fault_surfaces_and_server_survives(self, tmp_path):
        provider = make_service(journal_path=tmp_path / "wal.journal")
        with DelayServer(provider) as server:
            with DelayClient(*server.address) as client:
                with injected_faults() as faults:
                    faults.fail(
                        "journal.fsync",
                        error=OSError("injected: disk full"),
                        times=1,
                    )
                    with pytest.raises(ServerError):
                        client.query(
                            "INSERT INTO t (id, v) VALUES (100, 'x')"
                        )
                # The disk "recovered": writes work again.
                response = client.query(
                    "INSERT INTO t (id, v) VALUES (101, 'y')"
                )
        assert response["ok"] is True

    def test_injected_faults_are_counted_in_metrics(self, service):
        with DelayServer(service) as server:
            with injected_faults() as faults:
                faults.fail(
                    "server.read", error=OSError("injected"), times=1
                )
                client = DelayClient(*server.address)
                with pytest.raises(ConnectionClosed):
                    client.ping()
            with DelayClient(*server.address) as probe:
                metrics = probe.metrics()["metrics"]
        fired = metrics["faults_injected_total"]["value"]
        assert fired >= 1


class TestCircuitBreaker:
    def test_breaker_walks_all_states_from_injected_faults(self, service):
        # The full state machine — closed → open → (fail fast) →
        # half-open → closed — driven purely by injected socket faults:
        # no real outage, no real waits beyond the 100 ms probe timer.
        breaker = CircuitBreaker(
            endpoint="chaos", failure_threshold=2, probe_interval=0.1
        )
        with DelayServer(service) as server:
            client = DelayClient(*server.address, breaker=breaker)
            with injected_faults() as faults:
                faults.fail(
                    "server.read", error=OSError("injected"), times=2
                )
                for _ in range(2):
                    with pytest.raises(ConnectionClosed):
                        client.ping()
                    try:
                        client._reconnect()
                    except OSError:
                        pass
            assert breaker.state == "open"
            # Open: the call fails locally, without touching the wire.
            start = time.perf_counter()
            with pytest.raises(BreakerOpen) as excinfo:
                client.ping()
            assert time.perf_counter() - start < 0.05
            assert excinfo.value.retry_after > 0
            # After the probe interval, one probe is admitted and its
            # success closes the breaker.
            time.sleep(0.12)
            assert breaker.state == "half_open"
            assert client.ping()
            assert breaker.state == "closed"
            client.close()
        assert breaker.transitions["closed->open"] == 1
        assert breaker.transitions["open->half_open"] == 1
        assert breaker.transitions["half_open->closed"] == 1
        stats = client.resilience_stats()
        assert stats["breaker"]["state"] == "closed"

    def test_failed_probe_reopens(self, service):
        breaker = CircuitBreaker(
            endpoint="chaos2", failure_threshold=1, probe_interval=0.1
        )
        with DelayServer(service) as server:
            client = DelayClient(*server.address, breaker=breaker)
            with injected_faults() as faults:
                faults.fail(
                    "server.read", error=OSError("injected"), times=2
                )
                with pytest.raises(ConnectionClosed):
                    client.ping()
                client._reconnect()
                time.sleep(0.12)
                # The probe itself hits the second injected fault.
                with pytest.raises(ConnectionClosed):
                    client.ping()
            assert breaker.state == "open"
            assert breaker.transitions["half_open->open"] == 1
            # Second probe succeeds and recovers.
            time.sleep(0.12)
            client._reconnect()
            assert client.ping()
            assert breaker.state == "closed"
            client.close()

    def test_semantic_denials_do_not_trip_the_breaker(self, service):
        breaker = CircuitBreaker(
            endpoint="chaos3", failure_threshold=1, probe_interval=0.1
        )
        with DelayServer(service) as server:
            with DelayClient(*server.address, breaker=breaker) as client:
                for _ in range(3):
                    with pytest.raises(ServerError):
                        client.query("SELECT FROM")  # bad SQL
                # Bad SQL is the *client's* problem; the endpoint is
                # healthy and the breaker must stay closed.
                assert breaker.state == "closed"
                assert client.ping()

    def test_shared_breaker_registry_is_per_endpoint(self):
        first = DelayClient.shared_breaker("10.0.0.1", 4000)
        again = DelayClient.shared_breaker("10.0.0.1", 4000)
        other = DelayClient.shared_breaker("10.0.0.2", 4000)
        assert first is again
        assert first is not other


class TestClientRetries:
    def test_overload_shed_is_retried_until_capacity_returns(
        self, service
    ):
        with injected_faults() as faults:
            faults.stall("server.handler", seconds=0.4, times=1)
            with DelayServer(
                service, max_workers=1, max_queue=1,
                overload_retry_after=0.2,
            ) as server:
                blocker = DelayClient(*server.address)
                queued = DelayClient(*server.address)
                retrier = DelayClient(*server.address)
                outcome = {}

                def run_blocking(name, client):
                    outcome[name] = client.query(
                        "SELECT * FROM t WHERE id = 1"
                    )

                threads = [
                    threading.Thread(
                        target=run_blocking, args=("blocker", blocker)
                    ),
                    threading.Thread(
                        target=run_blocking, args=("queued", queued)
                    ),
                ]
                threads[0].start()
                time.sleep(0.1)
                threads[1].start()
                time.sleep(0.1)
                # First attempt is shed (worker wedged + queue full);
                # the retry_after hint paces the retry into the window
                # where capacity is back.
                response = retrier.query(
                    "SELECT * FROM t WHERE id = 1", retries=5
                )
                for thread in threads:
                    thread.join(timeout=5)
                for client in (blocker, queued, retrier):
                    client.close()
        assert response["ok"] is True
        assert retrier.retries_performed >= 1

    def test_connection_closed_is_retried_with_reconnect(self, service):
        with DelayServer(service) as server:
            with injected_faults() as faults:
                faults.fail(
                    "server.read", error=OSError("injected"), times=1
                )
                client = DelayClient(*server.address)
                response = client.query(
                    "SELECT * FROM t WHERE id = 1", retries=2
                )
                client.close()
        assert response["ok"] is True
        assert client.reconnects_performed == 1

    def test_zero_retries_raises_immediately(self, service):
        with DelayServer(service) as server:
            with injected_faults() as faults:
                faults.fail(
                    "server.read", error=OSError("injected"), times=1
                )
                client = DelayClient(*server.address)
                with pytest.raises(ConnectionClosed):
                    client.query("SELECT * FROM t WHERE id = 1")

    def test_bad_request_never_retried(self, service):
        with DelayServer(service) as server:
            with DelayClient(*server.address) as client:
                start = time.perf_counter()
                with pytest.raises(ServerError) as excinfo:
                    client.query(
                        "SELECT * FROM t WHERE id = 1",
                        deadline_ms=0,  # invalid: bad_request
                        retries=5,
                    )
                assert excinfo.value.reason == "bad_request"
                assert client.retries_performed == 0
                assert time.perf_counter() - start < 1.0
