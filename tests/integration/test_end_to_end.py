"""End-to-end integration: the paper's claims on small instances.

These tests run the complete pipeline — workload generation, guarded
replay, adversarial extraction, defense evaluation — and assert the
*relationships* the paper claims, at sizes small enough for CI.
"""

import numpy as np
import pytest

from repro.attacks import (
    ExtractionAdversary,
    ParallelAdversary,
    StorefrontAttack,
    best_parallel_attack_time,
    registration_interval_for_target,
)
from repro.core import (
    AccountManager,
    AccountPolicy,
    DelayGuard,
    GuardConfig,
    VirtualClock,
    analysis,
)
from repro.engine import Database
from repro.sim import TraceReplayer, build_guarded_items
from repro.workloads import (
    UpdateProcess,
    generate_calgary,
    make_uniform_query_trace,
    make_zipf_query_trace,
)


class TestHeadlineClaim:
    """Median user delay is orders of magnitude below adversary delay."""

    def test_adversary_to_user_ratio_is_huge(self):
        population = 3000
        fixture = build_guarded_items(
            population, config=GuardConfig(cap=10.0)
        )
        trace = make_zipf_query_trace(
            population, 80_000, alpha=1.5, seed=13
        )
        report = TraceReplayer(fixture.guard, fixture.table).replay(trace)
        extraction = ExtractionAdversary(
            fixture.guard, fixture.table, record=False
        ).estimate()

        median = max(report.median_delay, 1e-9)
        assert extraction.total_delay / median > 1e4

    def test_adversary_close_to_cap_bound(self):
        """Paper: adversary pays ~90% of N*d_max on Calgary-like data."""
        dataset = generate_calgary(
            num_objects=2000, num_requests=120_000, seed=14
        )
        fixture = build_guarded_items(2000, config=GuardConfig(cap=10.0))
        TraceReplayer(fixture.guard, fixture.table).replay(dataset.trace)
        extraction = ExtractionAdversary(
            fixture.guard, fixture.table, record=False
        ).estimate()
        bound = fixture.guard.max_extraction_cost(fixture.table)
        assert extraction.total_delay > 0.75 * bound

    def test_flat_workload_defeats_popularity_scheme(self):
        """§2: without skew the scheme can't separate users from robots."""
        population = 500
        fixture = build_guarded_items(
            population, config=GuardConfig(cap=10.0)
        )
        trace = make_uniform_query_trace(population, 50_000, seed=15)
        report = TraceReplayer(fixture.guard, fixture.table).replay(trace)
        extraction = ExtractionAdversary(
            fixture.guard, fixture.table, record=False
        ).estimate()
        # Ratio collapses to ~N: adversary pays N times the typical
        # delay, nothing more (the naive-limit regime).
        median = max(report.median_delay, 1e-9)
        assert extraction.total_delay / median < 10 * population


class TestLearningDynamics:
    def test_cold_start_transient_fades(self):
        """§2.3: early queries pay the cap, popular items fall fast."""
        fixture = build_guarded_items(100, config=GuardConfig(cap=5.0))
        trace = make_zipf_query_trace(100, 2000, alpha=1.5, seed=16)
        replayer = TraceReplayer(fixture.guard, fixture.table)
        replayer.replay(trace, limit=50)
        early_median = fixture.guard.stats.median_delay()
        # Each replay returns its own report with raw per-query delays
        # (guard stats keep only a histogram now).
        report = replayer.replay(trace)
        late_delays = report.user_delays.values[-200:]
        late_median = sorted(late_delays)[100]
        assert late_median < early_median

    def test_adversary_extraction_leaves_fingerprint(self):
        """A recording extraction flattens the learned distribution."""
        fixture = build_guarded_items(200, config=GuardConfig(cap=1.0))
        trace = make_zipf_query_trace(200, 5000, alpha=1.5, seed=17)
        TraceReplayer(fixture.guard, fixture.table).replay(trace)
        ExtractionAdversary(fixture.guard, fixture.table, record=True).run()
        # Every tuple now has at least one access.
        assert fixture.guard.popularity.tracked_keys() == 200


class TestUpdateDefenseEndToEnd:
    def test_staleness_matches_equation_twelve(self):
        population = 5000
        alpha, c = 1.0, 1.0
        fixture = build_guarded_items(
            population,
            config=GuardConfig(policy="update", update_c=c, cap=1e9),
        )
        process = UpdateProcess.zipf(population, alpha, rmax=1.0)
        heap = fixture.database.catalog.table(fixture.table)
        rates = {
            (fixture.table, rowid): process.rate(row[0])
            for rowid, row in heap.scan()
        }
        fixture.guard.update_rates.prime(rates, window=1e9)
        extraction = ExtractionAdversary(
            fixture.guard, fixture.table, record=False
        ).estimate()
        d_total = extraction.total_delay
        stale = float((process.rates[1:] >= 1.0 / d_total).mean())
        predicted = analysis.staleness_fraction(c, alpha)
        assert stale == pytest.approx(predicted, abs=0.05)

    def test_updates_through_sql_feed_staleness(self):
        fixture = build_guarded_items(20, config=GuardConfig(cap=1.0))
        guard = fixture.guard
        adversary = ExtractionAdversary(guard, fixture.table)
        # Interleave manually: extract half, update a tuple, extract rest.
        for item in range(1, 11):
            guard.execute(f"SELECT * FROM items WHERE id = {item}")
        guard.clock.advance(0.001)
        guard.execute("UPDATE items SET version = 1 WHERE id = 3")
        # item 3 was already "retrieved" conceptually; emulate snapshot.
        from repro.core.staleness import Snapshot, stale_fraction

        snapshot = Snapshot(started_at=0.0)
        for item in range(1, 21):
            snapshot.add(item, None, 0.5 if item <= 10 else 50.0)
        snapshot.completed_at = 100.0
        report = stale_fraction(
            snapshot, guard.last_update_times_for("items")
        )
        assert report.stale == 1


class TestDefensesEndToEnd:
    def test_registration_gate_neutralizes_sybil(self):
        db = Database()
        db.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, v TEXT)")
        db.insert_rows("items", [(i, "x") for i in range(1, 201)])
        clock = VirtualClock()

        # Single-identity extraction delay on a cold table: 200 * 10s.
        extraction_delay = 200 * 10.0
        interval = registration_interval_for_target(
            extraction_delay, extraction_delay
        )
        accounts = AccountManager(
            policy=AccountPolicy(registration_interval=interval), clock=clock
        )
        guard = DelayGuard(
            db, config=GuardConfig(cap=10.0), clock=clock, accounts=accounts
        )
        result = ParallelAdversary(guard, "items", identities=50).simulate()
        serial_time = extraction_delay
        # With the sized gate, 50-way parallelism is no better than ~serial.
        assert result.wall_time >= 0.5 * serial_time

    def test_quota_caps_storefront_coverage(self):
        db = Database()
        db.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, v TEXT)")
        db.insert_rows("items", [(i, "x") for i in range(1, 101)])
        clock = VirtualClock()
        accounts = AccountManager(
            policy=AccountPolicy(daily_query_quota=25), clock=clock
        )
        guard = DelayGuard(
            db, config=GuardConfig(cap=1.0), clock=clock, accounts=accounts
        )
        accounts.register("front")
        customers = make_zipf_query_trace(100, 500, alpha=1.0, seed=18)
        result = StorefrontAttack(guard, "items", "front").relay(customers)
        assert result.coverage <= 0.25

    def test_best_k_sizing_is_consistent(self):
        extraction_delay = 50_000.0
        interval = 5.0
        best_time = best_parallel_attack_time(extraction_delay, interval)
        assert best_time < extraction_delay  # parallelism helps at t=5s
        tight = registration_interval_for_target(
            extraction_delay, extraction_delay
        )
        assert tight > interval  # tighter gate needed to erase the gain


class TestGuardOnRealEngineFeatures:
    def test_range_query_charges_all_returned(self):
        fixture = build_guarded_items(30, config=GuardConfig(cap=1.0))
        fixture.database.execute("CREATE INDEX i_id ON items (id)")
        result = fixture.guard.execute(
            "SELECT * FROM items WHERE id BETWEEN 5 AND 14"
        )
        assert len(result.per_tuple_delays) == 10
        assert result.delay == pytest.approx(10.0)

    def test_aggregate_query_charges_matching_rows(self):
        fixture = build_guarded_items(10, config=GuardConfig(cap=1.0))
        result = fixture.guard.execute(
            "SELECT COUNT(*) FROM items WHERE id <= 4"
        )
        assert result.result.rows == [(4,)]
        assert result.delay == pytest.approx(4.0)

    def test_guarded_dml_visible_to_queries(self):
        fixture = build_guarded_items(5)
        fixture.guard.execute("UPDATE items SET payload = 'new' WHERE id = 2")
        result = fixture.guard.execute(
            "SELECT payload FROM items WHERE id = 2"
        )
        assert result.result.rows == [("new",)]
