"""Small-scale shape tests for the ablation experiments."""

import pytest

from repro.experiments.ablations import (
    run_adaptive_ablation,
    run_beta_ablation,
    run_policy_ablation,
    run_store_ablation,
)


class TestStoreAblation:
    def test_exact_backends_agree_sampled_bounded(self):
        result = run_store_ablation(scale=0.05)
        by_name = {row.store: row for row in result.rows}
        assert by_name["write_behind"].adversary_error == pytest.approx(
            0.0, abs=1e-12
        )
        assert by_name["write_behind"].backing_io > 0
        assert abs(by_name["space_saving"].adversary_error) < 0.5
        assert by_name["space_saving"].tracked_keys < (
            by_name["memory"].tracked_keys
        )
        assert result.to_table().render()


class TestPolicyAblation:
    def test_popularity_dominates_naive(self):
        result = run_policy_ablation(scale=0.05)
        popularity = result.row("popularity")
        fixed = result.row("fixed (calibrated)")
        assert fixed.adversary_delay == pytest.approx(
            popularity.adversary_delay, rel=0.01
        )
        assert fixed.median_user_delay > popularity.median_user_delay
        assert popularity.ratio > fixed.ratio
        assert result.row("none").adversary_delay == 0.0
        assert result.to_table().render()


class TestBetaAblation:
    def test_uncapped_grows_with_beta(self):
        result = run_beta_ablation(scale=0.05, betas=(0.0, 0.5, 1.0))
        uncapped = [row.uncapped_adversary_delay for row in result.rows]
        assert uncapped == sorted(uncapped)
        assert uncapped[-1] > uncapped[0]
        capped = [row.adversary_delay for row in result.rows]
        assert all(value <= result.population * 10.0 + 1e-9 for value in capped)
        assert result.to_table().render()


class TestAdaptiveAblation:
    def test_adaptive_near_best_fixed(self):
        result = run_adaptive_ablation(scale=0.2)
        fixed = [
            row for row in result.rows if row.tracker.startswith("fixed")
        ]
        best = min(row.median_user_delay for row in fixed)
        adaptive = result.row("adaptive")
        no_decay = result.row("fixed decay 1.0")
        assert adaptive.median_user_delay <= 3 * best
        assert adaptive.median_user_delay <= no_decay.median_user_delay
        assert result.to_table().render()
