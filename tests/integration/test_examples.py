"""Smoke tests: the fast example scripts must run end to end.

The slower examples (web_directory, movie_reviews generate full
published-scale datasets) are exercised by the benchmarks that share
their code paths; here we run the quick ones outright.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "first access to tuple 42" in out
        assert "full extraction would cost" in out

    def test_stock_ticker(self, capsys):
        out = run_example("stock_ticker.py", capsys)
        assert "stale on arrival (paper model) : 90.0%" in out

    def test_sqlite_front_door(self, capsys):
        out = run_example("sqlite_front_door.py", capsys)
        assert "bestseller lookup" in out
        assert "provider listening on" in out
        assert "operator report" in out

    def test_provider_operations(self, capsys):
        out = run_example("provider_operations.py", capsys)
        assert "operator report, end of day 1" in out
        assert "scraper-llc stopped after 500 queries" in out


class TestExamplesAreListed:
    def test_every_example_file_mentioned_in_readme(self):
        readme = (EXAMPLES.parent / "README.md").read_text()
        for script in EXAMPLES.glob("*.py"):
            assert script.name in readme, (
                f"examples/{script.name} missing from README"
            )
