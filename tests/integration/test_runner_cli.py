"""Tests for the experiments runner CLI surface."""

import csv
from pathlib import Path

import pytest

from repro.experiments.runner import EXPERIMENTS, main


class TestRunnerMain:
    def test_runs_named_experiment(self, capsys):
        assert main(["fig1", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "completed in" in out

    def test_unknown_name_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_csv_dir_written(self, tmp_path, capsys):
        target = tmp_path / "out"
        assert main(
            ["fig1", "--scale", "0.01", "--csv-dir", str(target)]
        ) == 0
        csv_path = target / "fig1.csv"
        assert csv_path.exists()
        with open(csv_path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["rank", "requests"]
        assert len(rows) == 11  # header + top 10

    def test_ablations_registered(self):
        for name in (
            "ablation-stores",
            "ablation-policies",
            "ablation-beta",
            "ablation-adaptive",
        ):
            assert name in EXPERIMENTS

    def test_ablation_runs_small(self, capsys):
        assert main(["ablation-beta", "--scale", "0.02"]) == 0
        assert "Beta" in capsys.readouterr().out


class TestExtractionAccounting:
    def test_total_equals_sum_of_per_tuple(self):
        from repro.attacks import ExtractionAdversary
        from repro.core import GuardConfig
        from repro.sim.experiment import build_guarded_items

        fixture = build_guarded_items(25, config=GuardConfig(cap=1.5))
        result = ExtractionAdversary(fixture.guard, fixture.table).run()
        assert result.total_delay == pytest.approx(
            sum(result.per_tuple_delays)
        )
        estimated = ExtractionAdversary(
            build_guarded_items(25, config=GuardConfig(cap=1.5)).guard,
            "items",
        ).estimate(keep_per_tuple=True)
        assert estimated.total_delay == pytest.approx(
            sum(estimated.per_tuple_delays)
        )
