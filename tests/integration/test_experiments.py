"""Shape tests for every experiment module, at reduced scale.

Each test runs the corresponding ``run_*`` function small and asserts
the qualitative result the paper's table/figure shows. The full-scale
runs live in benchmarks/.
"""

import pytest

from repro.experiments import (
    run_fig1,
    run_fig23,
    run_fig456,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

SCALE = 0.01


class TestFig1:
    def test_head_shape_and_alpha(self):
        result = run_fig1(scale=0.05)
        counts = [count for _, count in result.top10]
        assert counts == sorted(counts, reverse=True)
        assert result.fitted_alpha == pytest.approx(1.5, abs=0.25)
        assert result.to_table().render()


class TestTable1:
    def test_adversary_scales_with_n_median_stays_low(self):
        result = run_table1(scale=SCALE, sizes=(100_000, 500_000))
        small, large = result.rows
        assert large.size == 5 * small.size
        # Adversary delay ~linear in N (within 2x tolerance).
        assert large.adversary_delay > 3 * small.adversary_delay
        # Median user delay stays far below the cap.
        assert small.median_user_delay < 0.5
        assert large.median_user_delay <= small.median_user_delay * 1.5
        assert result.to_table().render()


class TestTable2:
    def test_cap_scales_adversary_not_median(self):
        result = run_table2(scale=0.02)
        delays = [row.adversary_delay for row in result.rows]
        assert delays == sorted(delays)
        # 10x cap => between 2x and 11x adversary delay.
        for previous, current in zip(result.rows, result.rows[1:]):
            ratio = current.adversary_delay / previous.adversary_delay
            assert 1.5 < ratio < 11.0
        medians = [row.median_user_delay for row in result.rows]
        assert max(medians) - min(medians) < 0.5  # median barely moves
        assert result.to_table().render()


class TestTable3:
    def test_decay_inflates_median_not_adversary(self):
        result = run_table3(scale=0.02)
        medians = [row.median_user_delay for row in result.rows]
        assert medians == sorted(medians)  # monotone in decay
        assert medians[-1] > 3 * medians[0]  # grows substantially
        adversaries = [row.adversary_delay for row in result.rows]
        spread = max(adversaries) / min(adversaries)
        assert spread < 1.6  # paper: 30.17h..33.61h (~1.11x)
        # Adversary near the N*d_max bound.
        assert min(adversaries) > 0.6 * result.max_extraction_delay
        assert result.to_table().render()


class TestFig23:
    def test_weekly_sharper_than_annual(self):
        result = run_fig23(scale=0.3)
        assert result.weekly_skew > result.annual_skew
        assert 1.5 < result.annual_skew < 8.0
        assert result.to_table().render()


class TestTable4:
    def test_all_decays_reasonable_and_adversary_near_max(self):
        result = run_table4(scale=0.1, decays=(1.0, 1.2, 2.0, 5.0))
        adversaries = [row.adversary_delay for row in result.rows]
        # Higher decay forgets faster => adversary closer to the bound.
        assert adversaries[-1] >= adversaries[0]
        assert adversaries[-1] > 0.5 * result.max_extraction_delay
        medians = [row.median_user_delay for row in result.rows]
        assert medians == sorted(medians)
        assert result.to_table().render()


class TestFig456:
    def test_three_series_shapes(self):
        result = run_fig456(scale=0.02, skews=(0.25, 0.75, 1.25, 2.0, 2.5))
        points = result.points

        # Figure 4: median rises with skew, capped at d_max.
        medians = [point.median_user_delay for point in points]
        assert medians == sorted(medians)
        assert medians[-1] == pytest.approx(result.cap)

        # Figure 5: adversary delay rises toward N*d_max.
        adversaries = [point.adversary_delay for point in points]
        assert adversaries == sorted(adversaries)
        assert adversaries[-1] > 0.9 * result.max_extraction_delay

        # Figure 6: staleness ~100% at modest skew, falls at high skew.
        assert points[0].stale_fraction > 0.95
        assert points[1].stale_fraction > 0.95
        assert points[-1].stale_fraction < 0.5
        assert result.to_table().render()

    def test_eq12_matches_in_uncapped_regime(self):
        result = run_fig456(scale=0.02, skews=(0.5, 1.0))
        for point in result.points:
            assert point.stale_fraction == pytest.approx(
                min(1.0, point.predicted_staleness), abs=0.1
            )


class TestTable5:
    def test_overhead_modest(self):
        result = run_table5(queries=30, repeats=5, population=2000)
        assert result.total_mean > result.base_mean * 0.95
        # The paper reports ~20%; allow generous CI headroom but insist
        # the machinery is not order-of-magnitude expensive.
        assert result.overhead_fraction < 1.0
        assert result.to_table().render()
