"""Fault-injection driver: a deterministic journalled write workload.

Run as a subprocess by ``test_crash_recovery.py``::

    python crash_driver.py WORKDIR N_STATEMENTS

Builds a journalled :class:`~repro.service.DataProviderService` in
WORKDIR and pushes a deterministic write workload through the guard,
appending each completed statement's index to ``WORKDIR/acks`` (fsync'd)
*after* the service acknowledged it. The parent SIGKILLs this process at
a random moment; the ack file then gives a durability lower bound — every
acked statement was fsync'd to the journal before the ack was written,
so it must survive recovery.

The workload is a pure function of the statement index, so the test can
rebuild the synchronous reference for any prefix and demand the
recovered state match it exactly — database rows, rowids, update-rate
trackers, and the delays eq. 1 derives from them.

Every statement affects exactly one row (zero-row DML is skipped by the
journal, which would make "statements executed" and "journal records"
diverge and the prefix check ambiguous).
"""

import os
import sys
import time

REPO_SRC = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "src"
)
sys.path.insert(0, REPO_SRC)

from repro.core.config import GuardConfig  # noqa: E402
from repro.service import DataProviderService  # noqa: E402

#: Seconds the virtual clock advances before each statement: makes the
#: journal's ``ts`` stamps distinct so recovery exercises timestamped
#: tracker replay, deterministically.
TICK = 0.25

#: ids 1..5 are seeded and never deleted; transient rows live at 100+.
SEED_IDS = (1, 2, 3, 4, 5)


def make_config() -> GuardConfig:
    return GuardConfig(policy="both", update_time_constant=30.0, cap=10.0)


def setup_statements():
    """The schema/seed prefix, statements 0 and 1 of every run."""
    seed = ", ".join(f"({i}, 'seed-{i}')" for i in SEED_IDS)
    return [
        "CREATE TABLE items (id INTEGER PRIMARY KEY, v TEXT)",
        f"INSERT INTO items VALUES {seed}",
    ]


def workload_statement(index: int) -> str:
    """Deterministic single-row statement for workload position ``index``."""
    phase = index % 4
    if phase == 0:
        target = SEED_IDS[(index // 4) % len(SEED_IDS)]
        return f"UPDATE items SET v = 'w{index}' WHERE id = {target}"
    if phase == 1:
        return f"INSERT INTO items VALUES ({100 + index}, 't{index}')"
    if phase == 2:
        return (
            f"UPDATE items SET v = 'u{index}' WHERE id = {100 + index - 1}"
        )
    return f"DELETE FROM items WHERE id = {100 + index - 2}"


def all_statements(count: int):
    """Setup plus ``count`` workload statements, in execution order."""
    return setup_statements() + [
        workload_statement(index) for index in range(count)
    ]


def build_service(workdir, journal: bool = True) -> DataProviderService:
    """A workload service; ``workdir=None`` builds an in-memory reference."""
    if workdir is None:
        return DataProviderService(guard_config=make_config())
    return DataProviderService(
        guard_config=make_config(),
        snapshot_path=os.path.join(workdir, "snapshot.json"),
        journal_path=(
            os.path.join(workdir, "journal.bin") if journal else None
        ),
    )


def apply_prefix(service: DataProviderService, statements) -> None:
    """Run ``statements`` through the guard exactly as the driver does."""
    for sql in statements:
        service.clock.advance(TICK)
        service.query(None, sql)


def fingerprint(service: DataProviderService) -> str:
    """Hashable digest of the durable database state."""
    import hashlib
    import json

    if not service.database.catalog.has_table("items"):
        return "empty"
    heap = service.database.table("items")
    payload = {
        "rows": sorted(service.database.query("SELECT id, v FROM items")),
        "rowids": heap.rowids(),
        "next_rowid": heap._next_rowid,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def main() -> None:
    workdir = sys.argv[1]
    count = int(sys.argv[2])
    pause = float(os.environ.get("CRASH_DRIVER_PAUSE", "0.004"))
    service = build_service(workdir)
    statements = all_statements(count)
    ack_path = os.path.join(workdir, "acks")
    with open(ack_path, "a", buffering=1) as acks:
        for index, sql in enumerate(statements):
            service.clock.advance(TICK)
            service.query(None, sql)
            # The ack goes to disk only after the service acknowledged
            # the statement — so an acked statement is a durable one.
            acks.write(f"{index}\n")
            acks.flush()
            os.fsync(acks.fileno())
            time.sleep(pause)
    with open(os.path.join(workdir, "done"), "w") as marker:
        marker.write("ok")


if __name__ == "__main__":
    main()
