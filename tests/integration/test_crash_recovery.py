"""Fault injection: SIGKILL mid-workload, then recover and compare.

The durability contract under test:

1. **Prefix property** — whatever survives a crash is an exact prefix
   of the committed statement sequence: never a partial statement,
   never a reordering, never an invented row.
2. **Ack durability** — every statement the service acknowledged before
   the kill is in that prefix (the journal fsyncs before returning).
3. **Tracker fidelity** — recovering the prefix rebuilds the delay
   guard's update-rate state identical to a reference service that ran
   the same prefix synchronously and never crashed: same rates, same
   last-update times, same eq. 1 delays.
4. **Torn tails** — truncating or corrupting the journal's tail at any
   byte yields a valid shorter prefix, not a crash.

Kill-loop iterations default to a quick smoke (3); set
``CRASH_ITERATIONS`` higher in CI for a broader sweep.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import DataProviderService

from . import crash_driver

DRIVER = Path(crash_driver.__file__).resolve()
N_STATEMENTS = 36
ITERATIONS = int(os.environ.get("CRASH_ITERATIONS", "3"))


def recover(workdir) -> DataProviderService:
    recovered = DataProviderService.recover(
        snapshot_path=os.path.join(workdir, "snapshot.json"),
        journal_path=os.path.join(workdir, "journal.bin"),
        guard_config=crash_driver.make_config(),
    )
    assert_epoch_restored(recovered)
    return recovered


def assert_epoch_restored(recovered):
    """The result-cache epoch resumes at the journal high-water mark.

    A rewound epoch would let results cached against pre-crash epochs
    be keyed current after recovery; the epoch must land exactly on the
    replayed journal's last sequence number, and strictly past the
    snapshot's when the journal tail replayed anything.
    """
    report = recovered.last_recovery
    assert recovered.database.mutation_epoch == report.last_seq
    if report.replayed_statements > 0:
        assert recovered.database.mutation_epoch > report.snapshot_seq


def reference_fingerprints(statements):
    """Fingerprint after every prefix of ``statements`` (index = length)."""
    reference = crash_driver.build_service(None, journal=False)
    prints = [crash_driver.fingerprint(reference)]
    for sql in statements:
        crash_driver.apply_prefix(reference, [sql])
        prints.append(crash_driver.fingerprint(reference))
    return prints


def assert_matches_reference(recovered, prefix_length, statements):
    """Recovered tracker state equals a never-crashed reference's."""
    reference = crash_driver.build_service(None, journal=False)
    crash_driver.apply_prefix(reference, statements[:prefix_length])
    assert recovered.clock.now() == pytest.approx(reference.clock.now())
    assert dict(recovered.guard.last_update_times) == dict(
        reference.guard.last_update_times
    )
    reference_rates = {
        key: reference.guard.update_rates.rate(key)
        for key in dict(reference.guard.last_update_times)
    }
    for key, rate in reference_rates.items():
        assert recovered.guard.update_rates.rate(key) == pytest.approx(rate)
        table, rowid = key
        assert recovered.guard.delay_for(table, rowid) == pytest.approx(
            reference.guard.delay_for(table, rowid)
        )


def run_and_kill(workdir, delay_seconds):
    """Start the driver, SIGKILL it after ``delay_seconds``."""
    env = dict(os.environ)
    process = subprocess.Popen(
        [sys.executable, str(DRIVER), str(workdir), str(N_STATEMENTS)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    time.sleep(delay_seconds)
    if process.poll() is None:
        process.send_signal(signal.SIGKILL)
    process.wait()
    ack_path = os.path.join(workdir, "acks")
    acked = -1
    if os.path.exists(ack_path):
        lines = Path(ack_path).read_text().split()
        if lines:
            acked = int(lines[-1])
    return acked


class TestKillRecovery:
    @pytest.mark.parametrize("iteration", range(ITERATIONS))
    def test_sigkill_mid_workload_recovers_exact_prefix(
        self, tmp_path, iteration
    ):
        # Spread the kill across the run: early, middle, late. The
        # driver paces itself (~4ms/statement + journal fsyncs), so
        # these delays land at genuinely different workload positions.
        delay = 0.05 + 0.12 * iteration
        acked = run_and_kill(tmp_path, delay)
        recovered = recover(tmp_path)
        statements = crash_driver.all_statements(N_STATEMENTS)
        prints = reference_fingerprints(statements)
        observed = crash_driver.fingerprint(recovered)
        assert observed in prints, (
            "recovered state is not any committed prefix"
        )
        prefix_length = prints.index(observed)
        # Durability floor: every acknowledged statement survived.
        assert prefix_length >= acked + 1, (
            f"service acked statement {acked} but recovery only "
            f"restored {prefix_length} statements"
        )
        assert_matches_reference(recovered, prefix_length, statements)

    def test_clean_run_recovers_everything(self, tmp_path):
        env = dict(os.environ)
        subprocess.run(
            [sys.executable, str(DRIVER), str(tmp_path), str(N_STATEMENTS)],
            env=env,
            check=True,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=120,
        )
        assert (tmp_path / "done").exists()
        recovered = recover(tmp_path)
        statements = crash_driver.all_statements(N_STATEMENTS)
        reference = crash_driver.build_service(None, journal=False)
        crash_driver.apply_prefix(reference, statements)
        assert crash_driver.fingerprint(recovered) == (
            crash_driver.fingerprint(reference)
        )
        assert_matches_reference(
            recovered, len(statements), statements
        )


class TestDeterministicCorruption:
    """Byte-level sweeps over the journal file, no subprocess needed."""

    def _journalled_run(self, workdir, count=16):
        service = crash_driver.build_service(str(workdir))
        crash_driver.apply_prefix(
            service, crash_driver.all_statements(count)
        )
        service.journal.close()
        return workdir / "journal.bin"

    def test_truncation_sweep_yields_valid_prefixes(self, tmp_path):
        journal_path = self._journalled_run(tmp_path)
        data = journal_path.read_bytes()
        statements = crash_driver.all_statements(16)
        prints = reference_fingerprints(statements)
        lengths = set()
        # Sample cut points densely enough to cross record boundaries.
        for cut in range(6, len(data), 7):
            journal_path.write_bytes(data[:cut])
            recovered = DataProviderService.recover(
                journal_path=journal_path,
                guard_config=crash_driver.make_config(),
            )
            observed = crash_driver.fingerprint(recovered)
            assert observed in prints
            lengths.add(prints.index(observed))
        # The sweep actually explored multiple prefixes, not one.
        assert len(lengths) > 3

    def test_corruption_sweep_detected_and_truncated(self, tmp_path):
        journal_path = self._journalled_run(tmp_path)
        data = journal_path.read_bytes()
        statements = crash_driver.all_statements(16)
        prints = reference_fingerprints(statements)
        for position in range(10, len(data), max(1, len(data) // 24)):
            corrupted = bytearray(data)
            corrupted[position] ^= 0xFF
            journal_path.write_bytes(bytes(corrupted))
            recovered = DataProviderService.recover(
                journal_path=journal_path,
                guard_config=crash_driver.make_config(),
            )
            # A flipped byte anywhere invalidates its record's checksum;
            # recovery keeps the prefix before it and never crashes.
            assert crash_driver.fingerprint(recovered) in prints

    def test_corrupted_tail_truncated_on_reopen(self, tmp_path):
        journal_path = self._journalled_run(tmp_path)
        data = journal_path.read_bytes()
        journal_path.write_bytes(data[: len(data) - 5])
        recovered = DataProviderService.recover(
            journal_path=journal_path,
            guard_config=crash_driver.make_config(),
        )
        assert recovered.last_recovery.torn_bytes_truncated > 0
        # Reopening truncated the tail durably: scanning the file now
        # finds no torn bytes.
        from repro.engine import scan_journal

        assert not scan_journal(journal_path).torn
