"""Tests for the catalog."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.errors import CatalogError
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType


def schema(name="t"):
    return TableSchema(
        name,
        [
            Column("id", DataType.INTEGER, nullable=False, primary_key=True),
            Column("v", DataType.TEXT),
        ],
    )


class TestTables:
    def test_create_and_lookup(self):
        catalog = Catalog()
        table = catalog.create_table(schema())
        assert catalog.table("t") is table
        assert catalog.table("T") is table  # case-insensitive
        assert catalog.has_table("t")

    def test_duplicate_create_rejected(self):
        catalog = Catalog()
        catalog.create_table(schema())
        with pytest.raises(CatalogError, match="already exists"):
            catalog.create_table(schema())

    def test_if_not_exists_returns_existing(self):
        catalog = Catalog()
        first = catalog.create_table(schema())
        second = catalog.create_table(schema(), if_not_exists=True)
        assert first is second

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError, match="no table"):
            Catalog().table("missing")

    def test_drop_table(self):
        catalog = Catalog()
        catalog.create_table(schema())
        assert catalog.drop_table("t") is True
        assert not catalog.has_table("t")

    def test_drop_missing_raises_unless_if_exists(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.drop_table("t")
        assert catalog.drop_table("t", if_exists=True) is False

    def test_table_names(self):
        catalog = Catalog()
        catalog.create_table(schema("a"))
        catalog.create_table(schema("b"))
        assert catalog.table_names() == ["a", "b"]


class TestIndexes:
    def test_create_index_and_find(self):
        catalog = Catalog()
        catalog.create_table(schema())
        index = catalog.create_index("iv", "t", "v")
        assert catalog.index_on("t", "v") is index
        assert catalog.index_on("t", "V") is index
        assert catalog.indexes_for("t") == [index]

    def test_index_on_filters_by_kind(self):
        catalog = Catalog()
        catalog.create_table(schema())
        catalog.create_index("ih", "t", "v", kind="hash")
        assert catalog.index_on("t", "v", kind="ordered") is None
        assert catalog.index_on("t", "v", kind="hash") is not None

    def test_duplicate_index_name_rejected(self):
        catalog = Catalog()
        catalog.create_table(schema())
        catalog.create_index("i", "t", "v")
        with pytest.raises(CatalogError, match="already exists"):
            catalog.create_index("i", "t", "id")

    def test_index_stays_in_sync(self):
        catalog = Catalog()
        table = catalog.create_table(schema())
        index = catalog.create_index("iv", "t", "v")
        table.insert([1, "x"])
        assert index.lookup("x") == [1]

    def test_drop_index(self):
        catalog = Catalog()
        table = catalog.create_table(schema())
        index = catalog.create_index("iv", "t", "v")
        catalog.drop_index("iv")
        assert catalog.index_on("t", "v") is None
        table.insert([1, "x"])
        assert index.lookup("x") == []  # detached

    def test_drop_missing_index_raises(self):
        with pytest.raises(CatalogError):
            Catalog().drop_index("nope")

    def test_drop_table_drops_its_indexes(self):
        catalog = Catalog()
        catalog.create_table(schema())
        catalog.create_index("iv", "t", "v")
        catalog.drop_table("t")
        with pytest.raises(CatalogError):
            catalog.drop_index("iv")

    def test_indexes_for_unknown_table_empty(self):
        assert Catalog().indexes_for("nope") == []
