"""Tests for hash and ordered indexes."""

import pytest

from repro.engine.errors import CatalogError
from repro.engine.index import HashIndex, OrderedIndex, create_index
from repro.engine.schema import Column, TableSchema
from repro.engine.table import HeapTable
from repro.engine.types import DataType


def make_table(rows=()):
    table = HeapTable(
        TableSchema(
            "t",
            [
                Column("id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("v", DataType.TEXT),
                Column("n", DataType.FLOAT),
            ],
        )
    )
    for row in rows:
        table.insert(row)
    return table


ROWS = [
    (1, "apple", 1.0),
    (2, "banana", 2.5),
    (3, "apple", 3.0),
    (4, None, None),
    (5, "cherry", 2.5),
]


class TestHashIndex:
    def test_builds_from_existing_rows(self):
        table = make_table(ROWS)
        index = HashIndex("i", table, "v")
        assert index.lookup("apple") == [1, 3]
        assert index.lookup("banana") == [2]
        assert index.lookup("durian") == []

    def test_tracks_inserts(self):
        table = make_table()
        index = HashIndex("i", table, "v")
        table.insert((1, "kiwi", 0.0))
        assert index.lookup("kiwi") == [1]

    def test_tracks_deletes(self):
        table = make_table(ROWS)
        index = HashIndex("i", table, "v")
        table.delete(1)
        assert index.lookup("apple") == [3]

    def test_tracks_updates(self):
        table = make_table(ROWS)
        index = HashIndex("i", table, "v")
        table.update(2, (2, "apple", 2.5))
        assert sorted(index.lookup("apple")) == [1, 2, 3]
        assert index.lookup("banana") == []

    def test_null_keys_tracked(self):
        table = make_table(ROWS)
        index = HashIndex("i", table, "v")
        assert index.lookup(None) == [4]

    def test_detach_stops_tracking(self):
        table = make_table(ROWS)
        index = HashIndex("i", table, "v")
        index.detach()
        table.insert((9, "apple", 0.0))
        assert index.lookup("apple") == [1, 3]


class TestOrderedIndex:
    def test_lookup_equality(self):
        table = make_table(ROWS)
        index = OrderedIndex("i", table, "n")
        assert index.lookup(2.5) == [2, 5]

    def test_lookup_null_returns_nothing(self):
        table = make_table(ROWS)
        index = OrderedIndex("i", table, "n")
        assert index.lookup(None) == []

    def test_range_inclusive(self):
        table = make_table(ROWS)
        index = OrderedIndex("i", table, "n")
        assert index.range(low=1.0, high=2.5) == [1, 2, 5]

    def test_range_exclusive_bounds(self):
        table = make_table(ROWS)
        index = OrderedIndex("i", table, "n")
        assert index.range(low=1.0, high=2.5, low_inclusive=False) == [2, 5]
        assert index.range(low=1.0, high=2.5, high_inclusive=False) == [1]

    def test_range_unbounded_sides(self):
        table = make_table(ROWS)
        index = OrderedIndex("i", table, "n")
        assert index.range(low=2.5) == [2, 5, 3]
        assert index.range(high=1.0) == [1]
        # NULLs never appear in ranges.
        assert 4 not in index.range()

    def test_range_excludes_nulls_entirely(self):
        table = make_table(ROWS)
        index = OrderedIndex("i", table, "n")
        assert index.range() == [1, 2, 5, 3]

    def test_min_max_keys(self):
        table = make_table(ROWS)
        index = OrderedIndex("i", table, "n")
        assert index.min_key() == 1.0
        assert index.max_key() == 3.0

    def test_min_max_empty(self):
        index = OrderedIndex("i", make_table(), "n")
        assert index.min_key() is None and index.max_key() is None

    def test_tracks_update_of_key(self):
        table = make_table(ROWS)
        index = OrderedIndex("i", table, "n")
        table.update(1, (1, "apple", 9.9))
        assert index.max_key() == 9.9
        assert index.lookup(1.0) == []

    def test_update_to_null_moves_out_of_order(self):
        table = make_table(ROWS)
        index = OrderedIndex("i", table, "n")
        table.update(1, (1, "apple", None))
        assert index.lookup(1.0) == []
        assert 1 not in index.range()

    def test_int_float_equivalence(self):
        table = make_table([(1, "a", 2.0)])
        index = OrderedIndex("i", table, "n")
        assert index.lookup(2) == [1]

    def test_delete_maintains_order(self):
        table = make_table(ROWS)
        index = OrderedIndex("i", table, "n")
        table.delete(2)
        assert index.range(low=1.0, high=3.0) == [1, 5, 3]


class TestCreateIndexFactory:
    def test_kinds(self):
        table = make_table()
        assert create_index("a", table, "v", "hash").kind == "hash"
        assert create_index("b", table, "v", "ordered").kind == "ordered"

    def test_unknown_kind_raises(self):
        with pytest.raises(CatalogError):
            create_index("c", make_table(), "v", "btree")

    def test_unknown_column_raises(self):
        with pytest.raises(CatalogError):
            create_index("d", make_table(), "missing")
