"""Tests for repro.engine.schema."""

import pytest

from repro.engine.errors import CatalogError, ConstraintError
from repro.engine.schema import Column, TableSchema, schema
from repro.engine.types import DataType


def make_schema():
    return TableSchema(
        "t",
        [
            Column("id", DataType.INTEGER, nullable=False, primary_key=True),
            Column("name", DataType.TEXT),
            Column("score", DataType.FLOAT),
        ],
    )


class TestTableSchema:
    def test_len_and_contains(self):
        s = make_schema()
        assert len(s) == 3
        assert "name" in s
        assert "NAME" in s  # case-insensitive
        assert "missing" not in s

    def test_position_and_column(self):
        s = make_schema()
        assert s.position("id") == 0
        assert s.position("SCORE") == 2
        assert s.column("name").dtype is DataType.TEXT

    def test_position_unknown_raises(self):
        with pytest.raises(CatalogError, match="nope"):
            make_schema().position("nope")

    def test_column_names_in_order(self):
        assert make_schema().column_names() == ["id", "name", "score"]

    def test_primary_key_detected(self):
        assert make_schema().primary_key == "id"

    def test_no_primary_key(self):
        s = TableSchema("t", [Column("a", DataType.TEXT)])
        assert s.primary_key is None

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError, match="duplicate"):
            TableSchema(
                "t",
                [Column("a", DataType.TEXT), Column("A", DataType.INTEGER)],
            )

    def test_multiple_primary_keys_rejected(self):
        with pytest.raises(CatalogError, match="multiple primary keys"):
            TableSchema(
                "t",
                [
                    Column("a", DataType.INTEGER, primary_key=True),
                    Column("b", DataType.INTEGER, primary_key=True),
                ],
            )

    def test_empty_schema_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [])


class TestRowValidation:
    def test_valid_row_coerced(self):
        row = make_schema().validate_row([1, "x", 2])
        assert row == (1, "x", 2.0)
        assert isinstance(row[2], float)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ConstraintError, match="expects 3 values"):
            make_schema().validate_row([1, "x"])

    def test_pk_null_rejected(self):
        with pytest.raises(ConstraintError, match="may not be NULL"):
            make_schema().validate_row([None, "x", 1.0])

    def test_nullable_column_accepts_null(self):
        row = make_schema().validate_row([1, None, None])
        assert row == (1, None, None)

    def test_not_null_column_rejects_null(self):
        s = TableSchema(
            "t", [Column("a", DataType.TEXT, nullable=False)]
        )
        with pytest.raises(ConstraintError):
            s.validate_row([None])


class TestRowFromMapping:
    def test_full_mapping(self):
        row = make_schema().row_from_mapping(
            {"id": 1, "name": "n", "score": 0.5}
        )
        assert row == (1, "n", 0.5)

    def test_missing_columns_default_null(self):
        row = make_schema().row_from_mapping({"id": 2})
        assert row == (2, None, None)

    def test_case_insensitive_keys(self):
        row = make_schema().row_from_mapping({"ID": 3, "Name": "x"})
        assert row[0] == 3 and row[1] == "x"

    def test_unknown_key_rejected(self):
        with pytest.raises(CatalogError, match="bogus"):
            make_schema().row_from_mapping({"id": 1, "bogus": 2})


class TestSchemaHelper:
    def test_builds_pk_and_not_null(self):
        s = schema(
            "t",
            ("id", DataType.INTEGER, "pk"),
            ("v", DataType.TEXT, "not null"),
            ("w", DataType.FLOAT),
        )
        assert s.primary_key == "id"
        assert not s.column("id").nullable
        assert not s.column("v").nullable
        assert s.column("w").nullable

    def test_repr_mentions_columns(self):
        assert "id INTEGER" in repr(schema("t", ("id", DataType.INTEGER)))
