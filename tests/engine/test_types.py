"""Tests for repro.engine.types."""

import pytest

from repro.engine.errors import TypeMismatchError
from repro.engine.types import DataType, sort_key


class TestDataTypeFromName:
    def test_canonical_names(self):
        assert DataType.from_name("INTEGER") is DataType.INTEGER
        assert DataType.from_name("FLOAT") is DataType.FLOAT
        assert DataType.from_name("TEXT") is DataType.TEXT
        assert DataType.from_name("BOOLEAN") is DataType.BOOLEAN

    def test_aliases(self):
        assert DataType.from_name("int") is DataType.INTEGER
        assert DataType.from_name("BIGINT") is DataType.INTEGER
        assert DataType.from_name("varchar") is DataType.TEXT
        assert DataType.from_name("REAL") is DataType.FLOAT
        assert DataType.from_name("double") is DataType.FLOAT
        assert DataType.from_name("bool") is DataType.BOOLEAN

    def test_case_and_whitespace_insensitive(self):
        assert DataType.from_name("  Integer ") is DataType.INTEGER

    def test_unknown_name_raises(self):
        with pytest.raises(TypeMismatchError):
            DataType.from_name("BLOB")


class TestValidate:
    def test_null_passes_every_type(self):
        for dtype in DataType:
            assert dtype.validate(None) is None

    def test_integer_accepts_int(self):
        assert DataType.INTEGER.validate(42) == 42

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            DataType.INTEGER.validate(True)

    def test_integer_rejects_float(self):
        with pytest.raises(TypeMismatchError):
            DataType.INTEGER.validate(1.5)

    def test_float_widens_int(self):
        value = DataType.FLOAT.validate(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            DataType.FLOAT.validate("3.0")

    def test_float_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            DataType.FLOAT.validate(False)

    def test_text_accepts_str(self):
        assert DataType.TEXT.validate("hi") == "hi"

    def test_text_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            DataType.TEXT.validate(7)

    def test_boolean_accepts_bool(self):
        assert DataType.BOOLEAN.validate(True) is True

    def test_boolean_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            DataType.BOOLEAN.validate(1)

    def test_error_message_names_column(self):
        with pytest.raises(TypeMismatchError, match="price"):
            DataType.FLOAT.validate("x", column="price")


class TestSortKey:
    def test_null_sorts_first(self):
        values = ["b", None, 3, True]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None

    def test_numbers_cross_type_order(self):
        assert sort_key(1) < sort_key(1.5) < sort_key(2)

    def test_bools_group_before_numbers(self):
        assert sort_key(False) < sort_key(True) < sort_key(0)

    def test_strings_after_numbers(self):
        assert sort_key(10**9) < sort_key("a")

    def test_total_order_is_stable_for_mixed_list(self):
        values = [None, "z", "a", 5, 2.5, False]
        once = sorted(values, key=sort_key)
        twice = sorted(once, key=sort_key)
        assert once == twice
