"""Tests for statement execution through the Database facade."""

import pytest

from repro.engine import Database
from repro.engine.errors import (
    CatalogError,
    ConstraintError,
    ExecutionError,
)


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT, "
        "age INTEGER, score FLOAT)"
    )
    database.execute(
        "INSERT INTO users VALUES "
        "(1, 'alice', 30, 9.5), (2, 'bob', 25, 7.0), "
        "(3, 'carol', 35, NULL), (4, 'dave', 25, 8.0)"
    )
    return database


class TestSelect:
    def test_star_returns_all_columns(self, db):
        result = db.execute("SELECT * FROM users WHERE id = 1")
        assert result.columns == ["id", "name", "age", "score"]
        assert result.rows == [(1, "alice", 30, 9.5)]

    def test_projection_order(self, db):
        result = db.execute("SELECT name, id FROM users WHERE id = 2")
        assert result.rows == [("bob", 2)]

    def test_computed_projection_with_alias(self, db):
        result = db.execute("SELECT age * 2 AS doubled FROM users WHERE id = 1")
        assert result.columns == ["doubled"]
        assert result.rows == [(60,)]

    def test_where_filtering(self, db):
        rows = db.query("SELECT id FROM users WHERE age = 25")
        assert sorted(rows) == [(2,), (4,)]

    def test_null_never_matches_equality(self, db):
        assert db.query("SELECT id FROM users WHERE score = NULL") == []

    def test_is_null(self, db):
        assert db.query("SELECT id FROM users WHERE score IS NULL") == [(3,)]

    def test_order_by_asc_desc(self, db):
        rows = db.query("SELECT id FROM users ORDER BY age DESC, name ASC")
        assert rows == [(3,), (1,), (2,), (4,)]

    def test_order_by_nulls_first_ascending(self, db):
        rows = db.query("SELECT id FROM users ORDER BY score")
        assert rows[0] == (3,)

    def test_limit_offset(self, db):
        rows = db.query("SELECT id FROM users ORDER BY id LIMIT 2 OFFSET 1")
        assert rows == [(2,), (3,)]

    def test_limit_zero(self, db):
        assert db.query("SELECT id FROM users LIMIT 0") == []

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT age FROM users ORDER BY age")
        assert rows == [(25,), (30,), (35,)]

    def test_rowids_follow_output_rows(self, db):
        result = db.execute("SELECT id FROM users ORDER BY id DESC LIMIT 2")
        assert result.rows == [(4,), (3,)]
        assert len(result.rowids) == 2

    def test_like(self, db):
        rows = db.query("SELECT name FROM users WHERE name LIKE '%a%'")
        assert sorted(rows) == [("alice",), ("carol",), ("dave",)]


class TestAggregates:
    def test_count_star(self, db):
        assert db.execute("SELECT COUNT(*) FROM users").scalar() == 4

    def test_count_column_skips_nulls(self, db):
        assert db.execute("SELECT COUNT(score) FROM users").scalar() == 3

    def test_count_distinct(self, db):
        assert db.execute("SELECT COUNT(DISTINCT age) FROM users").scalar() == 3

    def test_sum_avg(self, db):
        result = db.execute("SELECT SUM(age), AVG(age) FROM users")
        assert result.rows == [(115, 28.75)]

    def test_min_max(self, db):
        result = db.execute("SELECT MIN(name), MAX(score) FROM users")
        assert result.rows == [("alice", 9.5)]

    def test_aggregate_over_empty_set(self, db):
        result = db.execute(
            "SELECT COUNT(*), SUM(age), MIN(age) FROM users WHERE id > 99"
        )
        assert result.rows == [(0, None, None)]

    def test_aggregate_rowids_are_matching_rows(self, db):
        result = db.execute("SELECT COUNT(*) FROM users WHERE age = 25")
        assert len(result.rowids) == 2

    def test_sum_of_text_raises(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT SUM(name) FROM users")

    def test_mixed_aggregate_and_column_rejected(self, db):
        with pytest.raises(ExecutionError, match="GROUP BY"):
            db.execute("SELECT COUNT(*), name FROM users")


class TestInsert:
    def test_positional_insert(self, db):
        result = db.execute("INSERT INTO users VALUES (5, 'eve', 22, 6.5)")
        assert result.rowcount == 1
        assert db.row_count("users") == 5

    def test_column_list_insert_defaults_null(self, db):
        db.execute("INSERT INTO users (id, name) VALUES (6, 'frank')")
        assert db.query("SELECT age FROM users WHERE id = 6") == [(None,)]

    def test_multi_row_insert(self, db):
        result = db.execute(
            "INSERT INTO users (id, name) VALUES (7, 'g'), (8, 'h')"
        )
        assert result.rowcount == 2

    def test_expression_values(self, db):
        db.execute("INSERT INTO users (id, age) VALUES (9, 20 + 5)")
        assert db.query("SELECT age FROM users WHERE id = 9") == [(25,)]

    def test_duplicate_pk_rejected(self, db):
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO users (id) VALUES (1)")

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO users (id, name) VALUES (10)")


class TestUpdate:
    def test_update_with_where(self, db):
        result = db.execute("UPDATE users SET age = 26 WHERE name = 'bob'")
        assert result.rowcount == 1
        assert db.query("SELECT age FROM users WHERE id = 2") == [(26,)]

    def test_update_references_old_values(self, db):
        db.execute("UPDATE users SET age = age + 1 WHERE id = 1")
        assert db.query("SELECT age FROM users WHERE id = 1") == [(31,)]

    def test_update_all_rows(self, db):
        result = db.execute("UPDATE users SET score = 0.0")
        assert result.rowcount == 4

    def test_update_no_match(self, db):
        assert db.execute("UPDATE users SET age = 1 WHERE id = 99").rowcount == 0

    def test_self_referential_swap_is_safe(self, db):
        # Predicate evaluated against materialized targets first.
        db.execute("UPDATE users SET age = 25 WHERE age = 25")
        assert db.execute(
            "SELECT COUNT(*) FROM users WHERE age = 25"
        ).scalar() == 2


class TestDelete:
    def test_delete_with_where(self, db):
        result = db.execute("DELETE FROM users WHERE age = 25")
        assert result.rowcount == 2
        assert db.row_count("users") == 2

    def test_delete_all(self, db):
        db.execute("DELETE FROM users")
        assert db.row_count("users") == 0

    def test_delete_none(self, db):
        assert db.execute("DELETE FROM users WHERE id = 99").rowcount == 0


class TestDDL:
    def test_create_and_drop_table(self, db):
        db.execute("CREATE TABLE extra (a INTEGER)")
        assert db.catalog.has_table("extra")
        db.execute("DROP TABLE extra")
        assert not db.catalog.has_table("extra")

    def test_create_existing_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE users (a INTEGER)")

    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS users (a INTEGER)")
        assert db.catalog.table("users").schema.column_names() == [
            "id", "name", "age", "score",
        ]

    def test_create_index_speeds_path(self, db):
        assert db.explain("SELECT * FROM users WHERE name = 'bob'") == (
            "FULL SCAN"
        )
        db.execute("CREATE INDEX iname ON users (name)")
        assert "INDEX" in db.explain("SELECT * FROM users WHERE name = 'bob'")

    def test_index_results_match_scan_results(self, db):
        before = sorted(db.query("SELECT id FROM users WHERE age = 25"))
        db.execute("CREATE INDEX iage ON users (age)")
        after = sorted(db.query("SELECT id FROM users WHERE age = 25"))
        assert before == after


class TestResultSet:
    def test_scalar_requires_1x1(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT id, name FROM users WHERE id = 1").scalar()

    def test_column_accessor(self, db):
        result = db.execute("SELECT id, name FROM users ORDER BY id")
        assert result.column("name")[0] == "alice"
        with pytest.raises(ExecutionError):
            result.column("missing")

    def test_as_dicts(self, db):
        result = db.execute("SELECT id, name FROM users WHERE id = 1")
        assert result.as_dicts() == [{"id": 1, "name": "alice"}]

    def test_iteration_and_len(self, db):
        result = db.execute("SELECT id FROM users")
        assert len(result) == 4
        assert len(list(result)) == 4


class TestEngineStats:
    def test_stats_accumulate(self, db):
        before = db.stats.statements
        db.execute("SELECT * FROM users")
        db.execute("INSERT INTO users (id) VALUES (50)")
        assert db.stats.statements == before + 2
        assert db.stats.by_kind.get("select", 0) >= 1
        assert db.stats.rows_written >= 1
