"""Fuzz tests: the parser must fail cleanly, never crash.

Any input text must either parse or raise
:class:`~repro.engine.errors.ParseError` (or a TypeMismatchError for a
bad type name) — no other exception type may escape, and a successful
parse must be executable-or-EngineError against a database.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database
from repro.engine.errors import EngineError
from repro.engine.parser import parse

sql_alphabet = (
    string.ascii_letters + string.digits + " '\"(),.*=<>!+-/%;_\n\t"
)


class TestParserNeverCrashes:
    @given(st.text(alphabet=sql_alphabet, max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_random_text(self, text):
        try:
            parse(text)
        except EngineError:
            pass  # ParseError / TypeMismatchError are the contract

    @given(
        st.text(alphabet=sql_alphabet, max_size=60),
        st.sampled_from(
            [
                "SELECT {} FROM t",
                "SELECT * FROM t WHERE {}",
                "INSERT INTO t VALUES ({})",
                "UPDATE t SET v = {}",
                "DELETE FROM t WHERE {}",
                "CREATE TABLE x ({})",
            ]
        ),
    )
    @settings(max_examples=300, deadline=None)
    def test_statement_shaped_fuzz(self, filler, template):
        try:
            parse(template.format(filler))
        except EngineError:
            pass

    @given(st.text(alphabet=sql_alphabet, max_size=80))
    @settings(max_examples=150, deadline=None)
    def test_parsed_statements_execute_or_engine_error(self, text):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        try:
            statement = parse(text)
        except EngineError:
            return
        try:
            db.execute(statement)
        except EngineError:
            pass
