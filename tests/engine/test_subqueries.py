"""Tests for uncorrelated subqueries (IN-subquery and scalar)."""

import pytest

from repro.engine import Database
from repro.engine.errors import ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE products (id INTEGER PRIMARY KEY, category INTEGER, "
        "price FLOAT)"
    )
    database.execute(
        "CREATE TABLE categories (id INTEGER PRIMARY KEY, active BOOLEAN)"
    )
    database.execute(
        "INSERT INTO products VALUES (1, 10, 5.0), (2, 20, 15.0), "
        "(3, 10, 25.0), (4, 30, 35.0)"
    )
    database.execute(
        "INSERT INTO categories VALUES (10, TRUE), (20, FALSE), (30, TRUE)"
    )
    return database


class TestInSubquery:
    def test_basic_membership(self, db):
        rows = db.query(
            "SELECT id FROM products WHERE category IN "
            "(SELECT id FROM categories WHERE active = TRUE)"
        )
        assert sorted(rows) == [(1,), (3,), (4,)]

    def test_not_in(self, db):
        rows = db.query(
            "SELECT id FROM products WHERE category NOT IN "
            "(SELECT id FROM categories WHERE active = TRUE)"
        )
        assert rows == [(2,)]

    def test_empty_subquery_matches_nothing(self, db):
        rows = db.query(
            "SELECT id FROM products WHERE category IN "
            "(SELECT id FROM categories WHERE id > 999)"
        )
        assert rows == []

    def test_not_in_empty_subquery_matches_all(self, db):
        rows = db.query(
            "SELECT id FROM products WHERE category NOT IN "
            "(SELECT id FROM categories WHERE id > 999)"
        )
        assert len(rows) == 4

    def test_null_in_subquery_result_gives_unknown(self, db):
        db.execute("CREATE TABLE n (id INTEGER PRIMARY KEY, v INTEGER)")
        db.execute("INSERT INTO n VALUES (1, 10), (2, NULL)")
        # category 20 is not in {10, NULL}: UNKNOWN, so filtered out;
        # NOT IN over a null-containing set is UNKNOWN too.
        rows = db.query(
            "SELECT id FROM products WHERE category IN (SELECT v FROM n)"
        )
        assert sorted(rows) == [(1,), (3,)]
        rows = db.query(
            "SELECT id FROM products WHERE category NOT IN "
            "(SELECT v FROM n)"
        )
        assert rows == []

    def test_multi_column_subquery_rejected(self, db):
        with pytest.raises(ExecutionError, match="one column"):
            db.query(
                "SELECT id FROM products WHERE category IN "
                "(SELECT id, active FROM categories)"
            )

    def test_subquery_reads_are_touched(self, db):
        result = db.execute(
            "SELECT id FROM products WHERE category IN "
            "(SELECT id FROM categories WHERE active = TRUE)"
        )
        tables = {name for name, _ in result.touched}
        assert tables == {"products", "categories"}

    def test_in_subquery_in_delete(self, db):
        db.execute(
            "DELETE FROM products WHERE category IN "
            "(SELECT id FROM categories WHERE active = FALSE)"
        )
        assert db.row_count("products") == 3

    def test_in_subquery_in_update(self, db):
        db.execute(
            "UPDATE products SET price = 0.0 WHERE category IN "
            "(SELECT id FROM categories WHERE active = TRUE)"
        )
        rows = db.query("SELECT id FROM products WHERE price = 0.0")
        assert sorted(rows) == [(1,), (3,), (4,)]


class TestScalarSubquery:
    def test_scalar_comparison(self, db):
        rows = db.query(
            "SELECT id FROM products WHERE price > "
            "(SELECT AVG(price) FROM products)"
        )
        assert sorted(rows) == [(3,), (4,)]

    def test_scalar_aggregate_equality(self, db):
        rows = db.query(
            "SELECT id FROM products WHERE price = "
            "(SELECT MAX(price) FROM products)"
        )
        assert rows == [(4,)]

    def test_empty_scalar_is_null(self, db):
        rows = db.query(
            "SELECT id FROM products WHERE price = "
            "(SELECT price FROM products WHERE id = 999)"
        )
        assert rows == []  # NULL comparison filters everything

    def test_multi_row_scalar_rejected(self, db):
        with pytest.raises(ExecutionError, match="more than one row"):
            db.query(
                "SELECT id FROM products WHERE price = "
                "(SELECT price FROM products)"
            )

    def test_scalar_in_arithmetic(self, db):
        rows = db.query(
            "SELECT id FROM products WHERE price > "
            "(SELECT MIN(price) FROM products) + 10"
        )
        # min(5.0) + 10 = 15.0; strictly greater leaves 25.0 and 35.0.
        assert sorted(rows) == [(3,), (4,)]

    def test_nested_subqueries(self, db):
        rows = db.query(
            "SELECT id FROM products WHERE category IN "
            "(SELECT id FROM categories WHERE id > "
            "(SELECT MIN(id) FROM categories))"
        )
        assert sorted(rows) == [(2,), (4,)]

    def test_unbound_subquery_outside_where_errors(self, db):
        # Subqueries in the select list are not supported; the error
        # must be clear rather than silently wrong.
        with pytest.raises(ExecutionError, match="unbound"):
            db.query("SELECT (SELECT MAX(id) FROM categories) FROM products")


class TestSubqueriesThroughGuard:
    def test_guard_charges_inner_and_outer_tuples(self, db):
        from repro.core import DelayGuard, GuardConfig, VirtualClock

        guard = DelayGuard(
            db, config=GuardConfig(cap=1.0), clock=VirtualClock()
        )
        result = guard.execute(
            "SELECT id FROM products WHERE category IN "
            "(SELECT id FROM categories WHERE active = TRUE)"
        )
        # 2 categories read + 3 products returned = 5 cold tuples.
        assert result.delay == pytest.approx(5.0)
