"""Tests for repro.engine.expr: evaluation and SQL three-valued logic."""

import pytest

from repro.engine.errors import ExecutionError
from repro.engine.expr import (
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Logical,
    Negate,
    Not,
    conjuncts,
    predicate_holds,
)

ROW = {"a": 5, "b": 2.5, "s": "hello", "flag": True, "nothing": None}


def lit(value):
    return Literal(value)


class TestLiteralAndColumn:
    def test_literal_evaluates_to_value(self):
        assert lit(7).evaluate({}) == 7
        assert lit(None).evaluate({}) is None

    def test_column_lookup_case_insensitive(self):
        assert ColumnRef("A").evaluate(ROW) == 5

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError, match="missing"):
            ColumnRef("missing").evaluate(ROW)

    def test_literal_str_quotes_strings(self):
        assert str(lit("o'brien")) == "'o''brien'"
        assert str(lit(None)) == "NULL"

    def test_columns_collects_references(self):
        expr = Logical(
            "AND",
            Comparison("=", ColumnRef("a"), lit(1)),
            Comparison(">", ColumnRef("b"), ColumnRef("c")),
        )
        assert sorted(expr.columns()) == ["a", "b", "c"]


class TestComparison:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("=", 1, 1, True),
            ("=", 1, 2, False),
            ("!=", 1, 2, True),
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 1, 2, False),
        ],
    )
    def test_numeric_comparisons(self, op, left, right, expected):
        assert Comparison(op, lit(left), lit(right)).evaluate({}) is expected

    def test_int_float_cross_comparison(self):
        assert Comparison("=", lit(1), lit(1.0)).evaluate({}) is True

    def test_string_comparison(self):
        assert Comparison("<", lit("a"), lit("b")).evaluate({}) is True

    def test_null_yields_null(self):
        assert Comparison("=", lit(None), lit(1)).evaluate({}) is None
        assert Comparison("<", lit(1), lit(None)).evaluate({}) is None

    def test_mixed_types_raise(self):
        with pytest.raises(ExecutionError):
            Comparison("<", lit(1), lit("a")).evaluate({})


class TestArithmetic:
    def test_basic_operations(self):
        assert Arithmetic("+", lit(2), lit(3)).evaluate({}) == 5
        assert Arithmetic("-", lit(2), lit(3)).evaluate({}) == -1
        assert Arithmetic("*", lit(2), lit(3)).evaluate({}) == 6
        assert Arithmetic("/", lit(7), lit(2)).evaluate({}) == 3.5
        assert Arithmetic("%", lit(7), lit(2)).evaluate({}) == 1

    def test_string_concatenation_with_plus(self):
        assert Arithmetic("+", lit("a"), lit("b")).evaluate({}) == "ab"

    def test_null_propagates(self):
        assert Arithmetic("+", lit(None), lit(1)).evaluate({}) is None

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            Arithmetic("/", lit(1), lit(0)).evaluate({})

    def test_modulo_by_zero_raises(self):
        with pytest.raises(ExecutionError, match="modulo by zero"):
            Arithmetic("%", lit(1), lit(0)).evaluate({})

    def test_non_numeric_raises(self):
        with pytest.raises(ExecutionError):
            Arithmetic("*", lit("a"), lit(2)).evaluate({})

    def test_negate(self):
        assert Negate(lit(5)).evaluate({}) == -5
        assert Negate(lit(None)).evaluate({}) is None
        with pytest.raises(ExecutionError):
            Negate(lit("x")).evaluate({})


class TestLogical:
    def test_and_truth_table(self):
        t, f, n = lit(True), lit(False), lit(None)
        assert Logical("AND", t, t).evaluate({}) is True
        assert Logical("AND", t, f).evaluate({}) is False
        assert Logical("AND", f, n).evaluate({}) is False  # false wins
        assert Logical("AND", t, n).evaluate({}) is None

    def test_or_truth_table(self):
        t, f, n = lit(True), lit(False), lit(None)
        assert Logical("OR", f, f).evaluate({}) is False
        assert Logical("OR", t, n).evaluate({}) is True  # true wins
        assert Logical("OR", f, n).evaluate({}) is None

    def test_not(self):
        assert Not(lit(True)).evaluate({}) is False
        assert Not(lit(None)).evaluate({}) is None

    def test_non_boolean_operand_raises(self):
        with pytest.raises(ExecutionError):
            Logical("AND", lit(1), lit(True)).evaluate({})


class TestIsNull:
    def test_is_null(self):
        assert IsNull(ColumnRef("nothing")).evaluate(ROW) is True
        assert IsNull(ColumnRef("a")).evaluate(ROW) is False

    def test_is_not_null(self):
        assert IsNull(ColumnRef("a"), negated=True).evaluate(ROW) is True


class TestInList:
    def test_membership(self):
        expr = InList(ColumnRef("a"), (lit(1), lit(5)))
        assert expr.evaluate(ROW) is True

    def test_not_in(self):
        expr = InList(ColumnRef("a"), (lit(1),), negated=True)
        assert expr.evaluate(ROW) is True

    def test_null_operand_is_null(self):
        expr = InList(ColumnRef("nothing"), (lit(1),))
        assert expr.evaluate(ROW) is None

    def test_null_member_without_match_is_null(self):
        expr = InList(ColumnRef("a"), (lit(1), lit(None)))
        assert expr.evaluate(ROW) is None

    def test_match_beats_null_member(self):
        expr = InList(ColumnRef("a"), (lit(5), lit(None)))
        assert expr.evaluate(ROW) is True


class TestBetween:
    def test_inclusive_bounds(self):
        assert Between(lit(5), lit(5), lit(10)).evaluate({}) is True
        assert Between(lit(10), lit(5), lit(10)).evaluate({}) is True
        assert Between(lit(11), lit(5), lit(10)).evaluate({}) is False

    def test_negated(self):
        assert Between(lit(1), lit(5), lit(10), negated=True).evaluate({}) is True

    def test_null_operand(self):
        assert Between(lit(None), lit(1), lit(2)).evaluate({}) is None

    def test_definite_false_with_null_bound(self):
        # 20 > 10 (high) is definitely out even though low is NULL.
        assert Between(lit(20), lit(None), lit(10)).evaluate({}) is False


class TestLike:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("hello", "hello", True),
            ("hello", "h%", True),
            ("hello", "%llo", True),
            ("hello", "h_llo", True),
            ("hello", "H%", False),  # case-sensitive
            ("hello", "%z%", False),
            ("a.c", "a.c", True),  # dot is literal, not regex
            ("abc", "a.c", False),
        ],
    )
    def test_patterns(self, value, pattern, expected):
        assert Like(lit(value), lit(pattern)).evaluate({}) is expected

    def test_negated(self):
        assert Like(lit("x"), lit("y%"), negated=True).evaluate({}) is True

    def test_null_is_null(self):
        assert Like(lit(None), lit("%")).evaluate({}) is None

    def test_non_string_raises(self):
        with pytest.raises(ExecutionError):
            Like(lit(5), lit("%")).evaluate({})


class TestPredicateHelpers:
    def test_predicate_holds_requires_true(self):
        assert predicate_holds(None, ROW) is True
        assert predicate_holds(lit(True), ROW) is True
        assert predicate_holds(lit(False), ROW) is False
        assert predicate_holds(lit(None), ROW) is False  # NULL filters out

    def test_conjuncts_flattens_and_tree(self):
        a = Comparison("=", ColumnRef("a"), lit(1))
        b = Comparison("=", ColumnRef("b"), lit(2))
        c = Comparison("=", ColumnRef("s"), lit("x"))
        tree = Logical("AND", Logical("AND", a, b), c)
        assert conjuncts(tree) == [a, b, c]

    def test_conjuncts_of_none_is_empty(self):
        assert conjuncts(None) == []

    def test_or_is_single_conjunct(self):
        tree = Logical("OR", lit(True), lit(False))
        assert conjuncts(tree) == [tree]
