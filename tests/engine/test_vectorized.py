"""Unit tests for the vectorized executor and its scan worker pool.

The equivalence harness (``test_vectorized_equivalence``) proves
*what* the vectorized path returns; these tests pin down *how* it is
selected — dispatch, per-statement fallback, configuration knobs,
worker-pool lifecycle — and the two hot-path bugs the refactor fixed
(integer precision above 2**53, aggregate LIMIT/OFFSET).
"""

import pytest

from repro.core.config import GuardConfig
from repro.core.errors import ConfigError
from repro.engine import Database, Executor, ScanWorkerPool, VectorizedExecutor
from repro.engine.vectorized.workers import HAVE_FORK

BIG = 2**53


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, v INTEGER, "
        "s FLOAT)"
    )
    database.insert_rows(
        "t",
        [(i, i % 3, BIG + i, float(i)) for i in range(1, 41)],
    )
    yield database
    database.close()


class TestDispatch:
    def test_vectorized_is_the_default_executor(self, db):
        assert isinstance(db.executor, VectorizedExecutor)

    def test_vectorizable_select_marked_and_counted(self, db):
        result = db.execute("SELECT id FROM t WHERE grp = 1")
        assert result.execution_path == "vectorized"
        assert db.execution_path_counts()["vectorized"] == 1
        assert db.execution_path_counts()["classic"] == 0

    def test_unvectorizable_statement_falls_back_per_statement(self, db):
        # A non-equi join has no batch form; the statement (and only
        # the statement) drops to the classic row-at-a-time path.
        result = db.execute(
            "SELECT a.id FROM t a JOIN t b ON a.id < b.id WHERE b.id = 2"
        )
        assert result.execution_path == "classic"
        counts = db.execution_path_counts()
        assert counts["classic"] == 1
        db.execute("SELECT id FROM t WHERE grp = 2")
        assert db.execution_path_counts()["vectorized"] == 1

    def test_configure_execution_pins_classic(self, db):
        db.configure_execution(vectorized=False)
        assert type(db.executor) is Executor
        result = db.execute("SELECT id FROM t WHERE grp = 1")
        assert result.execution_path == "classic"

    def test_dml_unaffected_by_executor_choice(self, db):
        db.execute("UPDATE t SET grp = 9 WHERE id = 1")
        assert db.query("SELECT grp FROM t WHERE id = 1") == [(9,)]
        db.execute("DELETE FROM t WHERE id = 2")
        assert db.query("SELECT id FROM t WHERE id = 2") == []


class TestPrecisionRegressions:
    """The pricing-precision bugs the columnar work exposed."""

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_big_int_comparisons_never_collapse_to_float(self, vectorized):
        database = Database()
        database.configure_execution(vectorized=vectorized)
        database.execute("CREATE TABLE b (k INTEGER PRIMARY KEY, v INTEGER)")
        database.insert_rows("b", [(1, BIG), (2, BIG + 1), (3, BIG + 2)])
        # float64 cannot tell BIG from BIG + 1; exact ints must.
        assert database.query(
            f"SELECT k FROM b WHERE v = {BIG + 1}"
        ) == [(2,)]
        assert database.query(
            f"SELECT k FROM b WHERE v > {BIG}"
        ) == [(2,), (3,)]
        assert database.query(
            f"SELECT k FROM b WHERE v BETWEEN {BIG + 1} AND {BIG + 1}"
        ) == [(2,)]

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_integer_division_stays_exact_above_2_53(self, vectorized):
        database = Database()
        database.configure_execution(vectorized=vectorized)
        database.execute("CREATE TABLE b (k INTEGER PRIMARY KEY, v INTEGER)")
        big_even = 2 * (BIG + 1)
        database.insert_rows("b", [(1, big_even)])
        # Evenly-divisible int/int stays an exact int: float division
        # would return 2.0 * (BIG + 1) rounded to a multiple of 2.
        rows = database.query("SELECT v / 2 FROM b")
        assert rows == [(BIG + 1,)]
        assert isinstance(rows[0][0], int)

    def test_non_divisible_division_still_true_division(self):
        database = Database()
        database.execute("CREATE TABLE b (k INTEGER PRIMARY KEY)")
        database.insert_rows("b", [(1,)])
        assert database.query("SELECT 7 / 2 FROM b") == [(3.5,)]


class TestConfigKnobs:
    def test_scan_workers_require_vectorized_execution(self):
        with pytest.raises(ConfigError):
            GuardConfig(vectorized_execution=False, scan_workers=2).validate()

    def test_negative_scan_workers_rejected(self):
        with pytest.raises(ConfigError):
            GuardConfig(scan_workers=-1).validate()

    def test_parallel_scan_min_rows_floor(self):
        with pytest.raises(ConfigError):
            GuardConfig(parallel_scan_min_rows=0).validate()

    def test_defaults_validate(self):
        GuardConfig().validate()


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
class TestScanWorkerPool:
    def test_parallel_path_used_and_identical(self, db):
        classic = [
            row for row in db.query("SELECT id FROM t WHERE grp = 1")
        ]
        db.configure_execution(scan_workers=2, parallel_scan_min_rows=1)
        assert db.scan_pool is not None and db.scan_pool.alive
        rows = db.query("SELECT id FROM t WHERE grp = 1")
        assert rows == classic
        assert db.execution_path_counts()["parallel"] >= 1
        assert db.scan_pool.served >= 1

    def test_mutation_respawns_pool_and_results_stay_fresh(self, db):
        db.configure_execution(scan_workers=2, parallel_scan_min_rows=1)
        db.query("SELECT id FROM t WHERE grp = 0")  # fork + first scan
        db.execute("INSERT INTO t VALUES (99, 1, 0, 0.0)")
        rows = db.query("SELECT id FROM t WHERE grp = 1")
        assert (99,) in rows
        assert db.scan_pool.respawns >= 1

    def test_indexed_lookup_stays_local(self, db):
        db.configure_execution(scan_workers=2, parallel_scan_min_rows=1)
        served_before = db.scan_pool.served
        db.query("SELECT id FROM t WHERE id = 5")  # pk access path
        assert db.scan_pool.served == served_before

    def test_small_scans_stay_local(self, db):
        db.configure_execution(scan_workers=2, parallel_scan_min_rows=10_000)
        db.query("SELECT id FROM t WHERE grp = 1")
        assert db.scan_pool.served == 0

    def test_dead_pool_falls_back_to_local_scan(self, db):
        import os as _os
        import signal as _signal

        db.configure_execution(scan_workers=2, parallel_scan_min_rows=1)
        for pid in db.scan_pool._pids:
            _os.kill(pid, _signal.SIGKILL)
            db.scan_pool._reap(pid, timeout=2.0)
        rows = db.query("SELECT id FROM t WHERE grp = 1")
        assert rows == [(i,) for i in range(1, 41) if i % 3 == 1]

    def test_close_is_idempotent(self, db):
        db.configure_execution(scan_workers=2)
        db.close()
        db.close()
        assert db.scan_pool is None

    def test_standalone_pool_filters_exact_positions(self, db):
        from repro.engine.parser import parse

        statement = parse("SELECT id FROM t WHERE grp = 1")
        table = db.catalog.table("t")
        with ScanWorkerPool(db.catalog, workers=2) as pool:
            positions = pool.filter_positions(
                table, "t", statement.where, len(table.column_batch())
            )
        grp = table.column_batch().columns[1]  # (id, grp, v, s)
        expected = [
            index for index, value in enumerate(grp) if value == 1
        ]
        assert positions == expected


class TestGuardWiring:
    def test_guard_applies_knobs_to_database(self):
        from repro.core.guard import DelayGuard

        database = Database()
        database.execute("CREATE TABLE g (id INTEGER PRIMARY KEY)")
        DelayGuard(database, config=GuardConfig(vectorized_execution=False))
        assert type(database.executor) is Executor

    def test_guard_counts_execution_paths_when_observable(self):
        from repro.core.guard import DelayGuard
        from repro.obs import Observability

        database = Database()
        database.execute("CREATE TABLE g (id INTEGER PRIMARY KEY)")
        database.insert_rows("g", [(1,), (2,)])
        obs = Observability()
        guard = DelayGuard(
            database,
            config=GuardConfig(result_cache_size=8),
            obs=obs,
        )
        guard.execute("SELECT * FROM g WHERE id = 1", sleep=False)
        guard.execute("SELECT * FROM g WHERE id = 1", sleep=False)
        assert guard._m_execution_path.value(path="vectorized") == 1
        assert guard._m_execution_path.value(path="cached") == 1
