"""Property-based tests: rollback restores the exact database state."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database
from repro.engine.errors import EngineError

# A random DML operation: (kind, key, value)
operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=99),
    ),
    max_size=40,
)


def fresh_db():
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    db.execute("CREATE INDEX iv ON t (v)")
    db.insert_rows("t", [(i, i * 10) for i in range(1, 11)])
    return db


def state_of(db):
    heap = db.catalog.table("t")
    return sorted(heap.scan())


def apply_operations(db, ops):
    applied = 0
    for kind, key, value in ops:
        try:
            if kind == "insert":
                db.execute(f"INSERT INTO t VALUES ({key}, {value})")
            elif kind == "update":
                db.execute(f"UPDATE t SET v = {value} WHERE id = {key}")
            else:
                db.execute(f"DELETE FROM t WHERE id = {key}")
            applied += 1
        except EngineError:
            pass  # duplicate pk inserts etc. — statement atomicity holds
    return applied


class TestRollbackRestoresState:
    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_rollback_is_exact_inverse(self, ops):
        db = fresh_db()
        before = state_of(db)
        db.execute("BEGIN")
        apply_operations(db, ops)
        db.execute("ROLLBACK")
        assert state_of(db) == before

    @given(operations)
    @settings(max_examples=40, deadline=None)
    def test_rollback_restores_index_query_results(self, ops):
        db = fresh_db()
        before = {
            v: sorted(db.query(f"SELECT id FROM t WHERE v = {v}"))
            for v in range(0, 100, 10)
        }
        db.execute("BEGIN")
        apply_operations(db, ops)
        db.execute("ROLLBACK")
        for v, expected in before.items():
            assert sorted(db.query(f"SELECT id FROM t WHERE v = {v}")) == (
                expected
            )

    @given(operations, operations)
    @settings(max_examples=40, deadline=None)
    def test_commit_then_rollback_only_undoes_second_batch(self, first, second):
        db = fresh_db()
        db.execute("BEGIN")
        apply_operations(db, first)
        db.execute("COMMIT")
        committed = state_of(db)
        db.execute("BEGIN")
        apply_operations(db, second)
        db.execute("ROLLBACK")
        assert state_of(db) == committed

    @given(operations)
    @settings(max_examples=40, deadline=None)
    def test_transactional_and_plain_execution_agree(self, ops):
        """COMMIT-ing a batch must equal running it without BEGIN."""
        transactional = fresh_db()
        transactional.execute("BEGIN")
        apply_operations(transactional, ops)
        transactional.execute("COMMIT")

        plain = fresh_db()
        apply_operations(plain, ops)

        plain_state = [row for _rowid, row in state_of(plain)]
        tx_state = [row for _rowid, row in state_of(transactional)]
        assert sorted(plain_state) == sorted(tx_state)
