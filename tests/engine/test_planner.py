"""Tests for access-path selection."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.parser.parser import parse
from repro.engine.planner import candidate_rowids, choose_access_path
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType


@pytest.fixture
def setup():
    catalog = Catalog()
    table = catalog.create_table(
        TableSchema(
            "t",
            [
                Column("id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("v", DataType.TEXT),
                Column("n", DataType.FLOAT),
                Column("u", DataType.INTEGER),
            ],
        )
    )
    catalog.create_index("iv", "t", "v", kind="hash")
    catalog.create_index("inn", "t", "n", kind="ordered")
    for i in range(1, 21):
        table.insert([i, f"v{i % 5}", float(i), i * 10])
    return catalog, table


def path_for(catalog, table, sql_condition):
    where = parse(f"SELECT * FROM t WHERE {sql_condition}").where
    return choose_access_path(catalog, table, where)


class TestPathSelection:
    def test_no_where_full_scan(self, setup):
        catalog, table = setup
        assert choose_access_path(catalog, table, None).kind == "full_scan"

    def test_pk_equality(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "id = 7")
        assert path.kind == "pk_lookup" and path.key == 7

    def test_pk_equality_reversed_operands(self, setup):
        catalog, table = setup
        assert path_for(catalog, table, "7 = id").kind == "pk_lookup"

    def test_pk_preferred_over_index(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "v = 'v1' AND id = 3")
        assert path.kind == "pk_lookup"

    def test_hash_index_equality(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "v = 'v2'")
        assert path.kind == "index_lookup" and path.index_name == "iv"

    def test_in_list_on_indexed_column(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "v IN ('v1', 'v2')")
        assert path.kind == "index_in" and path.keys == ("v1", "v2")

    def test_range_on_ordered_index(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "n > 5")
        assert path.kind == "index_range"
        assert path.low == 5 and not path.low_inclusive
        assert path.high is None

    def test_range_bounds_merged(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "n > 5 AND n <= 10 AND n >= 6")
        assert path.low == 6 and path.low_inclusive
        assert path.high == 10 and path.high_inclusive

    def test_between_uses_range(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "n BETWEEN 3 AND 8")
        assert path.kind == "index_range"
        assert (path.low, path.high) == (3, 8)

    def test_reversed_range_operands_flipped(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "5 < n")
        assert path.low == 5 and not path.low_inclusive

    def test_unindexed_column_full_scan(self, setup):
        catalog, table = setup
        assert path_for(catalog, table, "u = 10").kind == "full_scan"

    def test_or_condition_full_scan(self, setup):
        catalog, table = setup
        assert path_for(catalog, table, "id = 1 OR id = 2").kind == "full_scan"

    def test_column_to_column_comparison_full_scan(self, setup):
        catalog, table = setup
        assert path_for(catalog, table, "n = u").kind == "full_scan"

    def test_null_literal_not_used_as_key(self, setup):
        catalog, table = setup
        assert path_for(catalog, table, "v = NULL").kind == "full_scan"

    def test_describe_is_readable(self, setup):
        catalog, table = setup
        assert "PK LOOKUP" in path_for(catalog, table, "id = 1").describe()
        assert "FULL SCAN" in choose_access_path(catalog, table, None).describe()
        assert "INDEX RANGE" in path_for(catalog, table, "n < 2").describe()


class TestCandidateRowids:
    def test_full_scan_returns_all(self, setup):
        catalog, table = setup
        path = choose_access_path(catalog, table, None)
        assert len(candidate_rowids(catalog, table, path)) == 20

    def test_pk_lookup_single(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "id = 3")
        assert candidate_rowids(catalog, table, path) == [3]

    def test_pk_lookup_missing_key_empty(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "id = 999")
        assert candidate_rowids(catalog, table, path) == []

    def test_index_lookup_candidates_superset_safe(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "v = 'v1'")
        rowids = candidate_rowids(catalog, table, path)
        assert rowids == [1, 6, 11, 16]

    def test_index_in_deduplicates(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "v IN ('v1', 'v1')")
        rowids = candidate_rowids(catalog, table, path)
        assert rowids == sorted(set(rowids))

    def test_range_candidates(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "n BETWEEN 2 AND 4")
        assert candidate_rowids(catalog, table, path) == [2, 3, 4]

    def test_dropped_index_falls_back_to_scan(self, setup):
        catalog, table = setup
        path = path_for(catalog, table, "v = 'v1'")
        catalog.drop_index("iv")
        assert len(candidate_rowids(catalog, table, path)) == 20
