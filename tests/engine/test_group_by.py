"""Tests for GROUP BY / HAVING execution."""

import pytest

from repro.engine import Database
from repro.engine.errors import ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE sales (id INTEGER PRIMARY KEY, region TEXT, "
        "amount FLOAT, units INTEGER)"
    )
    database.execute(
        "INSERT INTO sales VALUES "
        "(1, 'north', 10.0, 1), (2, 'north', 20.0, 2), "
        "(3, 'south', 5.0, 1), (4, 'south', 15.0, 3), "
        "(5, 'east', 40.0, 4), (6, 'north', NULL, 1)"
    )
    return database


class TestGroupBy:
    def test_count_per_group(self, db):
        rows = db.query(
            "SELECT region, COUNT(*) FROM sales GROUP BY region"
        )
        assert sorted(rows) == [("east", 1), ("north", 3), ("south", 2)]

    def test_sum_and_avg_skip_nulls(self, db):
        rows = dict(
            db.query("SELECT region, SUM(amount) FROM sales GROUP BY region")
        )
        assert rows["north"] == 30.0  # NULL amount excluded

    def test_group_key_order_first_seen(self, db):
        rows = db.query("SELECT region, COUNT(*) FROM sales GROUP BY region")
        assert [region for region, _ in rows] == ["north", "south", "east"]

    def test_group_by_expression(self, db):
        rows = db.query(
            "SELECT units % 2, COUNT(*) FROM sales GROUP BY units % 2"
        )
        assert sorted(rows) == [(0, 2), (1, 4)]

    def test_multiple_group_keys(self, db):
        rows = db.query(
            "SELECT region, units, COUNT(*) FROM sales "
            "GROUP BY region, units"
        )
        assert ("north", 1, 2) in rows

    def test_non_aggregate_item_takes_group_value(self, db):
        rows = db.query(
            "SELECT region, MIN(amount) FROM sales GROUP BY region"
        )
        assert dict(rows)["south"] == 5.0

    def test_order_by_aggregate_alias(self, db):
        rows = db.query(
            "SELECT region, SUM(amount) AS total FROM sales "
            "GROUP BY region ORDER BY total DESC"
        )
        assert rows[0] == ("east", 40.0)

    def test_order_by_aggregate_label(self, db):
        rows = db.query(
            "SELECT region, COUNT(*) FROM sales GROUP BY region "
            "ORDER BY region"
        )
        assert [region for region, _ in rows] == ["east", "north", "south"]

    def test_limit_applies_to_groups(self, db):
        rows = db.query(
            "SELECT region, COUNT(*) FROM sales GROUP BY region "
            "ORDER BY region LIMIT 2"
        )
        assert len(rows) == 2

    def test_star_with_group_by_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT * FROM sales GROUP BY region")

    def test_empty_input_no_groups(self, db):
        rows = db.query(
            "SELECT region, COUNT(*) FROM sales WHERE id > 99 "
            "GROUP BY region"
        )
        assert rows == []

    def test_rowids_per_group(self, db):
        result = db.execute(
            "SELECT region, COUNT(*) FROM sales GROUP BY region"
        )
        # touched covers every member row of every surviving group.
        assert len(result.touched) == 6


class TestHaving:
    def test_having_filters_groups(self, db):
        rows = db.query(
            "SELECT region, COUNT(*) AS n FROM sales GROUP BY region "
            "HAVING n >= 2"
        )
        assert sorted(rows) == [("north", 3), ("south", 2)]

    def test_having_on_aggregate_label(self, db):
        rows = db.query(
            "SELECT region, SUM(amount) AS s FROM sales GROUP BY region "
            "HAVING s > 25"
        )
        assert sorted(rows) == [("east", 40.0), ("north", 30.0)]

    def test_having_on_group_column(self, db):
        rows = db.query(
            "SELECT region, COUNT(*) FROM sales GROUP BY region "
            "HAVING region = 'east'"
        )
        assert rows == [("east", 1)]

    def test_having_drops_all(self, db):
        rows = db.query(
            "SELECT region, COUNT(*) AS n FROM sales GROUP BY region "
            "HAVING n > 99"
        )
        assert rows == []


class TestGroupByThroughGuard:
    def test_guard_charges_group_members(self):
        from repro.core import DelayGuard, GuardConfig, VirtualClock

        db = Database()
        db.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, bucket TEXT)"
        )
        db.insert_rows("t", [(i, f"b{i % 2}") for i in range(1, 7)])
        guard = DelayGuard(
            db, config=GuardConfig(cap=1.0), clock=VirtualClock()
        )
        result = guard.execute(
            "SELECT bucket, COUNT(*) FROM t GROUP BY bucket"
        )
        # All six member rows charged at the cold cap.
        assert result.delay == pytest.approx(6.0)
