"""The database's snapshot epoch — the result cache's invalidation key.

`Database.mutation_epoch` is a monotonic counter of committed mutations:
any cache entry keyed on an older epoch can never describe current
data. These tests pin exactly when it moves (committed DML, DDL, bulk
loads, explicit-transaction COMMIT) and when it must not (reads,
rollbacks, zero-row DML), plus its alignment with the write-ahead
journal's sequence numbers.
"""

import pytest

from repro.engine import Database, WriteAheadJournal


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    database.execute("INSERT INTO t (id, v) VALUES (1, 'a')")
    database.execute("INSERT INTO t (id, v) VALUES (2, 'b')")
    return database


class TestEpochAdvances:
    def test_starts_at_zero(self):
        assert Database().mutation_epoch == 0

    def test_ddl_bumps(self):
        database = Database()
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        assert database.mutation_epoch == 1

    def test_each_committed_write_bumps_once(self, db):
        before = db.mutation_epoch
        db.execute("INSERT INTO t (id, v) VALUES (3, 'c')")
        assert db.mutation_epoch == before + 1
        db.execute("UPDATE t SET v = 'z' WHERE id = 1")
        assert db.mutation_epoch == before + 2
        db.execute("DELETE FROM t WHERE id = 2")
        assert db.mutation_epoch == before + 3

    def test_bulk_insert_rows_bumps(self, db):
        before = db.mutation_epoch
        db.insert_rows("t", [(7, "g"), (8, "h")])
        assert db.mutation_epoch == before + 1

    def test_reads_never_bump(self, db):
        before = db.mutation_epoch
        db.query("SELECT * FROM t")
        db.query("SELECT v FROM t WHERE id = 1")
        assert db.mutation_epoch == before

    def test_zero_row_dml_does_not_bump(self, db):
        # Mirrors the journal: a statement that changed nothing is not
        # a mutation, so cached results stay valid across it.
        before = db.mutation_epoch
        db.execute("UPDATE t SET v = 'x' WHERE id = 999")
        db.execute("DELETE FROM t WHERE id = 999")
        assert db.mutation_epoch == before


class TestEpochTransactions:
    def test_commit_bumps_once_for_whole_transaction(self, db):
        before = db.mutation_epoch
        db.execute("BEGIN")
        db.execute("INSERT INTO t (id, v) VALUES (3, 'c')")
        db.execute("UPDATE t SET v = 'z' WHERE id = 1")
        # Buffered writes are invisible, and so is the epoch move.
        assert db.mutation_epoch == before
        db.execute("COMMIT")
        assert db.mutation_epoch == before + 1

    def test_rollback_does_not_bump(self, db):
        before = db.mutation_epoch
        db.execute("BEGIN")
        db.execute("INSERT INTO t (id, v) VALUES (3, 'c')")
        db.execute("ROLLBACK")
        assert db.mutation_epoch == before

    def test_empty_commit_does_not_bump(self, db):
        before = db.mutation_epoch
        db.execute("BEGIN")
        db.execute("COMMIT")
        assert db.mutation_epoch == before


class TestEpochJournalAlignment:
    def test_epoch_tracks_journal_seq(self, tmp_path):
        # Journal attached from the first statement (what the service
        # does): the epoch rides the journal's sequence numbers exactly.
        database = Database()
        journal = WriteAheadJournal(tmp_path / "wal.log")
        database.attach_journal(journal)
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        database.execute("INSERT INTO t (id, v) VALUES (1, 'a')")
        database.execute("UPDATE t SET v = 'z' WHERE id = 1")
        assert database.mutation_epoch == journal.last_seq
        database.execute("BEGIN")
        database.execute("INSERT INTO t (id, v) VALUES (4, 'd')")
        database.execute("INSERT INTO t (id, v) VALUES (5, 'e')")
        database.execute("COMMIT")
        # A multi-statement transaction appends several journal records
        # but one COMMIT: the epoch jumps to the high-water mark.
        assert database.mutation_epoch == journal.last_seq
        journal.close()

    def test_epoch_catches_up_after_late_attach(self, db, tmp_path):
        # Mutations before the journal existed keep the epoch ahead of
        # the sequence numbers; it must stay monotonic regardless.
        journal = WriteAheadJournal(tmp_path / "wal.log")
        db.attach_journal(journal)
        before = db.mutation_epoch
        db.execute("INSERT INTO t (id, v) VALUES (3, 'c')")
        assert db.mutation_epoch == before + 1
        journal.close()


class TestBumpFloor:
    def test_bump_raises_to_floor(self, db):
        raised = db.bump_mutation_epoch(1000)
        assert raised == 1000
        assert db.mutation_epoch == 1000

    def test_bump_never_lowers(self, db):
        current = db.mutation_epoch
        assert db.bump_mutation_epoch(0) == current
        assert db.mutation_epoch == current

    def test_writes_continue_past_floor(self, db):
        db.bump_mutation_epoch(50)
        db.execute("INSERT INTO t (id, v) VALUES (3, 'c')")
        assert db.mutation_epoch == 51
