"""Tests for database persistence and CSV import/export."""

import json

import pytest

from repro.engine import (
    Database,
    PersistenceError,
    dump_database,
    export_csv,
    import_csv,
    load_database,
    open_database,
    save_database,
)
from repro.engine.errors import CatalogError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score FLOAT, "
        "ok BOOLEAN)"
    )
    database.execute(
        "INSERT INTO t VALUES (1, 'a', 1.5, TRUE), (2, NULL, NULL, FALSE), "
        "(3, 'c', 3.5, TRUE)"
    )
    database.execute("CREATE INDEX iname ON t (name)")
    return database


class TestDumpLoad:
    def test_round_trip_rows(self, db):
        restored = load_database(dump_database(db))
        assert restored.query("SELECT * FROM t ORDER BY id") == db.query(
            "SELECT * FROM t ORDER BY id"
        )

    def test_round_trip_schema(self, db):
        restored = load_database(dump_database(db))
        schema = restored.catalog.table("t").schema
        assert schema.primary_key == "id"
        assert schema.column("score").dtype.value == "FLOAT"
        assert not schema.column("id").nullable

    def test_round_trip_indexes(self, db):
        restored = load_database(dump_database(db))
        assert restored.catalog.index_on("t", "name") is not None
        assert "INDEX" in restored.explain(
            "SELECT * FROM t WHERE name = 'a'"
        )

    def test_rowids_preserved_after_deletions(self, db):
        db.execute("DELETE FROM t WHERE id = 2")
        db.execute("INSERT INTO t VALUES (4, 'd', 4.0, TRUE)")
        original = sorted(db.catalog.table("t").rowids())
        restored = load_database(dump_database(db))
        assert sorted(restored.catalog.table("t").rowids()) == original

    def test_rowid_counter_not_reused_after_restore(self, db):
        db.execute("DELETE FROM t WHERE id = 3")
        restored = load_database(dump_database(db))
        new_rowid = restored.catalog.table("t").insert([9, "z", 0.0, True])
        assert new_rowid > 3  # never reuse the deleted row's id

    def test_multiple_tables(self, db):
        db.execute("CREATE TABLE u (k INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO u VALUES (7)")
        restored = load_database(dump_database(db))
        assert restored.catalog.table_names() == ["t", "u"]
        assert restored.query("SELECT k FROM u") == [(7,)]

    def test_wrong_format_rejected(self):
        with pytest.raises(PersistenceError, match="format"):
            load_database({"format": "something-else"})


class TestSaveOpen:
    def test_save_and_open(self, db, tmp_path):
        path = tmp_path / "db.json"
        save_database(db, path)
        restored = open_database(path)
        assert restored.query("SELECT COUNT(*) FROM t") == [(3,)]

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="no save file"):
            open_database(tmp_path / "nope.json")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError, match="corrupt"):
            open_database(path)

    def test_file_is_plain_json(self, db, tmp_path):
        path = tmp_path / "db.json"
        save_database(db, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-engine-v1"

    def test_guard_state_survives_reload(self, db, tmp_path):
        """Popularity keyed by (table, rowid) stays valid after reload."""
        from repro.core import DelayGuard, GuardConfig, VirtualClock

        guard = DelayGuard(
            db, config=GuardConfig(cap=5.0), clock=VirtualClock()
        )
        for _ in range(50):
            guard.execute("SELECT * FROM t WHERE id = 1")
        warm_delay = guard.delay_for("t", 1)

        path = tmp_path / "db.json"
        save_database(db, path)
        restored = open_database(path)
        guard.database = restored  # swap the engine under the guard
        result = guard.execute("SELECT * FROM t WHERE id = 1")
        assert result.delay == pytest.approx(warm_delay, rel=0.1)


class TestCsv:
    def test_export_then_import_round_trip(self, db, tmp_path):
        path = tmp_path / "t.csv"
        count = export_csv(db, "t", path)
        assert count == 3

        target = Database()
        target.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "score FLOAT, ok BOOLEAN)"
        )
        imported = import_csv(target, "t", path)
        assert imported == 3
        # NULL name round-trips as NULL via the empty field.
        assert target.query("SELECT name FROM t WHERE id = 2") == [(None,)]
        assert target.query("SELECT ok FROM t WHERE id = 1") == [(True,)]

    def test_import_with_create(self, db, tmp_path):
        path = tmp_path / "t.csv"
        export_csv(db, "t", path)
        target = Database()
        import_csv(target, "fresh", path, create=True)
        # created as all-TEXT
        assert target.query("SELECT id FROM fresh WHERE id = '1'") == [("1",)]

    def test_import_create_existing_rejected(self, db, tmp_path):
        path = tmp_path / "t.csv"
        export_csv(db, "t", path)
        with pytest.raises(CatalogError):
            import_csv(db, "t", path, create=True)

    def test_import_column_mismatch(self, db, tmp_path):
        path = tmp_path / "t.csv"
        export_csv(db, "t", path)
        target = Database()
        target.execute("CREATE TABLE t (only INTEGER)")
        with pytest.raises(PersistenceError, match="columns"):
            import_csv(target, "t", path)

    def test_import_missing_file(self, db, tmp_path):
        with pytest.raises(PersistenceError):
            import_csv(db, "t", tmp_path / "missing.csv")

    def test_import_empty_file(self, db, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(PersistenceError, match="empty"):
            import_csv(db, "t", path)

    def test_boolean_parsing_variants(self, db, tmp_path):
        path = tmp_path / "b.csv"
        path.write_text("id,name,score,ok\n9,x,0.5,yes\n10,y,0.5,0\n")
        target = Database()
        target.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "score FLOAT, ok BOOLEAN)"
        )
        import_csv(target, "t", path)
        assert target.query("SELECT ok FROM t ORDER BY id") == [
            (True,), (False,),
        ]

    def test_bad_boolean_rejected(self, db, tmp_path):
        path = tmp_path / "b.csv"
        path.write_text("id,name,score,ok\n9,x,0.5,maybe\n")
        target = Database()
        target.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "score FLOAT, ok BOOLEAN)"
        )
        with pytest.raises(PersistenceError, match="boolean"):
            import_csv(target, "t", path)

    def test_ragged_row_rejected_with_line_number(self, db, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("id,name,score,ok\n1,a,1.0,true\n2,b\n")
        target = Database()
        target.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "score FLOAT, ok BOOLEAN)"
        )
        with pytest.raises(PersistenceError, match="line 3"):
            import_csv(target, "t", path)
        # Nothing imported: validation precedes any insert.
        assert target.row_count("t") == 0

    def test_extra_field_rejected(self, db, tmp_path):
        path = tmp_path / "wide.csv"
        path.write_text("id,name,score,ok\n1,a,1.0,true,EXTRA\n")
        target = Database()
        target.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "score FLOAT, ok BOOLEAN)"
        )
        with pytest.raises(PersistenceError, match="line 2"):
            import_csv(target, "t", path)

    def test_unparsable_value_names_line(self, db, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,name,score,ok\n1,a,1.0,true\nnope,b,2.0,false\n")
        target = Database()
        target.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "score FLOAT, ok BOOLEAN)"
        )
        with pytest.raises(PersistenceError, match="line 3"):
            import_csv(target, "t", path)
        assert target.row_count("t") == 0

    def test_import_atomic_on_duplicate_key(self, db, tmp_path):
        """A failing row part-way through rolls the whole import back."""
        path = tmp_path / "dup.csv"
        path.write_text(
            "id,name,score,ok\n8,x,1.0,true\n8,y,2.0,false\n"
        )
        target = Database()
        target.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "score FLOAT, ok BOOLEAN)"
        )
        with pytest.raises(Exception):
            import_csv(target, "t", path)
        assert target.row_count("t") == 0

    def test_import_maintains_indexes(self, db, tmp_path):
        path = tmp_path / "t.csv"
        export_csv(db, "t", path)
        target = Database()
        target.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "score FLOAT, ok BOOLEAN)"
        )
        target.execute("CREATE INDEX iname ON t (name)")
        import_csv(target, "t", path)
        # The index answers queries over the imported rows.
        assert "INDEX" in target.explain("SELECT * FROM t WHERE name = 'a'")
        assert target.query("SELECT id FROM t WHERE name = 'a'") == [(1,)]


class TestAtomicSave:
    def test_save_replaces_atomically(self, db, tmp_path):
        path = tmp_path / "db.json"
        save_database(db, path)
        first = path.read_text()
        db.execute("INSERT INTO t VALUES (4, 'd', 4.0, TRUE)")
        save_database(db, path)
        assert path.read_text() != first
        assert open_database(path).row_count("t") == 4

    def test_failed_save_preserves_previous_file(self, db, tmp_path):
        path = tmp_path / "db.json"
        save_database(db, path)
        before = path.read_text()

        from repro.engine.persistence import atomic_write_json

        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert path.read_text() == before

    def test_failed_save_leaves_no_temp_files(self, db, tmp_path):
        path = tmp_path / "db.json"
        from repro.engine.persistence import atomic_write_json

        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert list(tmp_path.iterdir()) == []

    def test_rekey_after_deletions_keeps_pk_index(self, db, tmp_path):
        """The rekey path must fix _pk_index too, not just rowids."""
        db.execute("DELETE FROM t WHERE id = 1")
        db.execute("INSERT INTO t VALUES (5, 'e', 5.0, TRUE)")
        restored = load_database(dump_database(db))
        # Point lookups go through the pk index; a stale index would
        # miss or return the wrong row.
        assert restored.query("SELECT name FROM t WHERE id = 5") == [("e",)]
        assert restored.query("SELECT name FROM t WHERE id = 1") == []
        heap = restored.catalog.table("t")
        assert sorted(heap.rowids()) == sorted(db.catalog.table("t").rowids())
        # Inserting a duplicate pk must still be caught by the index.
        with pytest.raises(Exception):
            heap.insert([5, "dup", 0.0, True])
