"""Tests for database persistence and CSV import/export."""

import json

import pytest

from repro.engine import (
    Database,
    PersistenceError,
    dump_database,
    export_csv,
    import_csv,
    load_database,
    open_database,
    save_database,
)
from repro.engine.errors import CatalogError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score FLOAT, "
        "ok BOOLEAN)"
    )
    database.execute(
        "INSERT INTO t VALUES (1, 'a', 1.5, TRUE), (2, NULL, NULL, FALSE), "
        "(3, 'c', 3.5, TRUE)"
    )
    database.execute("CREATE INDEX iname ON t (name)")
    return database


class TestDumpLoad:
    def test_round_trip_rows(self, db):
        restored = load_database(dump_database(db))
        assert restored.query("SELECT * FROM t ORDER BY id") == db.query(
            "SELECT * FROM t ORDER BY id"
        )

    def test_round_trip_schema(self, db):
        restored = load_database(dump_database(db))
        schema = restored.catalog.table("t").schema
        assert schema.primary_key == "id"
        assert schema.column("score").dtype.value == "FLOAT"
        assert not schema.column("id").nullable

    def test_round_trip_indexes(self, db):
        restored = load_database(dump_database(db))
        assert restored.catalog.index_on("t", "name") is not None
        assert "INDEX" in restored.explain(
            "SELECT * FROM t WHERE name = 'a'"
        )

    def test_rowids_preserved_after_deletions(self, db):
        db.execute("DELETE FROM t WHERE id = 2")
        db.execute("INSERT INTO t VALUES (4, 'd', 4.0, TRUE)")
        original = sorted(db.catalog.table("t").rowids())
        restored = load_database(dump_database(db))
        assert sorted(restored.catalog.table("t").rowids()) == original

    def test_rowid_counter_not_reused_after_restore(self, db):
        db.execute("DELETE FROM t WHERE id = 3")
        restored = load_database(dump_database(db))
        new_rowid = restored.catalog.table("t").insert([9, "z", 0.0, True])
        assert new_rowid > 3  # never reuse the deleted row's id

    def test_multiple_tables(self, db):
        db.execute("CREATE TABLE u (k INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO u VALUES (7)")
        restored = load_database(dump_database(db))
        assert restored.catalog.table_names() == ["t", "u"]
        assert restored.query("SELECT k FROM u") == [(7,)]

    def test_wrong_format_rejected(self):
        with pytest.raises(PersistenceError, match="format"):
            load_database({"format": "something-else"})


class TestSaveOpen:
    def test_save_and_open(self, db, tmp_path):
        path = tmp_path / "db.json"
        save_database(db, path)
        restored = open_database(path)
        assert restored.query("SELECT COUNT(*) FROM t") == [(3,)]

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="no save file"):
            open_database(tmp_path / "nope.json")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError, match="corrupt"):
            open_database(path)

    def test_file_is_plain_json(self, db, tmp_path):
        path = tmp_path / "db.json"
        save_database(db, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-engine-v1"

    def test_guard_state_survives_reload(self, db, tmp_path):
        """Popularity keyed by (table, rowid) stays valid after reload."""
        from repro.core import DelayGuard, GuardConfig, VirtualClock

        guard = DelayGuard(
            db, config=GuardConfig(cap=5.0), clock=VirtualClock()
        )
        for _ in range(50):
            guard.execute("SELECT * FROM t WHERE id = 1")
        warm_delay = guard.delay_for("t", 1)

        path = tmp_path / "db.json"
        save_database(db, path)
        restored = open_database(path)
        guard.database = restored  # swap the engine under the guard
        result = guard.execute("SELECT * FROM t WHERE id = 1")
        assert result.delay == pytest.approx(warm_delay, rel=0.1)


class TestCsv:
    def test_export_then_import_round_trip(self, db, tmp_path):
        path = tmp_path / "t.csv"
        count = export_csv(db, "t", path)
        assert count == 3

        target = Database()
        target.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "score FLOAT, ok BOOLEAN)"
        )
        imported = import_csv(target, "t", path)
        assert imported == 3
        # NULL name round-trips as NULL via the empty field.
        assert target.query("SELECT name FROM t WHERE id = 2") == [(None,)]
        assert target.query("SELECT ok FROM t WHERE id = 1") == [(True,)]

    def test_import_with_create(self, db, tmp_path):
        path = tmp_path / "t.csv"
        export_csv(db, "t", path)
        target = Database()
        import_csv(target, "fresh", path, create=True)
        # created as all-TEXT
        assert target.query("SELECT id FROM fresh WHERE id = '1'") == [("1",)]

    def test_import_create_existing_rejected(self, db, tmp_path):
        path = tmp_path / "t.csv"
        export_csv(db, "t", path)
        with pytest.raises(CatalogError):
            import_csv(db, "t", path, create=True)

    def test_import_column_mismatch(self, db, tmp_path):
        path = tmp_path / "t.csv"
        export_csv(db, "t", path)
        target = Database()
        target.execute("CREATE TABLE t (only INTEGER)")
        with pytest.raises(PersistenceError, match="columns"):
            import_csv(target, "t", path)

    def test_import_missing_file(self, db, tmp_path):
        with pytest.raises(PersistenceError):
            import_csv(db, "t", tmp_path / "missing.csv")

    def test_import_empty_file(self, db, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(PersistenceError, match="empty"):
            import_csv(db, "t", path)

    def test_boolean_parsing_variants(self, db, tmp_path):
        path = tmp_path / "b.csv"
        path.write_text("id,name,score,ok\n9,x,0.5,yes\n10,y,0.5,0\n")
        target = Database()
        target.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "score FLOAT, ok BOOLEAN)"
        )
        import_csv(target, "t", path)
        assert target.query("SELECT ok FROM t ORDER BY id") == [
            (True,), (False,),
        ]

    def test_bad_boolean_rejected(self, db, tmp_path):
        path = tmp_path / "b.csv"
        path.write_text("id,name,score,ok\n9,x,0.5,maybe\n")
        target = Database()
        target.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "score FLOAT, ok BOOLEAN)"
        )
        with pytest.raises(PersistenceError, match="boolean"):
            import_csv(target, "t", path)
