"""Concurrency tests for the engine's read/write lock and Database.

The engine replaced "one statement at a time" with a writer-preferring
read/write lock owned by :class:`repro.engine.Database`: SELECTs share
the read side while DML/DDL take the exclusive write side. These tests
drive real reader and writer threads against one database and check the
invariants that lock is supposed to provide — no torn rows, no lost
index entries, writers not starved, and reentrancy for the owning
thread.
"""

import threading
import time

import pytest

from repro.engine import Database, LockError, ReadWriteLock


def make_db(rows=200):
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)"
    )
    database.insert_rows("t", [(i, i, i) for i in range(1, rows + 1)])
    database.execute("CREATE INDEX idx_a ON t (a)")
    return database


def run_threads(threads, timeout=30):
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "worker thread deadlocked"


class TestReadWriteLockUnit:
    def test_read_reentrant(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with lock.read_locked():
                assert lock.active_readers >= 1

    def test_write_reentrant(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.write_locked():
                assert lock.write_locked_now

    def test_writer_may_nest_reads(self):
        # A write transaction that internally calls a read helper (the
        # guard's population() inside a pipeline, say) must not
        # self-deadlock.
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.read_locked():
                assert lock.write_locked_now

    def test_sole_reader_may_upgrade(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with lock.write_locked():
                assert lock.write_locked_now
            # Downgrade back to the still-held read side.
            assert not lock.write_locked_now
            assert lock.active_readers == 1

    def test_shared_read_upgrade_refused(self):
        lock = ReadWriteLock()
        other_holding = threading.Event()
        release_other = threading.Event()

        def other_reader():
            with lock.read_locked():
                other_holding.set()
                release_other.wait(timeout=10)

        thread = threading.Thread(target=other_reader)
        thread.start()
        assert other_holding.wait(timeout=10)
        try:
            with lock.read_locked():
                with pytest.raises(LockError):
                    lock.acquire_write()
        finally:
            release_other.set()
            thread.join(timeout=10)

    def test_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        writer_in = threading.Event()
        release_writer = threading.Event()
        reader_got_in = threading.Event()

        def writer():
            with lock.write_locked():
                writer_in.set()
                release_writer.wait(timeout=10)

        def reader():
            with lock.read_locked():
                reader_got_in.set()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        assert writer_in.wait(timeout=10)
        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        # The reader must be parked while the writer holds the lock.
        assert not reader_got_in.wait(timeout=0.2)
        release_writer.set()
        assert reader_got_in.wait(timeout=10)
        writer_thread.join(timeout=10)
        reader_thread.join(timeout=10)

    def test_telemetry_counts_acquisitions(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            pass
        with lock.write_locked():
            time.sleep(0.01)
        assert lock.read_acquisitions == 1
        assert lock.write_acquisitions == 1
        assert lock.write_hold_seconds >= 0.01


class TestConcurrentReadersAndWriters:
    def test_readers_see_no_torn_rows_under_updates(self):
        """UPDATE rewrites (a, b) together; a scan must never observe
        a row where a != b (half of an update)."""
        database = make_db(rows=100)
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                result = database.execute("SELECT a, b FROM t")
                for a, b in result.rows:
                    if a != b:
                        torn.append((a, b))
                        return

        def writer():
            for round_number in range(30):
                shift = (round_number + 1) * 1000
                database.execute(
                    f"UPDATE t SET a = id + {shift}, b = id + {shift}"
                )
            stop.set()

        readers = [threading.Thread(target=reader) for _ in range(4)]
        run_threads(readers + [threading.Thread(target=writer)])
        stop.set()
        assert torn == [], f"torn rows observed: {torn[:5]}"

    def test_joins_against_concurrent_inserts_are_consistent(self):
        """A self-join under the read lock sees one stable snapshot:
        every joined pair agrees, and the row count is one the table
        actually had at some instant (a multiple of the batch size)."""
        database = Database()
        database.execute(
            "CREATE TABLE left_t (id INTEGER PRIMARY KEY, v INTEGER)"
        )
        database.execute(
            "CREATE TABLE right_t (id INTEGER PRIMARY KEY, v INTEGER)"
        )
        batch = 10
        seed = [(i, i) for i in range(1, batch + 1)]
        database.insert_rows("left_t", seed)
        database.insert_rows("right_t", seed)
        stop = threading.Event()
        bad_counts = []

        def reader():
            while not stop.is_set():
                result = database.execute(
                    "SELECT left_t.id, right_t.v FROM left_t "
                    "JOIN right_t ON left_t.id = right_t.id"
                )
                if len(result.rows) % batch != 0:
                    bad_counts.append(len(result.rows))
                    return

        def writer():
            for round_number in range(1, 20):
                base = round_number * batch
                fresh = [(base + i, base + i) for i in range(1, batch + 1)]
                # Each side grows by a full batch inside one statement,
                # so any consistent join snapshot is a batch multiple.
                database.insert_rows("left_t", fresh)
                database.insert_rows("right_t", fresh)
            stop.set()

        readers = [threading.Thread(target=reader) for _ in range(3)]
        run_threads(readers + [threading.Thread(target=writer)])
        stop.set()
        assert bad_counts == [], f"inconsistent join sizes: {bad_counts[:5]}"

    def test_no_lost_index_entries_under_concurrent_traffic(self):
        """Index lookups during INSERT/UPDATE churn: afterwards the
        index answers exactly the rows a full scan finds."""
        database = make_db(rows=50)
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                # Planner uses idx_a for this equality predicate.
                database.execute("SELECT * FROM t WHERE a = 25")

        def inserter():
            for i in range(51, 151):
                database.execute(
                    f"INSERT INTO t VALUES ({i}, {i}, {i})"
                )

        def updater():
            for i in range(1, 51):
                database.execute(
                    f"UPDATE t SET a = {i + 500}, b = {i + 500} "
                    f"WHERE id = {i}"
                )

        threads = [threading.Thread(target=reader) for _ in range(2)]
        threads.append(threading.Thread(target=inserter))
        threads.append(threading.Thread(target=updater))
        for thread in threads[2:]:
            thread.start()
        for thread in threads[:2]:
            thread.start()
        for thread in threads[2:]:
            thread.join(timeout=30)
            assert not thread.is_alive()
        stop.set()
        for thread in threads[:2]:
            thread.join(timeout=30)
            assert not thread.is_alive()

        # Every tuple must be findable through the index.
        expected = dict(
            (row[0], row[1])
            for row in database.execute("SELECT id, a FROM t").rows
        )
        assert len(expected) == 150
        for rowid_value, a_value in expected.items():
            hit = database.execute(
                f"SELECT id FROM t WHERE a = {a_value}"
            )
            assert (rowid_value,) in hit.rows, (
                f"index lost id={rowid_value} (a={a_value})"
            )

    def test_writer_not_starved_by_reader_stream(self):
        """Writer preference: a writer queued behind a continuous
        stream of readers still gets in promptly."""
        database = make_db(rows=20)
        stop = threading.Event()
        wrote = threading.Event()

        def reader():
            while not stop.is_set():
                database.execute("SELECT * FROM t WHERE id = 1")

        def writer():
            database.execute("UPDATE t SET a = 999 WHERE id = 1")
            wrote.set()

        readers = [threading.Thread(target=reader) for _ in range(6)]
        for thread in readers:
            thread.start()
        time.sleep(0.05)  # readers saturating the lock
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        finished = wrote.wait(timeout=10)
        stop.set()
        writer_thread.join(timeout=10)
        for thread in readers:
            thread.join(timeout=10)
        assert finished, "writer starved behind reader stream"
        result = database.execute("SELECT a FROM t WHERE id = 1")
        assert result.rows == [(999,)]

    def test_transactions_are_exclusive(self):
        """The engine allows one open explicit transaction at a time;
        a concurrent BEGIN fails cleanly with TransactionError rather
        than corrupting the first transaction's undo state. Transactors
        that retry BEGIN therefore serialise, and disjoint-key updates
        all land (no lost updates)."""
        from repro.engine.transactions import TransactionError

        database = make_db(rows=10)

        def transactor(offset):
            deadline = time.monotonic() + 20
            while True:
                try:
                    database.execute("BEGIN")
                    break
                except TransactionError:
                    assert time.monotonic() < deadline, "BEGIN never won"
                    time.sleep(0.001)
            try:
                for i in range(1, 6):
                    key = offset + i
                    database.execute(
                        f"UPDATE t SET b = {key * 10} WHERE id = {key}"
                    )
            except Exception:
                database.execute("ROLLBACK")
                raise
            database.execute("COMMIT")

        # Disjoint key ranges: 1-5 and 6-10.
        run_threads(
            [
                threading.Thread(target=transactor, args=(0,)),
                threading.Thread(target=transactor, args=(5,)),
            ]
        )
        rows = database.execute("SELECT id, b FROM t").rows
        assert sorted(rows) == [(i, i * 10) for i in range(1, 11)]

    def test_read_view_reentrant_inside_read_view(self):
        database = make_db(rows=5)
        with database.read_view():
            with database.read_view():
                result = database.execute("SELECT * FROM t WHERE id = 1")
                assert result.rowcount == 1

    def test_write_txn_may_execute_reads_and_writes(self):
        database = make_db(rows=5)
        with database.write_txn():
            database.execute("UPDATE t SET a = 7 WHERE id = 1")
            result = database.execute("SELECT a FROM t WHERE id = 1")
            assert result.rows == [(7,)]

    def test_dump_waits_for_active_reader(self):
        """Persistence takes the write side: a dump started while a
        reader holds the lock completes only after the reader leaves,
        and captures a consistent snapshot."""
        from repro.engine import dump_database, load_database

        database = make_db(rows=10)
        reader_in = threading.Event()
        release_reader = threading.Event()
        payload_holder = {}

        def long_reader():
            with database.read_view():
                reader_in.set()
                release_reader.wait(timeout=10)

        def dumper():
            payload_holder["payload"] = dump_database(database)

        reader_thread = threading.Thread(target=long_reader)
        reader_thread.start()
        assert reader_in.wait(timeout=10)
        dump_thread = threading.Thread(target=dumper)
        dump_thread.start()
        assert not payload_holder, "dump proceeded under an active reader"
        release_reader.set()
        dump_thread.join(timeout=10)
        reader_thread.join(timeout=10)
        assert "payload" in payload_holder
        restored = load_database(payload_holder["payload"])
        assert restored.row_count("t") == 10
