"""Tests for the write-ahead journal: framing, torn tails, checkpoints."""

import pytest

from repro.engine import (
    Database,
    JournalError,
    WriteAheadJournal,
    checkpoint_database,
    recover_database,
    scan_journal,
)
from repro.engine.journal import MAGIC, _HEADER


@pytest.fixture
def path(tmp_path):
    return tmp_path / "journal.bin"


class TestFraming:
    def test_round_trip(self, path):
        with WriteAheadJournal(path) as journal:
            journal.append({"k": "sql", "sql": "INSERT INTO t VALUES (1)"})
            journal.append({"k": "sql", "sql": "DELETE FROM t WHERE id = 1"})
        scan = scan_journal(path)
        assert not scan.torn
        assert [r.payload["sql"] for r in scan.records] == [
            "INSERT INTO t VALUES (1)",
            "DELETE FROM t WHERE id = 1",
        ]

    def test_sequence_numbers_monotonic(self, path):
        with WriteAheadJournal(path) as journal:
            first = journal.append({"k": "sql", "sql": "a"})
            batch = journal.append_many(
                [{"k": "sql", "sql": "b"}, {"k": "sql", "sql": "c"}]
            )
        assert first == 1
        assert batch == [2, 3]
        assert [r.seq for r in scan_journal(path).records] == [1, 2, 3]

    def test_missing_file_scans_empty(self, path):
        scan = scan_journal(path)
        assert scan.records == []
        assert not scan.torn
        assert scan.last_seq == 0

    def test_wrong_file_raises(self, path):
        path.write_bytes(b'{"this": "is json, not a journal"}')
        with pytest.raises(JournalError):
            scan_journal(path)

    def test_clock_stamps_ts(self, path):
        class FixedClock:
            def now(self):
                return 42.5

        with WriteAheadJournal(path, clock=FixedClock()) as journal:
            journal.append({"k": "sql", "sql": "a"})
        assert scan_journal(path).records[0].payload["ts"] == 42.5

    def test_append_many_single_fsync(self, path):
        with WriteAheadJournal(path) as journal:
            baseline = journal.fsyncs
            journal.append_many([{"k": "sql", "sql": s} for s in "abcde"])
            assert journal.fsyncs == baseline + 1

    def test_closed_journal_rejects_appends(self, path):
        journal = WriteAheadJournal(path)
        journal.close()
        with pytest.raises(JournalError):
            journal.append({"k": "sql", "sql": "a"})


class TestReopen:
    def test_sequence_continues_across_reopen(self, path):
        with WriteAheadJournal(path) as journal:
            journal.append({"k": "sql", "sql": "a"})
            journal.append({"k": "sql", "sql": "b"})
        with WriteAheadJournal(path) as journal:
            assert journal.last_seq == 2
            assert journal.append({"k": "sql", "sql": "c"}) == 3

    def test_sequence_continues_across_truncate(self, path):
        with WriteAheadJournal(path) as journal:
            journal.append({"k": "sql", "sql": "a"})
            journal.append({"k": "sql", "sql": "b"})
            journal.truncate()
            assert journal.size_bytes == len(MAGIC)
            # seq keeps counting: snapshot_seq comparisons stay valid.
            assert journal.append({"k": "sql", "sql": "c"}) == 3
        assert [r.seq for r in scan_journal(path).records] == [3]


class TestTornTails:
    def _write_valid(self, path, count=3):
        with WriteAheadJournal(path) as journal:
            for index in range(count):
                journal.append({"k": "sql", "sql": f"stmt-{index}"})
        return path.read_bytes()

    def test_truncated_payload_detected(self, path):
        data = self._write_valid(path)
        path.write_bytes(data[:-3])
        scan = scan_journal(path)
        assert scan.torn
        assert len(scan.records) == 2

    def test_truncated_header_detected(self, path):
        data = self._write_valid(path, count=1)
        path.write_bytes(data + b"\x00\x00")
        scan = scan_journal(path)
        assert scan.torn
        assert len(scan.records) == 1

    def test_corrupt_checksum_detected(self, path):
        data = bytearray(self._write_valid(path))
        data[-1] ^= 0xFF  # flip a byte in the last payload
        path.write_bytes(bytes(data))
        scan = scan_journal(path)
        assert scan.torn
        assert len(scan.records) == 2

    def test_absurd_length_treated_as_corruption(self, path):
        data = self._write_valid(path, count=1)
        bogus = _HEADER.pack(2**31, 0)
        path.write_bytes(data + bogus + b"xx")
        scan = scan_journal(path)
        assert scan.torn
        assert len(scan.records) == 1

    def test_reopen_truncates_torn_tail(self, path):
        data = self._write_valid(path)
        path.write_bytes(data + b"\x01\x02\x03garbage")
        with WriteAheadJournal(path) as journal:
            assert journal.torn_bytes_truncated > 0
            assert journal.last_seq == 3
            journal.append({"k": "sql", "sql": "after"})
        scan = scan_journal(path)
        assert not scan.torn
        assert [r.seq for r in scan.records] == [1, 2, 3, 4]

    def test_partial_magic_starts_fresh(self, path):
        path.write_bytes(MAGIC[:3])
        with WriteAheadJournal(path) as journal:
            assert journal.last_seq == 0
            journal.append({"k": "sql", "sql": "a"})
        assert len(scan_journal(path).records) == 1

    def test_every_truncation_point_recovers(self, path, tmp_path):
        """Cutting the journal at *any* byte yields a valid prefix."""
        data = self._write_valid(path)
        copy = tmp_path / "cut.bin"
        for cut in range(len(MAGIC), len(data)):
            copy.write_bytes(data[:cut])
            scan = scan_journal(copy)
            replayed = [r.payload["sql"] for r in scan.records]
            assert replayed == [f"stmt-{i}" for i in range(len(replayed))]


class TestDatabaseIntegration:
    def _build(self, path):
        database = Database()
        journal = WriteAheadJournal(path)
        database.attach_journal(journal)
        database.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
        )
        database.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
        return database, journal

    def test_recovery_replays_committed_statements(self, path):
        database, _ = self._build(path)
        database.execute("UPDATE t SET v = 'ONE' WHERE id = 1")
        recovered, report = recover_database(None, path)
        assert recovered.query("SELECT * FROM t ORDER BY id") == (
            database.query("SELECT * FROM t ORDER BY id")
        )
        assert report.replayed_statements == 3
        assert not report.snapshot_loaded

    def test_rowids_preserved_through_recovery(self, path):
        database, _ = self._build(path)
        database.execute("DELETE FROM t WHERE id = 1")
        database.execute("INSERT INTO t VALUES (3, 'three')")
        recovered, _ = recover_database(None, path)
        assert recovered.table("t").rowids() == database.table("t").rowids()

    def test_rolled_back_transaction_not_journalled(self, path):
        database, journal = self._build(path)
        database.execute("BEGIN")
        database.execute("INSERT INTO t VALUES (9, 'discarded')")
        database.execute("ROLLBACK")
        recovered, _ = recover_database(None, path)
        assert recovered.query("SELECT id FROM t ORDER BY id") == [(1,), (2,)]

    def test_open_transaction_lost_on_crash(self, path):
        database, journal = self._build(path)
        database.execute("BEGIN")
        database.execute("INSERT INTO t VALUES (9, 'uncommitted')")
        # Crash before COMMIT: the journal holds only committed work.
        recovered, _ = recover_database(None, path)
        assert recovered.query("SELECT id FROM t ORDER BY id") == [(1,), (2,)]

    def test_committed_transaction_is_one_batch(self, path):
        database, journal = self._build(path)
        fsyncs_before = journal.fsyncs
        database.execute("BEGIN")
        database.execute("INSERT INTO t VALUES (3, 'x')")
        database.execute("INSERT INTO t VALUES (4, 'y')")
        database.execute("COMMIT")
        assert journal.fsyncs == fsyncs_before + 1
        recovered, _ = recover_database(None, path)
        assert recovered.row_count("t") == 4

    def test_zero_row_dml_not_journalled(self, path):
        database, journal = self._build(path)
        before = journal.records_written
        database.execute("UPDATE t SET v = 'z' WHERE id = 999")
        assert journal.records_written == before

    def test_bulk_insert_journalled(self, path):
        database, _ = self._build(path)
        database.insert_rows("t", [[3, "three"], [4, "four"]])
        recovered, _ = recover_database(None, path)
        assert recovered.row_count("t") == 4
        assert recovered.table("t").rowids() == database.table("t").rowids()

    def test_checkpoint_truncates_and_recovery_skips(self, path, tmp_path):
        database, journal = self._build(path)
        snapshot = tmp_path / "snapshot.json"
        seq = checkpoint_database(database, snapshot)
        assert seq == journal.last_seq
        assert journal.size_bytes == len(MAGIC)
        database.execute("INSERT INTO t VALUES (3, 'post')")
        recovered, report = recover_database(snapshot, path)
        assert report.snapshot_loaded
        assert report.snapshot_seq == seq
        assert report.replayed_statements == 1
        assert recovered.query("SELECT id FROM t ORDER BY id") == (
            database.query("SELECT id FROM t ORDER BY id")
        )

    def test_crash_between_snapshot_and_truncate_not_double_applied(
        self, path, tmp_path
    ):
        """The checkpoint crash window: snapshot written, journal intact."""
        database, journal = self._build(path)
        snapshot = tmp_path / "snapshot.json"
        from repro.engine import atomic_write_json, dump_database

        payload = dump_database(database)
        payload["journal_seq"] = journal.last_seq
        atomic_write_json(snapshot, payload)
        # "Crash" here — journal never truncated. Recovery must skip
        # the records the snapshot already contains.
        recovered, report = recover_database(snapshot, path)
        assert report.skipped_records == 2
        assert report.replayed_statements == 0
        assert recovered.query("SELECT * FROM t ORDER BY id") == (
            database.query("SELECT * FROM t ORDER BY id")
        )

    def test_preparsed_statement_without_source_rejected(self, path):
        from repro.engine.parser.parser import parse

        database, _ = self._build(path)
        statement = parse("INSERT INTO t VALUES (7, 'seven')")
        with pytest.raises(JournalError):
            database.execute(statement)

    def test_preparsed_select_needs_no_source(self, path):
        from repro.engine.parser.parser import parse

        database, _ = self._build(path)
        statement = parse("SELECT * FROM t")
        assert len(database.execute(statement).rows) == 2
