"""Tests for transactions and statement-level atomicity."""

import pytest

from repro.engine import Database
from repro.engine.errors import ConstraintError
from repro.engine.transactions import TransactionError, UndoLog


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    database.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    return database


def rows(db):
    return db.query("SELECT * FROM t ORDER BY id")


class TestRollback:
    def test_rollback_insert(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (4, 'd')")
        db.execute("ROLLBACK")
        assert rows(db) == [(1, "a"), (2, "b"), (3, "c")]

    def test_rollback_update_restores_values(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE t SET v = 'X'")
        db.execute("ROLLBACK")
        assert rows(db) == [(1, "a"), (2, "b"), (3, "c")]

    def test_rollback_delete_restores_rows_and_rowids(self, db):
        original_rowids = sorted(db.catalog.table("t").rowids())
        db.execute("BEGIN")
        db.execute("DELETE FROM t WHERE id = 2")
        db.execute("ROLLBACK")
        assert rows(db) == [(1, "a"), (2, "b"), (3, "c")]
        assert sorted(db.catalog.table("t").rowids()) == original_rowids

    def test_rollback_mixed_sequence(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE t SET v = 'X' WHERE id = 1")
        db.execute("DELETE FROM t WHERE id = 2")
        db.execute("INSERT INTO t VALUES (4, 'd')")
        db.execute("UPDATE t SET v = 'Y' WHERE id = 4")
        db.execute("ROLLBACK")
        assert rows(db) == [(1, "a"), (2, "b"), (3, "c")]

    def test_rollback_keeps_indexes_consistent(self, db):
        db.execute("CREATE INDEX iv ON t (v)")
        db.execute("BEGIN")
        db.execute("UPDATE t SET v = 'zzz' WHERE id = 1")
        db.execute("ROLLBACK")
        assert db.query("SELECT id FROM t WHERE v = 'a'") == [(1,)]
        assert db.query("SELECT id FROM t WHERE v = 'zzz'") == []

    def test_rollback_update_of_pk(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE t SET id = 99 WHERE id = 1")
        db.execute("ROLLBACK")
        assert db.query("SELECT v FROM t WHERE id = 1") == [("a",)]
        assert db.query("SELECT v FROM t WHERE id = 99") == []


class TestCommit:
    def test_commit_keeps_changes(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE t SET v = 'X' WHERE id = 1")
        db.execute("COMMIT")
        assert db.query("SELECT v FROM t WHERE id = 1") == [("X",)]

    def test_commit_ends_transaction(self, db):
        db.execute("BEGIN")
        db.execute("COMMIT")
        assert not db.in_transaction

    def test_keyword_variants(self, db):
        db.execute("BEGIN TRANSACTION")
        db.execute("COMMIT WORK")
        db.execute("BEGIN WORK")
        db.execute("ROLLBACK TRANSACTION")

    def test_changes_after_commit_are_independent(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE t SET v = 'X' WHERE id = 1")
        db.execute("COMMIT")
        db.execute("BEGIN")
        db.execute("UPDATE t SET v = 'Y' WHERE id = 2")
        db.execute("ROLLBACK")
        assert rows(db) == [(1, "X"), (2, "b"), (3, "c")]


class TestControlErrors:
    def test_nested_begin_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError, match="already open"):
            db.execute("BEGIN")

    def test_commit_without_begin(self, db):
        with pytest.raises(TransactionError, match="no transaction"):
            db.execute("COMMIT")

    def test_rollback_without_begin(self, db):
        with pytest.raises(TransactionError, match="no transaction"):
            db.execute("ROLLBACK")

    def test_ddl_rejected_in_transaction(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError, match="DDL"):
            db.execute("CREATE TABLE u (a INTEGER)")
        with pytest.raises(TransactionError, match="DDL"):
            db.execute("DROP TABLE t")
        db.execute("ROLLBACK")

    def test_python_api(self, db):
        db.begin()
        assert db.in_transaction
        db.execute("DELETE FROM t")
        assert db.rollback() == 3
        assert len(rows(db)) == 3


class TestStatementAtomicity:
    def test_multi_row_insert_atomic(self, db):
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (4, 'd'), (5, 'e'), (1, 'dup')")
        # Rows 4 and 5 must not have survived the failed statement.
        assert rows(db) == [(1, "a"), (2, "b"), (3, "c")]

    def test_update_hitting_pk_conflict_atomic(self, db):
        # id = id + 1 conflicts when 1 -> 2 while 2 still exists.
        with pytest.raises(ConstraintError):
            db.execute("UPDATE t SET id = id + 1 WHERE id < 3")
        assert rows(db) == [(1, "a"), (2, "b"), (3, "c")]

    def test_atomicity_inside_transaction_preserves_prior_work(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE t SET v = 'X' WHERE id = 3")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (4, 'd'), (1, 'dup')")
        # The failed statement is gone; the earlier update is pending.
        assert db.query("SELECT v FROM t WHERE id = 3") == [("X",)]
        assert db.query("SELECT * FROM t WHERE id = 4") == []
        db.execute("ROLLBACK")
        assert rows(db) == [(1, "a"), (2, "b"), (3, "c")]


class TestUndoLogUnit:
    def test_records_and_lengths(self, db):
        heap = db.catalog.table("t")
        log = UndoLog()
        log.attach(heap)
        heap.insert([7, "g"])
        heap.delete(1)
        assert len(log) == 2
        assert log.rollback() == 2
        assert db.query("SELECT v FROM t WHERE id = 1") == [("a",)]
        assert db.query("SELECT * FROM t WHERE id = 7") == []

    def test_commit_discards(self, db):
        heap = db.catalog.table("t")
        log = UndoLog()
        log.attach(heap)
        heap.insert([8, "h"])
        assert log.commit() == 1
        assert db.query("SELECT v FROM t WHERE id = 8") == [("h",)]

    def test_detach_stops_recording(self, db):
        heap = db.catalog.table("t")
        log = UndoLog()
        log.attach(heap)
        log.detach()
        heap.insert([9, "i"])
        assert len(log) == 0


class TestRestoreTable:
    def test_restore_occupied_rowid_rejected(self, db):
        heap = db.catalog.table("t")
        with pytest.raises(ConstraintError, match="occupied"):
            heap.restore(1, [9, "z"])

    def test_restore_duplicate_pk_rejected(self, db):
        heap = db.catalog.table("t")
        heap.delete(1)
        with pytest.raises(ConstraintError, match="duplicate"):
            heap.restore(1, [2, "z"])

    def test_restore_bumps_rowid_counter(self, db):
        heap = db.catalog.table("t")
        heap.restore(100, [50, "z"])
        assert heap.insert([51, "w"]) > 100
