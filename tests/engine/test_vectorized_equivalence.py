"""Differential harness: vectorized executor == classic executor.

The vectorized path is only admissible because it is *bit-identical*
to the row-at-a-time executor: the guard prices delay off
``ResultSet.touched``, records popularity off the same, and keys the
result cache off the emitted rows — any divergence silently corrupts
the defense. This harness runs every statement through both executors
over the same catalog and asserts equality of columns, rows (by
``repr``, so ``1`` vs ``1.0`` and ``True`` vs ``1`` cannot slip
through), rowids, touched, and rowcount — or that both raise the same
error.

Coverage is a fixed corpus (every statement shape the engine parses)
plus a seeded random fuzzer over NULL-heavy tables with >2**53
integers and mixed int/float columns.
"""

import random

import pytest

from repro.core.clock import VirtualClock
from repro.core.config import GuardConfig
from repro.core.guard import DelayGuard
from repro.engine import Database, Executor
from repro.engine.errors import ExecutionError
from repro.engine.parser import parse
from repro.engine.vectorized import VectorizedExecutor

BIG = 2**53  # above float64's exact-integer range

# -- shared fixture data ------------------------------------------------------


def populate(db: Database) -> Database:
    """Deterministic schema + data exercising every dtype and NULLs."""
    db.execute(
        "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT, "
        "age INTEGER, score FLOAT, active BOOLEAN)"
    )
    db.execute(
        "INSERT INTO users VALUES "
        "(1, 'alice', 30, 9.5, TRUE), "
        "(2, 'bob', 25, 7.0, FALSE), "
        "(3, 'carol', NULL, NULL, TRUE), "
        "(4, 'dave', 25, 8.0, NULL), "
        "(5, NULL, 40, 6.25, FALSE), "
        "(6, 'erin', 35, 9.5, TRUE)"
    )
    db.execute(
        "CREATE TABLE orders (oid INTEGER PRIMARY KEY, uid INTEGER, "
        "amount FLOAT, item TEXT)"
    )
    db.execute(
        "INSERT INTO orders VALUES "
        "(10, 1, 99.5, 'book'), (11, 2, 5.0, 'pen'), "
        "(12, 1, 42.0, 'lamp'), (13, 7, 1.25, 'gum'), "
        "(14, NULL, 8.5, 'mug'), (15, 4, NULL, 'bag')"
    )
    db.execute("CREATE TABLE big (k INTEGER PRIMARY KEY, v INTEGER)")
    db.execute(
        f"INSERT INTO big VALUES (1, {BIG + 1}), (2, {BIG + 2}), "
        f"(3, {BIG}), (4, {-BIG - 1}), (5, NULL)"
    )
    return db


@pytest.fixture(scope="module")
def db():
    return populate(Database())


def run_both(db, sql):
    """Execute through both executors; assert identical outcome."""
    statement = parse(sql)
    classic = Executor(db.catalog)
    vectorized = VectorizedExecutor(db.catalog)
    try:
        expected = classic.execute(statement)
        expected_error = None
    except ExecutionError as error:
        expected, expected_error = None, error
    try:
        actual = vectorized.execute(parse(sql))
        actual_error = None
    except ExecutionError as error:
        actual, actual_error = None, error
    if expected_error is not None or actual_error is not None:
        assert repr(actual_error) == repr(expected_error), sql
        return None
    assert actual.columns == expected.columns, sql
    # repr equality: values AND concrete types AND order must agree,
    # because pricing/popularity/cache keys derive from all three.
    assert repr(actual.rows) == repr(expected.rows), sql
    assert actual.rowids == expected.rowids, sql
    assert actual.touched == expected.touched, sql
    assert actual.rowcount == expected.rowcount, sql
    return actual


CORPUS = [
    # plain scans / predicates, every comparison operator
    "SELECT * FROM users",
    "SELECT id, name FROM users WHERE age = 25",
    "SELECT id FROM users WHERE age != 25",
    "SELECT id FROM users WHERE age < 30",
    "SELECT id FROM users WHERE age <= 30",
    "SELECT id FROM users WHERE age > 25",
    "SELECT id FROM users WHERE age >= 35",
    "SELECT id FROM users WHERE score = 9.5",
    "SELECT id FROM users WHERE name = 'alice'",
    "SELECT id FROM users WHERE active = TRUE",
    "SELECT id FROM users WHERE active = FALSE",
    # int column vs float literal (canonicalised comparisons)
    "SELECT id FROM users WHERE age < 27.5",
    "SELECT id FROM users WHERE age <= 24.9",
    "SELECT id FROM users WHERE age > 29.5",
    "SELECT id FROM users WHERE age >= 25.0",
    "SELECT id FROM users WHERE age = 25.0",
    "SELECT id FROM users WHERE age = 25.5",
    "SELECT id FROM users WHERE age != 25.5",
    # float column vs int literal
    "SELECT id FROM users WHERE score > 7",
    "SELECT id FROM users WHERE score = 7",
    # NULL semantics
    "SELECT id FROM users WHERE score = NULL",
    "SELECT id FROM users WHERE score IS NULL",
    "SELECT id FROM users WHERE score IS NOT NULL",
    "SELECT id FROM users WHERE NOT (age = 25)",
    "SELECT id FROM users WHERE age = 25 AND score > 7.5",
    "SELECT id FROM users WHERE age = 25 OR score IS NULL",
    "SELECT id FROM users WHERE NOT (age = 25 OR active)",
    "SELECT id FROM users WHERE active",
    "SELECT id FROM users WHERE active AND score > 7",
    # IN / BETWEEN / LIKE
    "SELECT id FROM users WHERE age IN (25, 35)",
    "SELECT id FROM users WHERE age IN (25, NULL)",
    "SELECT id FROM users WHERE age NOT IN (25, 35)",
    "SELECT id FROM users WHERE age NOT IN (25, NULL)",
    "SELECT id FROM users WHERE age IN (25.0, 35.5)",
    "SELECT id FROM users WHERE age BETWEEN 25 AND 30",
    "SELECT id FROM users WHERE age BETWEEN 26.5 AND 35.5",
    "SELECT id FROM users WHERE age NOT BETWEEN 25 AND 30",
    "SELECT id FROM users WHERE name LIKE 'a%'",
    "SELECT id FROM users WHERE name LIKE '%o%'",
    "SELECT id FROM users WHERE name LIKE '_ob'",
    "SELECT id FROM users WHERE name NOT LIKE '%a%'",
    # arithmetic (object tier: may raise, must match error-for-error)
    "SELECT id FROM users WHERE age * 2 > 50",
    "SELECT id FROM users WHERE age + score > 33",
    "SELECT id, age * 2 AS doubled FROM users WHERE id <= 3",
    "SELECT id, age / 2 FROM users WHERE id = 1",
    "SELECT id FROM users WHERE name > 5",
    "SELECT id FROM users WHERE age > 'x'",
    # big integers beyond float64 exactness
    "SELECT k FROM big WHERE v = " + str(BIG + 1),
    "SELECT k FROM big WHERE v > " + str(BIG),
    "SELECT k FROM big WHERE v < " + str(-BIG),
    "SELECT k, v FROM big WHERE v != " + str(BIG + 2),
    "SELECT k FROM big WHERE v IN (" + str(BIG + 1) + ", " + str(BIG) + ")",
    "SELECT k FROM big WHERE v BETWEEN " + str(BIG) + " AND " + str(BIG + 2),
    # ordering / slicing / distinct
    "SELECT id FROM users ORDER BY age DESC, name ASC",
    "SELECT id FROM users ORDER BY score",
    "SELECT id FROM users ORDER BY id LIMIT 2 OFFSET 1",
    "SELECT id FROM users ORDER BY id DESC LIMIT 3",
    "SELECT id FROM users LIMIT 0",
    "SELECT DISTINCT age FROM users ORDER BY age",
    "SELECT DISTINCT age, active FROM users",
    # aggregates (with and without LIMIT/OFFSET — the classic bugfix)
    "SELECT COUNT(*) FROM users",
    "SELECT COUNT(score) FROM users",
    "SELECT COUNT(DISTINCT age) FROM users",
    "SELECT SUM(age), AVG(score) FROM users",
    "SELECT MIN(score), MAX(score) FROM users",
    "SELECT SUM(v) FROM big",
    "SELECT AVG(v) FROM big",
    "SELECT COUNT(*) FROM users LIMIT 0",
    "SELECT COUNT(*) FROM users LIMIT 1 OFFSET 1",
    "SELECT SUM(amount) FROM orders WHERE uid = 1",
    # grouping
    "SELECT age, COUNT(*) FROM users GROUP BY age",
    "SELECT age, COUNT(*) FROM users GROUP BY age ORDER BY age",
    "SELECT age, SUM(score) AS s, COUNT(*) AS n FROM users "
    "GROUP BY age HAVING n > 1",
    "SELECT age, active, COUNT(*) FROM users GROUP BY age, active",
    "SELECT age, COUNT(*) FROM users GROUP BY age ORDER BY age LIMIT 2",
    "SELECT age, COUNT(*) FROM users GROUP BY age "
    "ORDER BY age LIMIT 2 OFFSET 1",
    # joins
    "SELECT users.name, orders.item FROM users "
    "JOIN orders ON users.id = orders.uid",
    "SELECT users.name, orders.item FROM users "
    "JOIN orders ON users.id = orders.uid ORDER BY orders.oid",
    "SELECT users.name, orders.item FROM users "
    "LEFT JOIN orders ON users.id = orders.uid ORDER BY users.id",
    "SELECT users.name, orders.amount FROM users "
    "JOIN orders ON users.id = orders.uid WHERE orders.amount > 40",
    "SELECT u.name, o.item FROM users u JOIN orders o ON u.id = o.uid",
    "SELECT u.name, o.item FROM users u JOIN orders o ON u.id < o.uid "
    "WHERE o.oid = 10",
    "SELECT COUNT(*) FROM users JOIN orders ON users.id = orders.uid",
    "SELECT users.age, COUNT(*) FROM users "
    "JOIN orders ON users.id = orders.uid GROUP BY users.age",
    # subqueries (bound before the vectorized path sees them)
    "SELECT id FROM users WHERE id IN (SELECT uid FROM orders)",
    "SELECT id FROM users WHERE age > (SELECT MIN(age) FROM users)",
]


@pytest.mark.parametrize("sql", CORPUS)
def test_corpus_statement(db, sql):
    run_both(db, sql)


def test_corpus_actually_exercises_vectorized_path(db):
    """Guard against the harness silently comparing classic-vs-classic."""
    vectorized = VectorizedExecutor(db.catalog)
    for sql in CORPUS:
        try:
            vectorized.execute(parse(sql))
        except ExecutionError:
            pass
    assert vectorized.path_counts["vectorized"] > len(CORPUS) // 2


# -- seeded fuzz --------------------------------------------------------------

_COLUMNS = {
    "a": "INTEGER",
    "b": "INTEGER",
    "c": "FLOAT",
    "d": "TEXT",
    "e": "BOOLEAN",
}
_WORDS = ["ant", "bee", "cat", "dog", "eel", "fox", ""]


def _random_value(rng, dtype, null_probability=0.3):
    if rng.random() < null_probability:
        return "NULL"
    if dtype == "INTEGER":
        return str(
            rng.choice(
                [
                    rng.randint(-5, 5),
                    rng.randint(-100, 100),
                    BIG + rng.randint(-2, 2),
                    -BIG + rng.randint(-2, 2),
                ]
            )
        )
    if dtype == "FLOAT":
        return repr(
            rng.choice(
                [
                    float(rng.randint(-5, 5)),
                    rng.random() * 10,
                    rng.random() * 1e9,
                ]
            )
        )
    if dtype == "TEXT":
        return "'" + rng.choice(_WORDS) + "'"
    return rng.choice(["TRUE", "FALSE"])


def _random_literal(rng, column):
    # Deliberately mismatched literal types sometimes: float literals
    # against INTEGER columns (canonicalisation tier) and vice versa.
    dtype = _COLUMNS[column]
    if dtype in ("INTEGER", "FLOAT") and rng.random() < 0.4:
        dtype = "FLOAT" if dtype == "INTEGER" else "INTEGER"
    return _random_value(rng, dtype, null_probability=0.05)


def _random_predicate(rng, depth=0):
    if depth < 2 and rng.random() < 0.4:
        op = rng.choice(["AND", "OR"])
        left = _random_predicate(rng, depth + 1)
        right = _random_predicate(rng, depth + 1)
        clause = f"({left}) {op} ({right})"
        return f"NOT ({clause})" if rng.random() < 0.2 else clause
    column = rng.choice(list(_COLUMNS))
    kind = rng.random()
    if kind < 0.5:
        cmp = rng.choice(["=", "!=", "<", "<=", ">", ">="])
        return f"{column} {cmp} {_random_literal(rng, column)}"
    if kind < 0.65:
        return f"{column} IS {'NOT ' if rng.random() < 0.5 else ''}NULL"
    if kind < 0.8:
        items = ", ".join(
            _random_literal(rng, column) for _ in range(rng.randint(1, 4))
        )
        return f"{column} IN ({items})"
    if kind < 0.9 and _COLUMNS[column] in ("INTEGER", "FLOAT"):
        low = _random_literal(rng, column)
        high = _random_literal(rng, column)
        return f"{column} BETWEEN {low} AND {high}"
    if _COLUMNS[column] == "TEXT":
        pattern = rng.choice(["a%", "%e%", "_at", "%", "fox"])
        return f"{column} LIKE '{pattern}'"
    return f"{column} {rng.choice(['=', '<'])} {_random_literal(rng, column)}"


def _random_statement(rng):
    where = f" WHERE {_random_predicate(rng)}" if rng.random() < 0.85 else ""
    tail = ""
    if rng.random() < 0.4:
        keys = rng.sample(["a", "c", "d", "pk"], rng.randint(1, 2))
        tail += " ORDER BY " + ", ".join(
            f"{key} {rng.choice(['ASC', 'DESC'])}" for key in keys
        )
    if rng.random() < 0.4:
        tail += f" LIMIT {rng.randint(0, 8)}"
        if rng.random() < 0.5:
            tail += f" OFFSET {rng.randint(0, 4)}"
    roll = rng.random()
    if roll < 0.15:
        return f"SELECT COUNT(*), SUM(a), MIN(c), MAX(d) FROM f{where}"
    if roll < 0.3:
        having = " HAVING n > 1" if rng.random() < 0.5 else ""
        order = " ORDER BY a" if "ORDER" not in tail else ""
        limit = tail[tail.index(" LIMIT"):] if " LIMIT" in tail else ""
        return (
            f"SELECT a, COUNT(*) AS n, SUM(c) AS s FROM f{where} "
            f"GROUP BY a{having}{order}{limit}"
        )
    distinct = "DISTINCT " if rng.random() < 0.2 else ""
    items = rng.choice(["*", "pk, a, c", "a, d", "pk, a + 1, c * 2"])
    if distinct and items == "*":
        items = "a, e"
    return f"SELECT {distinct}{items} FROM f{where}{tail}"


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_equivalence(seed):
    rng = random.Random(1000 + seed)
    database = Database()
    database.execute(
        "CREATE TABLE f (pk INTEGER PRIMARY KEY, a INTEGER, b INTEGER, "
        "c FLOAT, d TEXT, e BOOLEAN)"
    )
    rows = ", ".join(
        "({}, {}, {}, {}, {}, {})".format(
            pk,
            _random_value(rng, "INTEGER"),
            _random_value(rng, "INTEGER"),
            _random_value(rng, "FLOAT"),
            _random_value(rng, "TEXT"),
            _random_value(rng, "BOOLEAN"),
        )
        for pk in range(1, 151)
    )
    database.execute(f"INSERT INTO f VALUES {rows}")
    for _ in range(40):
        run_both(database, _random_statement(rng))


# -- end-to-end pricing equality ---------------------------------------------


def _make_guard(vectorized):
    database = populate(Database())
    if not vectorized:
        database.configure_execution(vectorized=False)
    guard = DelayGuard(
        database,
        config=GuardConfig(policy="popularity", cap=None, unit=1.0),
        clock=VirtualClock(),
    )
    return guard


def test_guard_priced_delay_identical_across_executors():
    """Same workload, same config: delays must agree to the last bit.

    Delay is a function of touched tuples and popularity history; if
    the vectorized path produced even one different rowid the charged
    delays would diverge somewhere in this sequence.
    """
    workload = [
        "SELECT * FROM users WHERE age = 25",
        "SELECT * FROM users WHERE age = 25",
        "SELECT users.name, orders.item FROM users "
        "JOIN orders ON users.id = orders.uid",
        "SELECT COUNT(*) FROM users",
        "SELECT age, COUNT(*) AS n FROM users GROUP BY age HAVING n > 1",
        "SELECT id FROM users ORDER BY id LIMIT 2 OFFSET 1",
        "SELECT k FROM big WHERE v > " + str(BIG),
        "SELECT * FROM users WHERE score IS NULL",
    ]
    classic_guard = _make_guard(vectorized=False)
    vectorized_guard = _make_guard(vectorized=True)
    for sql in workload:
        classic = classic_guard.execute(sql, sleep=False)
        vectorized = vectorized_guard.execute(sql, sleep=False)
        assert repr(vectorized.result.rows) == repr(classic.result.rows)
        assert vectorized.result.rowids == classic.result.rowids
        assert vectorized.result.touched == classic.result.touched
        assert vectorized.delay == classic.delay, sql
    counts = vectorized_guard.database.execution_path_counts()
    assert counts.get("vectorized", 0) > 0
