"""Property tests: subquery binding agrees with manual evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database

pairs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=25,
    unique_by=lambda pair: pair[0],
)


def build(rows_a, rows_b):
    db = Database()
    db.execute("CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER)")
    db.execute("CREATE TABLE b (id INTEGER PRIMARY KEY, w INTEGER)")
    db.insert_rows("a", rows_a)
    db.insert_rows("b", rows_b)
    return db


class TestInSubqueryEquivalence:
    @given(pairs, pairs, st.integers(min_value=0, max_value=9))
    @settings(max_examples=50, deadline=None)
    def test_in_subquery_matches_literal_in_list(self, rows_a, rows_b, cut):
        db = build(rows_a, rows_b)
        via_subquery = sorted(
            db.query(
                f"SELECT id FROM a WHERE v IN "
                f"(SELECT w FROM b WHERE w >= {cut})"
            )
        )
        values = sorted({w for _, w in rows_b if w >= cut})
        if values:
            literal = ", ".join(str(value) for value in values)
            via_list = sorted(
                db.query(f"SELECT id FROM a WHERE v IN ({literal})")
            )
        else:
            via_list = []
        assert via_subquery == via_list

    @given(pairs, pairs)
    @settings(max_examples=50, deadline=None)
    def test_in_plus_not_in_partition_when_no_nulls(self, rows_a, rows_b):
        db = build(rows_a, rows_b)
        inside = set(
            db.query("SELECT id FROM a WHERE v IN (SELECT w FROM b)")
        )
        outside = set(
            db.query("SELECT id FROM a WHERE v NOT IN (SELECT w FROM b)")
        )
        everything = set(db.query("SELECT id FROM a"))
        assert inside | outside == everything
        assert inside & outside == set()

    @given(pairs)
    @settings(max_examples=50, deadline=None)
    def test_scalar_max_subquery_matches_python(self, rows_a):
        db = build(rows_a, [(1, 0)])
        best = max(v for _, v in rows_a)
        rows = db.query(
            "SELECT id FROM a WHERE v = (SELECT MAX(v) FROM a)"
        )
        expected = sorted((i,) for i, v in rows_a if v == best)
        assert sorted(rows) == expected
