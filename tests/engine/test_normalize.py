"""Canonical SQL text (`normalize_sql`) and parse-cache keying.

The parse cache used to be keyed on raw SQL text, so `SELECT 1` and
`select  1 ;` occupied two slots and an adversary could thrash the LRU
with whitespace noise. Both the parse cache and the result cache now
key on :func:`normalize_sql`; these tests pin the normalization rules
and prove textual variants collapse to one cache slot.
"""

import pytest

from repro.engine.parser import (
    configure_parse_cache,
    normalize_cache_info,
    normalize_sql,
    parse_cache_info,
    parse_cached,
)
from repro.engine.parser.parser import PARSE_CACHE_DEFAULT_SIZE


@pytest.fixture(autouse=True)
def fresh_parse_cache():
    """Reset the process-global parse cache around each test."""
    configure_parse_cache(PARSE_CACHE_DEFAULT_SIZE)
    yield
    configure_parse_cache(PARSE_CACHE_DEFAULT_SIZE)


class TestNormalizeSql:
    def test_whitespace_collapses(self):
        assert (
            normalize_sql("SELECT   *\n\tFROM t")
            == normalize_sql("SELECT * FROM t")
        )

    def test_keywords_uppercased(self):
        assert normalize_sql("select * from t where id = 1") == (
            "SELECT * FROM t WHERE id = 1"
        )

    def test_comments_stripped(self):
        assert normalize_sql(
            "SELECT * FROM t -- trailing comment\nWHERE id = 1"
        ) == "SELECT * FROM t WHERE id = 1"

    def test_trailing_semicolon_dropped(self):
        assert normalize_sql("SELECT * FROM t;") == normalize_sql(
            "SELECT * FROM t"
        )

    def test_identifier_case_preserved(self):
        # Result column labels preserve source case, so normalization
        # must NOT fold identifier case: a cached result for
        # `SELECT V FROM t` cannot answer `SELECT v FROM t`.
        assert "V" in normalize_sql("SELECT V FROM t")
        assert normalize_sql("SELECT V FROM t") != normalize_sql(
            "SELECT v FROM t"
        )

    def test_string_literals_preserved_exactly(self):
        out = normalize_sql("SELECT * FROM t WHERE v = 'It''s'")
        assert "'It''s'" in out
        # Case inside strings is data, never folded.
        assert normalize_sql(
            "select * from t where v = 'Mixed Case'"
        ).endswith("'Mixed Case'")

    def test_not_equals_canonicalized(self):
        assert normalize_sql("SELECT * FROM t WHERE a <> 1") == (
            normalize_sql("SELECT * FROM t WHERE a != 1")
        )

    def test_unparseable_text_passes_through(self):
        garbage = "NOT SQL @ ALL !!!"
        assert normalize_sql(garbage) == garbage

    def test_numbers_and_operators_survive(self):
        out = normalize_sql("SELECT a+1 FROM t WHERE b >= 2.5")
        assert "2.5" in out and ">=" in out

    def test_memoized(self):
        before = normalize_cache_info().hits
        normalize_sql("SELECT 12345 FROM memo_probe")
        normalize_sql("SELECT 12345 FROM memo_probe")
        assert normalize_cache_info().hits > before


class TestParseCacheKeying:
    VARIANTS = [
        "SELECT * FROM t WHERE id = 1",
        "select * from t where id = 1",
        "SELECT  *  FROM  t  WHERE  id  =  1",
        "SELECT * FROM t WHERE id = 1;",
        "SELECT * FROM t -- noise\nWHERE id = 1",
        "select\t*\nfrom t where id=1 ;",
    ]

    def test_variants_share_one_cache_slot(self):
        for sql in self.VARIANTS:
            parse_cached(sql)
        info = parse_cache_info()
        # One miss for the canonical form, the rest are hits.
        assert info.misses == 1
        assert info.hits == len(self.VARIANTS) - 1
        assert info.currsize == 1

    def test_variants_parse_identically(self):
        statements = [parse_cached(sql) for sql in self.VARIANTS]
        assert all(stmt is statements[0] for stmt in statements)

    def test_distinct_statements_get_distinct_slots(self):
        parse_cached("SELECT * FROM t WHERE id = 1")
        parse_cached("SELECT * FROM t WHERE id = 2")
        assert parse_cache_info().currsize == 2
