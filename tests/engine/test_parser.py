"""Tests for the SQL parser."""

import pytest

from repro.engine.errors import ParseError
from repro.engine.expr import (
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Logical,
    Negate,
    Not,
)
from repro.engine.parser import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
    parse,
)
from repro.engine.types import DataType


class TestSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt, SelectStatement)
        assert stmt.table == "t"
        assert stmt.items[0].star

    def test_column_list_and_aliases(self):
        stmt = parse("SELECT a, b AS bee, c cee FROM t")
        assert [item.alias for item in stmt.items] == [None, "bee", "cee"]

    def test_where_clause(self):
        stmt = parse("SELECT * FROM t WHERE a = 1")
        assert isinstance(stmt.where, Comparison)
        assert stmt.where.op == "="

    def test_order_by_multiple_keys(self):
        stmt = parse("SELECT * FROM t ORDER BY a DESC, b ASC, c")
        assert [item.descending for item in stmt.order_by] == [True, False, False]

    def test_limit_offset(self):
        stmt = parse("SELECT * FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == 10 and stmt.offset == 5

    def test_limit_rejects_float(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t LIMIT 1.5")

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_aggregates(self):
        stmt = parse("SELECT COUNT(*), SUM(a), AVG(b), MIN(c), MAX(d) FROM t")
        assert [item.aggregate for item in stmt.items] == [
            "COUNT", "SUM", "AVG", "MIN", "MAX",
        ]
        assert stmt.items[0].expression is None

    def test_count_distinct(self):
        stmt = parse("SELECT COUNT(DISTINCT a) FROM t")
        assert stmt.items[0].distinct

    def test_star_only_for_count(self):
        with pytest.raises(ParseError, match="COUNT"):
            parse("SELECT SUM(*) FROM t")

    def test_trailing_semicolon_ok(self):
        assert parse("SELECT * FROM t;").table == "t"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("SELECT * FROM t garbage extra")


class TestExpressionParsing:
    def where(self, sql_condition):
        return parse(f"SELECT * FROM t WHERE {sql_condition}").where

    def test_precedence_or_lowest(self):
        expr = self.where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, Logical) and expr.op == "OR"
        assert isinstance(expr.right, Logical) and expr.right.op == "AND"

    def test_parentheses_override(self):
        expr = self.where("(a = 1 OR b = 2) AND c = 3")
        assert expr.op == "AND"
        assert isinstance(expr.left, Logical) and expr.left.op == "OR"

    def test_not(self):
        expr = self.where("NOT a = 1")
        assert isinstance(expr, Not)

    def test_arithmetic_precedence(self):
        expr = self.where("a + 2 * 3 = 7")
        assert isinstance(expr.left, Arithmetic) and expr.left.op == "+"
        assert isinstance(expr.left.right, Arithmetic)
        assert expr.left.right.op == "*"

    def test_unary_minus(self):
        expr = self.where("a = -1")
        assert isinstance(expr.right, Negate)

    def test_unary_plus_noop(self):
        expr = self.where("a = +1")
        assert expr.right == Literal(1)

    def test_diamond_not_equal_normalized(self):
        assert self.where("a <> 1").op == "!="

    def test_in_list(self):
        expr = self.where("a IN (1, 2, 3)")
        assert isinstance(expr, InList) and len(expr.items) == 3

    def test_not_in(self):
        expr = self.where("a NOT IN (1)")
        assert isinstance(expr, InList) and expr.negated

    def test_between(self):
        expr = self.where("a BETWEEN 1 AND 10")
        assert isinstance(expr, Between) and not expr.negated

    def test_not_between(self):
        expr = self.where("a NOT BETWEEN 1 AND 10")
        assert expr.negated

    def test_between_binds_tighter_than_and(self):
        expr = self.where("a BETWEEN 1 AND 10 AND b = 2")
        assert isinstance(expr, Logical) and expr.op == "AND"
        assert isinstance(expr.left, Between)

    def test_like(self):
        expr = self.where("s LIKE 'a%'")
        assert isinstance(expr, Like)

    def test_not_like(self):
        assert self.where("s NOT LIKE 'a%'").negated

    def test_is_null_and_is_not_null(self):
        assert isinstance(self.where("a IS NULL"), IsNull)
        assert self.where("a IS NOT NULL").negated

    def test_boolean_literals(self):
        expr = self.where("flag = TRUE OR flag = FALSE")
        assert expr.left.right == Literal(True)
        assert expr.right.right == Literal(False)

    def test_null_literal(self):
        assert self.where("a = NULL").right == Literal(None)

    def test_number_literal_types(self):
        assert isinstance(self.where("a = 5").right.value, int)
        assert isinstance(self.where("a = 5.0").right.value, float)
        assert isinstance(self.where("a = 1e3").right.value, float)


class TestInsert:
    def test_positional(self):
        stmt = parse("INSERT INTO t VALUES (1, 'a')")
        assert isinstance(stmt, InsertStatement)
        assert stmt.columns == ()
        assert len(stmt.rows) == 1 and len(stmt.rows[0]) == 2

    def test_with_columns(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_multi_row(self):
        stmt = parse("INSERT INTO t VALUES (1), (2), (3)")
        assert len(stmt.rows) == 3

    def test_expression_values(self):
        stmt = parse("INSERT INTO t VALUES (1 + 2)")
        assert isinstance(stmt.rows[0][0], Arithmetic)


class TestUpdateDelete:
    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert isinstance(stmt, UpdateStatement)
        assert [column for column, _ in stmt.assignments] == ["a", "b"]
        assert stmt.where is not None

    def test_update_without_where(self):
        assert parse("UPDATE t SET a = 1").where is None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a > 5")
        assert isinstance(stmt, DeleteStatement)

    def test_delete_all(self):
        assert parse("DELETE FROM t").where is None


class TestDDL:
    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, "
            "name VARCHAR(40) NOT NULL, score FLOAT)"
        )
        assert isinstance(stmt, CreateTableStatement)
        assert stmt.columns[0].primary_key
        assert not stmt.columns[1].nullable
        assert stmt.columns[1].dtype is DataType.TEXT
        assert stmt.columns[2].nullable

    def test_create_table_if_not_exists(self):
        stmt = parse("CREATE TABLE IF NOT EXISTS t (a INTEGER)")
        assert stmt.if_not_exists

    def test_create_index(self):
        stmt = parse("CREATE INDEX idx ON t (a)")
        assert isinstance(stmt, CreateIndexStatement)
        assert (stmt.name, stmt.table, stmt.column) == ("idx", "t", "a")
        assert stmt.kind == "ordered"

    def test_create_index_using_hash(self):
        assert parse("CREATE INDEX i ON t (a) USING hash").kind == "hash"

    def test_drop_table(self):
        stmt = parse("DROP TABLE t")
        assert isinstance(stmt, DropTableStatement) and not stmt.if_exists

    def test_drop_table_if_exists(self):
        assert parse("DROP TABLE IF EXISTS t").if_exists


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "FOO BAR",
            "SELECT FROM t",
            "SELECT * t",
            "SELECT * FROM",
            "INSERT t VALUES (1)",
            "UPDATE t a = 1",
            "DELETE t",
            "CREATE VIEW v",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE a IN ()",
            "SELECT * FROM t ORDER a",
        ],
    )
    def test_malformed_statements_raise(self, sql):
        with pytest.raises(ParseError):
            parse(sql)

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("SELECT * FROM t WHERE >")
        assert excinfo.value.position >= 0
