"""Tests for JOIN execution."""

import pytest

from repro.engine import Database
from repro.engine.errors import ExecutionError, ParseError
from repro.engine.parser import parse


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE orders (id INTEGER PRIMARY KEY, customer INTEGER, "
        "total FLOAT)"
    )
    database.execute(
        "CREATE TABLE customers (id INTEGER PRIMARY KEY, name TEXT, "
        "city TEXT)"
    )
    database.execute(
        "INSERT INTO customers VALUES (1, 'alice', 'aa'), "
        "(2, 'bob', 'bb'), (3, 'carol', 'aa')"
    )
    database.execute(
        "INSERT INTO orders VALUES (10, 1, 5.0), (11, 1, 7.5), "
        "(12, 2, 3.0), (13, 9, 1.0)"
    )
    return database


class TestParsing:
    def test_join_clause_parsed(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].table == "b"
        assert not stmt.joins[0].outer

    def test_left_join_variants(self):
        assert parse("SELECT * FROM a LEFT JOIN b ON a.x = b.y").joins[0].outer
        assert parse(
            "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y"
        ).joins[0].outer

    def test_inner_join_keyword(self):
        stmt = parse("SELECT * FROM a INNER JOIN b ON a.x = b.y")
        assert not stmt.joins[0].outer

    def test_aliases(self):
        stmt = parse("SELECT * FROM a x JOIN b AS y ON x.i = y.i")
        assert stmt.table_alias == "x"
        assert stmt.joins[0].alias == "y"

    def test_qualified_column_refs(self):
        stmt = parse("SELECT a.v FROM a JOIN b ON a.x = b.y")
        assert stmt.items[0].expression.name == "a.v"

    def test_join_requires_on(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM a JOIN b")

    def test_multiple_joins(self):
        stmt = parse(
            "SELECT * FROM a JOIN b ON a.i = b.i JOIN c ON b.j = c.j"
        )
        assert len(stmt.joins) == 2


class TestInnerJoin:
    def test_equi_join_matches(self, db):
        rows = db.query(
            "SELECT orders.id, customers.name FROM orders "
            "JOIN customers ON orders.customer = customers.id "
            "ORDER BY orders.id"
        )
        assert rows == [(10, "alice"), (11, "alice"), (12, "bob")]

    def test_unmatched_rows_dropped(self, db):
        rows = db.query(
            "SELECT orders.id FROM orders "
            "JOIN customers ON orders.customer = customers.id"
        )
        assert (13,) not in rows  # customer 9 does not exist

    def test_aliased_join(self, db):
        rows = db.query(
            "SELECT o.id, c.name FROM orders o JOIN customers c "
            "ON o.customer = c.id WHERE c.name = 'bob'"
        )
        assert rows == [(12, "bob")]

    def test_star_expands_both_tables(self, db):
        result = db.execute(
            "SELECT * FROM orders o JOIN customers c ON o.customer = c.id "
            "ORDER BY o.id LIMIT 1"
        )
        assert result.columns == [
            "id", "customer", "total", "id", "name", "city",
        ]
        assert result.rows == [(10, 1, 5.0, 1, "alice", "aa")]

    def test_touched_covers_both_tables(self, db):
        result = db.execute(
            "SELECT o.id FROM orders o JOIN customers c "
            "ON o.customer = c.id"
        )
        tables = {name for name, _ in result.touched}
        assert tables == {"orders", "customers"}
        assert len(result.touched) == 2 * len(result.rows)

    def test_non_equi_join_condition(self, db):
        rows = db.query(
            "SELECT o.id FROM orders o JOIN customers c "
            "ON o.customer < c.id ORDER BY o.id"
        )
        # order 10/11 (cust 1) match customers 2,3; order 12 (cust 2)
        # matches customer 3; order 13 (cust 9) matches none.
        assert rows == [(10,), (10,), (11,), (11,), (12,)]

    def test_where_applied_after_join(self, db):
        rows = db.query(
            "SELECT o.id FROM orders o JOIN customers c "
            "ON o.customer = c.id WHERE o.total > 4 AND c.city = 'aa'"
        )
        assert sorted(rows) == [(10,), (11,)]

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE cities (city TEXT, country TEXT)")
        db.execute("INSERT INTO cities VALUES ('aa', 'A'), ('bb', 'B')")
        rows = db.query(
            "SELECT o.id, t.country FROM orders o "
            "JOIN customers c ON o.customer = c.id "
            "JOIN cities t ON c.city = t.city ORDER BY o.id"
        )
        assert rows == [(10, "A"), (11, "A"), (12, "B")]

    def test_shared_column_requires_qualification(self, db):
        # 'id' exists in both tables: bare reference must fail.
        with pytest.raises(ExecutionError, match="ambiguous"):
            db.query(
                "SELECT id FROM orders o JOIN customers c "
                "ON o.customer = c.id"
            )

    def test_unshared_column_usable_bare(self, db):
        rows = db.query(
            "SELECT name FROM orders o JOIN customers c "
            "ON o.customer = c.id WHERE total = 3.0"
        )
        assert rows == [("bob",)]

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(ExecutionError, match="duplicate table alias"):
            db.query(
                "SELECT * FROM orders x JOIN customers x ON x.id = x.id"
            )


class TestLeftJoin:
    def test_unmatched_left_rows_padded_with_null(self, db):
        rows = db.query(
            "SELECT o.id, c.name FROM orders o LEFT JOIN customers c "
            "ON o.customer = c.id ORDER BY o.id"
        )
        assert rows == [
            (10, "alice"), (11, "alice"), (12, "bob"), (13, None),
        ]

    def test_null_padding_filterable(self, db):
        rows = db.query(
            "SELECT o.id FROM orders o LEFT JOIN customers c "
            "ON o.customer = c.id WHERE c.name IS NULL"
        )
        assert rows == [(13,)]

    def test_left_join_non_equi(self, db):
        rows = db.query(
            "SELECT o.id, c.id FROM orders o LEFT JOIN customers c "
            "ON o.customer = c.id AND o.total > 100 ORDER BY o.id"
        )
        # AND o.total > 100 never holds => every left row padded.
        assert rows == [(10, None), (11, None), (12, None), (13, None)]

    def test_touched_excludes_padded_right(self, db):
        result = db.execute(
            "SELECT o.id FROM orders o LEFT JOIN customers c "
            "ON o.customer = c.id WHERE c.id IS NULL"
        )
        assert result.touched == [("orders", 4)]


class TestJoinWithAggregates:
    def test_join_then_group(self, db):
        rows = db.query(
            "SELECT c.name, COUNT(*) AS n, SUM(o.total) AS spent "
            "FROM orders o JOIN customers c ON o.customer = c.id "
            "GROUP BY c.name ORDER BY spent DESC"
        )
        assert rows == [("alice", 2, 12.5), ("bob", 1, 3.0)]

    def test_join_global_aggregate(self, db):
        result = db.execute(
            "SELECT COUNT(*), AVG(o.total) FROM orders o "
            "JOIN customers c ON o.customer = c.id"
        )
        assert result.rows == [(3, pytest.approx(15.5 / 3))]
