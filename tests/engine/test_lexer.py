"""Tests for the SQL tokenizer."""

import pytest

from repro.engine.errors import ParseError
from repro.engine.parser.lexer import Token, tokenize


def kinds(sql):
    return [t.kind for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]  # drop EOF


class TestTokenize:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "eof"

    def test_keywords_uppercased(self):
        assert values("select From WHERE") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        assert values("myTable") == ["myTable"]
        assert tokenize("myTable")[0].kind == "identifier"

    def test_numbers_integer_and_float(self):
        tokens = tokenize("42 3.14 1e5 2.5e-3")
        assert [t.value for t in tokens[:-1]] == ["42", "3.14", "1e5", "2.5e-3"]
        assert all(t.kind == "number" for t in tokens[:-1])

    def test_leading_dot_number(self):
        assert values(".5") == [".5"]

    def test_double_dot_number_rejected(self):
        with pytest.raises(ParseError, match="malformed number"):
            tokenize("1.2.3")

    def test_string_literal(self):
        token = tokenize("'hello world'")[0]
        assert token.kind == "string" and token.value == "hello world"

    def test_string_escaped_quote(self):
        assert tokenize("'o''brien'")[0].value == "o'brien"

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError, match="unterminated string"):
            tokenize("'oops")

    def test_quoted_identifier(self):
        token = tokenize('"Select"')[0]
        assert token.kind == "identifier" and token.value == "Select"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_operators_longest_match(self):
        assert values("a <= b <> c != d") == ["a", "<=", "b", "<>", "c", "!=", "d"]

    def test_line_comment_skipped(self):
        assert values("SELECT -- comment here\n 1") == ["SELECT", "1"]

    def test_comment_at_end_of_input(self):
        assert values("1 -- trailing") == ["1"]

    def test_minus_not_comment(self):
        assert values("1 - 2") == ["1", "-", "2"]

    def test_illegal_character_raises_with_position(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("SELECT @")
        assert excinfo.value.position == 7

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestTokenHelpers:
    def test_is_keyword(self):
        token = Token("keyword", "SELECT", 0)
        assert token.is_keyword("SELECT")
        assert token.is_keyword("FROM", "SELECT")
        assert not token.is_keyword("FROM")

    def test_is_operator(self):
        token = Token("operator", ",", 0)
        assert token.is_operator(",")
        assert not token.is_operator(";")
