"""Tests for the EXPLAIN statement."""

import pytest

from repro.engine import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT, n FLOAT)"
    )
    database.execute("CREATE TABLE u (id INTEGER PRIMARY KEY, tid INTEGER)")
    database.execute("CREATE INDEX inn ON t (n)")
    database.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
    return database


def plan(db, sql):
    return [line for (line,) in db.execute(sql).rows]


class TestExplain:
    def test_pk_lookup_plan(self, db):
        lines = plan(db, "EXPLAIN SELECT * FROM t WHERE id = 1")
        assert lines == ["PK LOOKUP id=1"]

    def test_full_scan_plan(self, db):
        lines = plan(db, "EXPLAIN SELECT * FROM t WHERE v = 'a'")
        assert lines == ["FULL SCAN"]

    def test_index_range_plan(self, db):
        lines = plan(db, "EXPLAIN SELECT * FROM t WHERE n > 0.5")
        assert "INDEX RANGE" in lines[0]

    def test_join_plan(self, db):
        lines = plan(
            db,
            "EXPLAIN SELECT * FROM t JOIN u ON t.id = u.tid "
            "WHERE t.n > 1",
        )
        assert lines[0] == "FULL SCAN t"
        assert lines[1].startswith("HASH JOIN u ON")
        assert lines[2].startswith("FILTER")

    def test_non_equi_join_plan(self, db):
        lines = plan(
            db, "EXPLAIN SELECT * FROM t JOIN u ON t.id < u.tid"
        )
        assert lines[1].startswith("NESTED LOOP")

    def test_left_join_plan(self, db):
        lines = plan(
            db, "EXPLAIN SELECT * FROM t LEFT JOIN u ON t.id = u.tid"
        )
        assert lines[1].startswith("LEFT HASH JOIN")

    def test_group_and_sort_reported(self, db):
        lines = plan(
            db,
            "EXPLAIN SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v",
        )
        assert any(line.startswith("GROUP BY") for line in lines)
        assert "SORT" in lines

    def test_explain_dml(self, db):
        lines = plan(db, "EXPLAIN DELETE FROM t WHERE id = 1")
        assert lines == ["PK LOOKUP id=1"]
        lines = plan(db, "EXPLAIN UPDATE t SET v = 'x' WHERE n < 2")
        assert "INDEX RANGE" in lines[0]

    def test_explain_unknown_table(self, db):
        lines = plan(db, "EXPLAIN SELECT * FROM missing")
        assert "NO PLAN" in lines[0]

    def test_explain_does_not_execute(self, db):
        db.execute("EXPLAIN DELETE FROM t")
        assert db.row_count("t") == 1
