"""LIMIT/OFFSET must trim rowids/touched consistently with rows.

The guard prices a SELECT off ``ResultSet.touched`` and records
popularity off the same list, so the engine's slicing rules are part
of the defense's contract:

* plain and grouped paths slice rows, rowids, and touched together —
  a row the client never received must not be charged or recorded
  differently across executors;
* aggregate results charge every aggregated tuple while the single
  output row survives the slice, but when LIMIT/OFFSET trims the
  result to *nothing* the statement returns no data and must not
  look, to pricing, like a full scan (the classic path used to ignore
  LIMIT/OFFSET on aggregates entirely — the regression pinned here).

Every case runs on both executors and asserts they agree exactly.
"""

import pytest

from repro.engine import Database, Executor, VectorizedExecutor
from repro.engine.parser import parse


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, v FLOAT)"
    )
    database.insert_rows(
        "t", [(i, i % 3, float(i)) for i in range(1, 13)]
    )
    database.execute(
        "CREATE TABLE u (id INTEGER PRIMARY KEY, tid INTEGER)"
    )
    database.insert_rows("u", [(i, (i % 12) + 1) for i in range(1, 25)])
    return database


SLICES = ["", " LIMIT 0", " LIMIT 3", " LIMIT 3 OFFSET 2", " LIMIT 2 OFFSET 11"]

SHAPES = {
    "plain": "SELECT id FROM t WHERE grp != 1 ORDER BY id",
    "join": (
        "SELECT t.id, u.id FROM t JOIN u ON t.id = u.tid "
        "ORDER BY u.id"
    ),
    "aggregate": "SELECT COUNT(*), SUM(v) FROM t",
    "grouped": "SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp",
}


def both(db, sql):
    statement = parse(sql)
    classic = Executor(db.catalog).execute(statement)
    vectorized = VectorizedExecutor(db.catalog).execute(parse(sql))
    return classic, vectorized


@pytest.mark.parametrize("suffix", SLICES)
@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_slicing_consistent_across_paths_and_executors(db, shape, suffix):
    sql = SHAPES[shape] + suffix
    classic, vectorized = both(db, sql)
    # executors agree on everything pricing reads
    assert repr(vectorized.rows) == repr(classic.rows), sql
    assert vectorized.rowids == classic.rowids, sql
    assert vectorized.touched == classic.touched, sql
    assert vectorized.rowcount == classic.rowcount, sql
    for result in (classic, vectorized):
        # a result trimmed to nothing charges nothing
        if not result.rows:
            assert result.rowids == [], sql
            assert result.touched == [], sql
        assert result.rowcount == len(result.rows), sql
        if shape in ("plain", "grouped"):
            # one rowid per emitted row on single-table paths
            assert len(result.rowids) == len(result.rows), sql


@pytest.mark.parametrize("shape", ["plain", "join", "grouped"])
def test_offset_slices_the_same_window_it_returns(db, shape):
    base = SHAPES[shape]
    full_classic, full_vectorized = both(db, base)
    window_classic, window_vectorized = both(db, base + " LIMIT 2 OFFSET 1")
    assert window_classic.rows == full_classic.rows[1:3]
    assert window_vectorized.rows == full_vectorized.rows[1:3]
    if shape != "join":
        assert window_classic.rowids == full_classic.rowids[1:3]
        assert window_vectorized.rowids == full_vectorized.rowids[1:3]


def test_aggregate_limit_zero_prices_as_empty(db):
    """The regression: LIMIT 0 aggregates used to charge a full scan."""
    for sql in (
        "SELECT COUNT(*) FROM t LIMIT 0",
        "SELECT SUM(v) FROM t LIMIT 0",
        "SELECT COUNT(*) FROM t LIMIT 1 OFFSET 1",
        "SELECT COUNT(*) FROM t WHERE grp = 0 LIMIT 0",
    ):
        classic, vectorized = both(db, sql)
        for result in (classic, vectorized):
            assert result.rows == [], sql
            assert result.rowids == [], sql
            assert result.touched == [], sql
            assert result.rowcount == 0, sql


def test_aggregate_within_limit_still_charges_all_aggregated_tuples(db):
    classic, vectorized = both(db, "SELECT COUNT(*) FROM t LIMIT 1")
    for result in (classic, vectorized):
        assert result.rows == [(12,)]
        # the single output row aggregates all 12 tuples — all charged
        assert len(result.touched) == 12
