"""Tests for heap tables."""

import pytest

from repro.engine.errors import ConstraintError
from repro.engine.schema import Column, TableSchema
from repro.engine.table import HeapTable
from repro.engine.types import DataType


def make_table(with_pk=True):
    columns = [
        Column("id", DataType.INTEGER, nullable=False, primary_key=with_pk),
        Column("v", DataType.TEXT),
    ]
    return HeapTable(TableSchema("t", columns))


class TestInsert:
    def test_rowids_are_sequential_and_stable(self):
        table = make_table()
        assert table.insert([1, "a"]) == 1
        assert table.insert([2, "b"]) == 2
        table.delete(1)
        assert table.insert([3, "c"]) == 3  # ids never reused

    def test_insert_validates_types(self):
        with pytest.raises(Exception):
            make_table().insert(["x", "a"])

    def test_duplicate_pk_rejected(self):
        table = make_table()
        table.insert([1, "a"])
        with pytest.raises(ConstraintError, match="duplicate primary key"):
            table.insert([1, "b"])

    def test_no_pk_allows_duplicates(self):
        table = make_table(with_pk=False)
        table.insert([1, "a"])
        table.insert([1, "a"])
        assert len(table) == 2


class TestUpdateDelete:
    def test_update_replaces_row_keeps_rowid(self):
        table = make_table()
        rowid = table.insert([1, "a"])
        table.update(rowid, [1, "z"])
        assert table.get(rowid) == (1, "z")

    def test_update_pk_change_tracked(self):
        table = make_table()
        rowid = table.insert([1, "a"])
        table.update(rowid, [9, "a"])
        assert table.lookup_pk(9) == rowid
        assert table.lookup_pk(1) is None

    def test_update_to_existing_pk_rejected(self):
        table = make_table()
        table.insert([1, "a"])
        rowid = table.insert([2, "b"])
        with pytest.raises(ConstraintError):
            table.update(rowid, [1, "b"])

    def test_update_to_same_pk_allowed(self):
        table = make_table()
        rowid = table.insert([1, "a"])
        table.update(rowid, [1, "b"])
        assert table.get(rowid) == (1, "b")

    def test_update_missing_row_raises(self):
        with pytest.raises(ConstraintError, match="no row"):
            make_table().update(99, [1, "a"])

    def test_delete_removes_row_and_pk(self):
        table = make_table()
        rowid = table.insert([1, "a"])
        deleted = table.delete(rowid)
        assert deleted == (1, "a")
        assert table.get(rowid) is None
        assert table.lookup_pk(1) is None

    def test_delete_missing_row_raises(self):
        with pytest.raises(ConstraintError):
            make_table().delete(5)


class TestScan:
    def test_scan_in_insertion_order(self):
        table = make_table()
        for i in range(5):
            table.insert([i, str(i)])
        assert [rowid for rowid, _ in table.scan()] == [1, 2, 3, 4, 5]

    def test_rowids_snapshot(self):
        table = make_table()
        table.insert([1, "a"])
        ids = table.rowids()
        table.insert([2, "b"])
        assert ids == [1]  # snapshot unaffected

    def test_contains(self):
        table = make_table()
        rowid = table.insert([1, "a"])
        assert rowid in table
        assert 99 not in table


class TestObservers:
    def test_events_fired_in_order(self):
        table = make_table()
        events = []
        table.subscribe(
            lambda kind, rowid, row, old: events.append((kind, rowid))
        )
        rowid = table.insert([1, "a"])
        table.update(rowid, [1, "b"])
        table.delete(rowid)
        assert events == [
            ("insert", rowid), ("update", rowid), ("delete", rowid),
        ]

    def test_unsubscribe_stops_events(self):
        table = make_table()
        events = []
        observer = lambda kind, rowid, row, old: events.append(kind)
        table.subscribe(observer)
        table.insert([1, "a"])
        table.unsubscribe(observer)
        table.insert([2, "b"])
        assert events == ["insert"]

    def test_observer_sees_new_row_on_update(self):
        table = make_table()
        seen = {}
        old_rows = {}
        table.subscribe(
            lambda kind, rowid, row, old: (
                seen.update({kind: row}),
                old_rows.update({kind: old}),
            )
        )
        rowid = table.insert([1, "a"])
        table.update(rowid, [1, "z"])
        assert seen["update"] == (1, "z")
        assert old_rows["update"] == (1, "a")
        assert old_rows["insert"] is None


class TestPkLookup:
    def test_lookup_pk(self):
        table = make_table()
        rowid = table.insert([42, "x"])
        assert table.lookup_pk(42) == rowid
        assert table.lookup_pk(43) is None

    def test_lookup_pk_without_pk_returns_none(self):
        table = make_table(with_pk=False)
        table.insert([1, "a"])
        assert table.lookup_pk(1) is None
