"""Property-based tests for the engine (hypothesis)."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database
from repro.engine.catalog import Catalog
from repro.engine.index import HashIndex, OrderedIndex
from repro.engine.schema import Column, TableSchema
from repro.engine.table import HeapTable
from repro.engine.types import DataType, sort_key

values = st.one_of(
    st.none(),
    st.integers(min_value=-1000, max_value=1000),
    st.floats(
        min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False
    ),
)
names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


def fresh_table():
    return HeapTable(
        TableSchema(
            "t",
            [
                Column("id", DataType.INTEGER, nullable=False, primary_key=True),
                Column("n", DataType.FLOAT),
            ],
        )
    )


class TestSortKeyProperties:
    @given(st.lists(values, max_size=30))
    def test_sort_key_total_order_idempotent(self, items):
        once = sorted(items, key=sort_key)
        assert sorted(once, key=sort_key) == once

    @given(values, values)
    def test_sort_key_antisymmetry(self, a, b):
        if sort_key(a) < sort_key(b):
            assert not sort_key(b) < sort_key(a)


class TestIndexScanEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.one_of(st.none(), st.floats(0, 100, allow_nan=False)),
            ),
            max_size=40,
        ),
        st.floats(0, 100, allow_nan=False),
        st.floats(0, 100, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_ordered_index_range_matches_scan(self, rows, bound_a, bound_b):
        low, high = min(bound_a, bound_b), max(bound_a, bound_b)
        table = fresh_table()
        seen_ids = set()
        for item_id, n in rows:
            if item_id in seen_ids:
                continue
            seen_ids.add(item_id)
            table.insert([item_id, n])
        index = OrderedIndex("i", table, "n")
        via_index = set(index.range(low=low, high=high))
        via_scan = {
            rowid
            for rowid, row in table.scan()
            if row[1] is not None and low <= row[1] <= high
        }
        assert via_index == via_scan

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.one_of(st.none(), st.integers(0, 5).map(float)),
            ),
            max_size=40,
        ),
        st.integers(0, 5).map(float),
    )
    @settings(max_examples=60, deadline=None)
    def test_hash_lookup_matches_scan(self, rows, key):
        table = fresh_table()
        seen_ids = set()
        for item_id, n in rows:
            if item_id in seen_ids:
                continue
            seen_ids.add(item_id)
            table.insert([item_id, n])
        index = HashIndex("i", table, "n")
        via_index = set(index.lookup(key))
        via_scan = {
            rowid for rowid, row in table.scan() if row[1] == key
        }
        assert via_index == via_scan


class TestSqlRoundTrips:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=200),
                st.integers(min_value=-50, max_value=50),
            ),
            min_size=1,
            max_size=30,
            unique_by=lambda pair: pair[0],
        ),
        st.integers(min_value=-50, max_value=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_where_filter_matches_python_filter(self, rows, threshold):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        db.insert_rows("t", rows)
        got = sorted(db.query(f"SELECT id FROM t WHERE v > {threshold}"))
        expected = sorted((i,) for i, v in rows if v > threshold)
        assert got == expected

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=100),
                st.integers(min_value=-9, max_value=9),
            ),
            min_size=1,
            max_size=25,
            unique_by=lambda pair: pair[0],
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_order_by_sorts(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        db.insert_rows("t", rows)
        got = [v for (v,) in db.query("SELECT v FROM t ORDER BY v")]
        assert got == sorted(v for _, v in rows)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=100),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=25,
            unique_by=lambda pair: pair[0],
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_aggregates_match_python(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        db.insert_rows("t", rows)
        result = db.execute("SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t")
        vs = [v for _, v in rows]
        assert result.rows == [(len(vs), sum(vs), min(vs), max(vs))]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=60),
                st.integers(min_value=0, max_value=9),
            ),
            min_size=1,
            max_size=30,
            unique_by=lambda pair: pair[0],
        ),
        st.integers(min_value=0, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_indexed_and_unindexed_agree(self, rows, key):
        plain = Database()
        plain.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        plain.insert_rows("t", rows)
        indexed = Database()
        indexed.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        indexed.execute("CREATE INDEX iv ON t (v)")
        indexed.insert_rows("t", rows)
        sql = f"SELECT id FROM t WHERE v = {key}"
        assert sorted(plain.query(sql)) == sorted(indexed.query(sql))
