"""Tests for the synthetic Calgary trace (§4.1 stand-in)."""

import pytest

from repro.core.analysis import fit_zipf_alpha
from repro.core.errors import ConfigError
from repro.engine import Database
from repro.workloads.calgary import (
    CALGARY_ALPHA,
    CALGARY_OBJECTS,
    CALGARY_REQUESTS,
    generate_calgary,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_calgary(num_objects=2000, num_requests=60_000, seed=11)


class TestGeneration:
    def test_published_constants(self):
        assert CALGARY_OBJECTS == 12_179
        assert CALGARY_REQUESTS == 725_091
        assert CALGARY_ALPHA == 1.5

    def test_trace_shape(self, dataset):
        assert len(dataset.trace) == 60_000
        assert dataset.population == 2000
        assert all(event.kind == "query" for event in dataset.trace)

    def test_skew_close_to_published_alpha(self, dataset):
        counts = sorted(
            dataset.trace.item_frequencies().values(), reverse=True
        )
        assert fit_zipf_alpha(counts[:60]) == pytest.approx(1.5, abs=0.2)

    def test_rank_mappings_are_inverse(self, dataset):
        for rank in (1, 10, 500):
            item = dataset.item_by_rank[rank]
            assert dataset.rank_by_item[item] == rank

    def test_rank_one_is_most_requested(self, dataset):
        frequencies = dataset.trace.item_frequencies()
        top_item = frequencies.most_common(1)[0][0]
        assert dataset.rank_by_item[top_item] <= 3  # sampling noise margin

    def test_deterministic(self):
        a = generate_calgary(num_objects=100, num_requests=500, seed=5)
        b = generate_calgary(num_objects=100, num_requests=500, seed=5)
        assert [e.item for e in a.trace] == [e.item for e in b.trace]

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            generate_calgary(num_objects=0)
        with pytest.raises(ConfigError):
            generate_calgary(num_objects=10, num_requests=-1)


class TestLoading:
    def test_load_into_database(self, dataset):
        db = Database()
        dataset.load_into(db)
        assert db.row_count("web_objects") == 2000
        assert db.query(
            "SELECT payload FROM web_objects WHERE id = 1"
        ) == [("page-1",)]
