"""Tests for the seeded samplers."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.workloads.zipf import UniformSampler, WeightedSampler, ZipfSampler


class TestZipfSampler:
    def test_samples_in_range(self):
        sampler = ZipfSampler(100, 1.5, seed=1)
        draws = sampler.sample_many(1000)
        assert draws.min() >= 1 and draws.max() <= 100

    def test_deterministic_with_seed(self):
        a = ZipfSampler(50, 1.0, seed=7).sample_many(100)
        b = ZipfSampler(50, 1.0, seed=7).sample_many(100)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = ZipfSampler(50, 1.0, seed=1).sample_many(100)
        b = ZipfSampler(50, 1.0, seed=2).sample_many(100)
        assert not (a == b).all()

    def test_empirical_skew_matches_alpha(self):
        sampler = ZipfSampler(1000, 1.0, seed=3)
        draws = sampler.sample_many(200_000)
        counts = np.bincount(draws, minlength=1001)
        # rank 1 should be ~2x rank 2, ~10x rank 10 for alpha=1.
        assert counts[1] / counts[2] == pytest.approx(2.0, rel=0.15)
        assert counts[1] / counts[10] == pytest.approx(10.0, rel=0.25)

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0, seed=4)
        draws = sampler.sample_many(50_000)
        counts = np.bincount(draws, minlength=11)[1:]
        assert counts.min() > 0.8 * counts.max()

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(20, 1.3, seed=5)
        total = sum(sampler.probability(rank) for rank in range(1, 21))
        assert total == pytest.approx(1.0)

    def test_probability_matches_definition(self):
        sampler = ZipfSampler(10, 2.0, seed=6)
        assert sampler.probability(1) / sampler.probability(2) == (
            pytest.approx(4.0)
        )

    def test_single_sample(self):
        assert 1 <= ZipfSampler(5, 1.0, seed=7).sample() <= 5

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ConfigError):
            ZipfSampler(10, -0.5)
        with pytest.raises(ConfigError):
            ZipfSampler(10, 1.0).sample_many(-1)
        with pytest.raises(ConfigError):
            ZipfSampler(10, 1.0).probability(11)


class TestUniformSampler:
    def test_range_and_determinism(self):
        a = UniformSampler(30, seed=1).sample_many(500)
        b = UniformSampler(30, seed=1).sample_many(500)
        assert (a == b).all()
        assert a.min() >= 1 and a.max() <= 30

    def test_roughly_uniform(self):
        draws = UniformSampler(10, seed=2).sample_many(50_000)
        counts = np.bincount(draws, minlength=11)[1:]
        assert counts.min() > 0.85 * counts.max()

    def test_invalid(self):
        with pytest.raises(ConfigError):
            UniformSampler(0)


class TestWeightedSampler:
    def test_follows_weights(self):
        sampler = WeightedSampler([3.0, 1.0, 0.0], seed=1)
        draws = sampler.sample_many(40_000)
        counts = np.bincount(draws, minlength=4)[1:]
        assert counts[2] == 0
        assert counts[0] / counts[1] == pytest.approx(3.0, rel=0.1)

    def test_single_sample_in_range(self):
        assert WeightedSampler([1, 1], seed=2).sample() in (1, 2)

    def test_invalid_weights(self):
        with pytest.raises(ConfigError):
            WeightedSampler([])
        with pytest.raises(ConfigError):
            WeightedSampler([-1.0, 2.0])
        with pytest.raises(ConfigError):
            WeightedSampler([0.0, 0.0])
