"""Tests for workload generators and dataset loading."""

import numpy as np
import pytest

from repro.core.analysis import fit_zipf_alpha
from repro.core.errors import ConfigError
from repro.engine import Database
from repro.workloads.generators import (
    load_items_table,
    make_uniform_query_trace,
    make_zipf_query_trace,
    make_zipf_update_trace,
    select_sql,
    update_sql,
)


class TestZipfQueryTrace:
    def test_size_and_population(self):
        trace = make_zipf_query_trace(100, 5000, alpha=1.0, seed=1)
        assert len(trace) == 5000
        assert trace.population == 100

    def test_skew_recoverable(self):
        trace = make_zipf_query_trace(500, 100_000, alpha=1.2, seed=2)
        counts = sorted(
            trace.item_frequencies().values(), reverse=True
        )
        fitted = fit_zipf_alpha(counts[:50])
        assert fitted == pytest.approx(1.2, abs=0.15)

    def test_permutation_scatters_popularity(self):
        trace = make_zipf_query_trace(1000, 20_000, alpha=1.5, seed=3)
        top_item = trace.top_items(1)[0][0]
        assert top_item != 1  # overwhelmingly unlikely under permutation

    def test_no_permutation_keeps_rank_order(self):
        trace = make_zipf_query_trace(
            1000, 20_000, alpha=1.5, seed=3, permute_ranks=False
        )
        assert trace.top_items(1)[0][0] == 1

    def test_deterministic(self):
        a = make_zipf_query_trace(50, 100, alpha=1.0, seed=9)
        b = make_zipf_query_trace(50, 100, alpha=1.0, seed=9)
        assert [e.item for e in a] == [e.item for e in b]

    def test_invalid_count(self):
        with pytest.raises(ConfigError):
            make_zipf_query_trace(10, -1, alpha=1.0)


class TestUniformQueryTrace:
    def test_roughly_uniform(self):
        trace = make_uniform_query_trace(10, 20_000, seed=1)
        counts = trace.item_frequencies()
        assert min(counts.values()) > 0.8 * max(counts.values())


class TestZipfUpdateTrace:
    def test_update_events_with_exponential_gaps(self):
        trace = make_zipf_update_trace(
            50, 10_000, alpha=1.0, seed=1, total_rate=2.0
        )
        assert trace.update_count() == 10_000
        gaps = [event.think_time for event in trace]
        assert np.mean(gaps) == pytest.approx(0.5, rel=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ConfigError):
            make_zipf_update_trace(10, 10, alpha=1.0, total_rate=0)


class TestLoadItemsTable:
    def test_creates_and_fills(self):
        db = Database()
        mapping = load_items_table(db, 25)
        assert db.row_count("items") == 25
        assert set(mapping) == set(range(1, 26))

    def test_item_ids_queryable(self):
        db = Database()
        load_items_table(db, 5, table="things", payload_prefix="x")
        rows = db.query("SELECT payload FROM things WHERE id = 3")
        assert rows == [("x-3",)]

    def test_version_starts_zero(self):
        db = Database()
        load_items_table(db, 3)
        assert db.query("SELECT version FROM items WHERE id = 1") == [(0,)]


class TestSqlHelpers:
    def test_select_sql(self):
        assert select_sql("t", 7) == "SELECT * FROM t WHERE id = 7"

    def test_update_sql(self):
        sql = update_sql("t", 7, 3)
        assert "SET version = 3" in sql and "id = 7" in sql

    def test_select_sql_coerces_item(self):
        assert "id = 7" in select_sql("t", 7.0)
