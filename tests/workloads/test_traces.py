"""Tests for the trace representation."""

import pytest

from repro.core.errors import ConfigError
from repro.workloads.traces import Trace, TraceEvent, interleave


class TestTrace:
    def test_add_and_iterate(self):
        trace = Trace(population=10)
        trace.add_query(1)
        trace.add_update(2, think_time=0.5)
        trace.add_mark("week-1")
        kinds = [event.kind for event in trace]
        assert kinds == ["query", "update", "mark"]
        assert len(trace) == 3

    def test_item_bounds_enforced(self):
        trace = Trace(population=5)
        with pytest.raises(ConfigError):
            trace.add_query(0)
        with pytest.raises(ConfigError):
            trace.add_query(6)
        with pytest.raises(ConfigError):
            trace.add_update(-1)

    def test_population_validated(self):
        with pytest.raises(ConfigError):
            Trace(population=0)

    def test_counts(self):
        trace = Trace(population=3)
        trace.add_query(1)
        trace.add_query(2)
        trace.add_update(1)
        trace.add_mark("m")
        assert trace.query_count() == 2
        assert trace.update_count() == 1

    def test_item_frequencies(self):
        trace = Trace(population=3)
        for item in [1, 1, 2, 1]:
            trace.add_query(item)
        frequencies = trace.item_frequencies()
        assert frequencies[1] == 3 and frequencies[2] == 1

    def test_top_items(self):
        trace = Trace(population=5)
        for item in [3, 3, 3, 1, 1, 5]:
            trace.add_query(item)
        assert trace.top_items(2) == [(3, 3), (1, 2)]

    def test_distinct_items_by_kind(self):
        trace = Trace(population=5)
        trace.add_query(1)
        trace.add_update(2)
        trace.add_update(3)
        assert trace.distinct_items("query") == 1
        assert trace.distinct_items("update") == 2

    def test_labels_and_think_time_preserved(self):
        trace = Trace(population=2)
        trace.add_query(1, think_time=1.5, label="w1")
        event = trace.events[0]
        assert event.think_time == 1.5 and event.label == "w1"


class TestInterleave:
    def test_round_robin_merge(self):
        a = Trace(population=5, name="a")
        a.add_query(1)
        a.add_query(2)
        b = Trace(population=5, name="b")
        b.add_update(3)
        merged = interleave([a, b])
        assert [e.kind for e in merged] == ["query", "update", "query"]

    def test_population_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            interleave([Trace(population=2), Trace(population=3)])

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigError):
            interleave([])

    def test_single_trace_passthrough(self):
        a = Trace(population=2)
        a.add_query(1)
        merged = interleave([a])
        assert len(merged) == 1
