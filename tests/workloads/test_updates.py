"""Tests for the update process model (§4.3)."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.workloads.updates import UpdateProcess


class TestConstruction:
    def test_zipf_rates(self):
        process = UpdateProcess.zipf(100, alpha=1.0, rmax=2.0)
        assert process.rate(1) == pytest.approx(2.0)
        assert process.rate(2) == pytest.approx(1.0)
        assert process.rate(100) == pytest.approx(0.02)
        assert process.max_rate == pytest.approx(2.0)

    def test_uniform_rates(self):
        process = UpdateProcess.uniform(10, rate=0.5)
        assert process.total_rate == pytest.approx(5.0)
        assert process.rate(3) == 0.5

    def test_population(self):
        assert UpdateProcess.zipf(42, 1.0, 1.0).population == 42

    def test_invalid(self):
        with pytest.raises(ConfigError):
            UpdateProcess.zipf(0, 1.0, 1.0)
        with pytest.raises(ConfigError):
            UpdateProcess.zipf(10, 1.0, 0.0)
        with pytest.raises(ConfigError):
            UpdateProcess.uniform(10, rate=-1)
        with pytest.raises(ConfigError):
            UpdateProcess(rates=np.array([1.0]))
        with pytest.raises(ConfigError):
            UpdateProcess(rates=np.array([0.0, -1.0]))
        with pytest.raises(ConfigError):
            UpdateProcess.zipf(5, 1.0, 1.0).rate(6)


class TestSampling:
    def test_sample_counts_shape_and_mean(self):
        process = UpdateProcess.uniform(1000, rate=0.1)
        rng = np.random.default_rng(1)
        counts = process.sample_counts(100.0, rng)
        assert counts.shape == (1001,)
        assert counts[0] == 0
        assert counts[1:].mean() == pytest.approx(10.0, rel=0.05)

    def test_sample_events_sorted_and_in_window(self):
        process = UpdateProcess.uniform(20, rate=1.0)
        rng = np.random.default_rng(2)
        events = process.sample_events(10.0, 15.0, rng)
        times = [t for t, _ in events]
        assert times == sorted(times)
        assert all(10.0 <= t < 15.0 for t in times)

    def test_zero_window_no_events(self):
        process = UpdateProcess.uniform(5, rate=10.0)
        assert process.sample_events(1.0, 1.0) == []

    def test_invalid_windows(self):
        process = UpdateProcess.uniform(5, rate=1.0)
        with pytest.raises(ConfigError):
            process.sample_counts(-1.0)
        with pytest.raises(ConfigError):
            process.sample_events(5.0, 1.0)


class TestStalenessMath:
    def test_stale_probability(self):
        process = UpdateProcess.uniform(5, rate=1.0)
        assert process.stale_probability(1, 0.0) == 0.0
        assert process.stale_probability(1, 1e9) == pytest.approx(1.0)
        assert process.stale_probability(1, 1.0) == pytest.approx(
            1 - np.exp(-1.0)
        )

    def test_expected_stale_fraction(self):
        process = UpdateProcess.uniform(4, rate=1.0)
        windows = [0.0, 0.0, 1e9, 1e9]
        assert process.expected_stale_fraction(windows) == pytest.approx(0.5)

    def test_expected_requires_full_windows(self):
        process = UpdateProcess.uniform(4, rate=1.0)
        with pytest.raises(ConfigError):
            process.expected_stale_fraction([1.0])
        with pytest.raises(ConfigError):
            process.expected_stale_fraction([1.0, 1.0, 1.0, -1.0])

    def test_sampled_flags_match_expectation(self):
        process = UpdateProcess.uniform(20_000, rate=1.0)
        windows = np.full(20_000, 0.5)
        rng = np.random.default_rng(3)
        flags = process.sample_stale_flags(windows, rng)
        expected = 1 - np.exp(-0.5)
        assert flags.mean() == pytest.approx(expected, abs=0.01)

    def test_sampled_flags_monotone_in_rate(self):
        process = UpdateProcess.zipf(10_000, alpha=1.5, rmax=10.0)
        windows = np.full(10_000, 1.0)
        rng = np.random.default_rng(4)
        flags = process.sample_stale_flags(windows, rng)
        head = flags[:100].mean()
        tail = flags[-1000:].mean()
        assert head > tail  # fast-updated ranks go stale more often
