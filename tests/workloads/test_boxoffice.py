"""Tests for the synthetic box-office workload (§4.2 stand-in)."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.engine import Database
from repro.workloads.boxoffice import (
    BOXOFFICE_FILMS,
    BOXOFFICE_WEEKS,
    generate_boxoffice,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_boxoffice(num_films=200, num_weeks=52, seed=22)


class TestGeneration:
    def test_published_constants(self):
        assert BOXOFFICE_FILMS == 634
        assert BOXOFFICE_WEEKS == 52

    def test_dimensions(self, dataset):
        assert dataset.num_films == 200
        assert dataset.num_weeks == 52

    def test_marks_at_week_boundaries(self, dataset):
        marks = [e for e in dataset.trace if e.kind == "mark"]
        assert len(marks) == 52
        assert marks[0].label == "week-1"

    def test_requests_proportional_to_gross(self, dataset):
        """One request per $100k of weekly gross (rounded)."""
        requested = dataset.trace.item_frequencies()
        for film in list(requested)[:20]:
            expected = sum(
                int(round(dataset.weekly_gross[film, week] / 100_000))
                for week in range(1, 53)
            )
            assert requested[film] == expected

    def test_annual_skew_is_mild(self, dataset):
        top = dataset.top_annual(10)
        ratio = top[0][1] / top[-1][1]
        assert 1.5 < ratio < 6.0  # paper Figure 2: ~2.5x

    def test_weekly_skew_is_sharp(self, dataset):
        # Find a mid-year week with several films showing.
        ratios = []
        for week in range(10, 40):
            sales = dataset.top_weekly(week, 10)
            if len(sales) >= 8:
                ratios.append(sales[0][1] / sales[7][1])
        assert ratios, "no busy weeks generated"
        assert np.median(ratios) > 5.0  # weekly much sharper than annual

    def test_sales_decay_week_over_week(self, dataset):
        film = dataset.top_annual(1)[0][0]
        release = dataset.release_week[film]
        run = dataset.weekly_gross[film, release:]
        run = run[run > 0]
        assert (np.diff(run) < 0).all()

    def test_gross_zero_before_release(self, dataset):
        for film in range(1, 30):
            release = dataset.release_week[film]
            assert (dataset.weekly_gross[film, 1:release] == 0).all()

    def test_weekly_sales_sorted(self, dataset):
        for week in (5, 20, 45):
            sales = dataset.weekly_sales(week)
            values = [value for _, value in sales]
            assert values == sorted(values, reverse=True)

    def test_week_out_of_range(self, dataset):
        with pytest.raises(ConfigError):
            dataset.weekly_sales(0)
        with pytest.raises(ConfigError):
            dataset.weekly_sales(53)

    def test_deterministic(self):
        a = generate_boxoffice(num_films=30, seed=3)
        b = generate_boxoffice(num_films=30, seed=3)
        assert np.array_equal(a.weekly_gross, b.weekly_gross)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            generate_boxoffice(num_films=0)
        with pytest.raises(ConfigError):
            generate_boxoffice(num_films=10, num_weeks=0)
        with pytest.raises(ConfigError):
            generate_boxoffice(num_films=10, dollars_per_request=0)


class TestLoading:
    def test_load_into_database(self, dataset):
        db = Database()
        dataset.load_into(db)
        assert db.row_count("films") == 200
        release = db.execute(
            "SELECT release_week FROM films WHERE id = 1"
        ).scalar()
        assert release == dataset.release_week[1]
