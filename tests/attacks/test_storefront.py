"""Tests for the storefront attack simulation."""

import pytest

from repro.attacks.storefront import StorefrontAttack
from repro.core import (
    AccountManager,
    AccountPolicy,
    DelayGuard,
    GuardConfig,
    VirtualClock,
)
from repro.core.errors import ConfigError
from repro.engine import Database
from repro.workloads.generators import make_zipf_query_trace


def storefront_setup(rows=50, quota=None):
    db = Database()
    db.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, payload TEXT)")
    db.insert_rows("items", [(i, f"p{i}") for i in range(1, rows + 1)])
    clock = VirtualClock()
    accounts = AccountManager(
        policy=AccountPolicy(daily_query_quota=quota), clock=clock
    )
    guard = DelayGuard(
        db, config=GuardConfig(cap=1.0), clock=clock, accounts=accounts
    )
    accounts.register("storefront")
    return guard


class TestRelay:
    def test_relays_whole_trace_without_quota(self):
        guard = storefront_setup()
        trace = make_zipf_query_trace(50, 200, alpha=1.0, seed=1)
        result = StorefrontAttack(guard, "items", "storefront").relay(trace)
        assert result.relayed == 200
        assert result.denied == 0
        assert 0 < result.coverage <= 1.0

    def test_quota_throttles_storefront(self):
        guard = storefront_setup(quota=20)
        trace = make_zipf_query_trace(50, 200, alpha=1.0, seed=1)
        attack = StorefrontAttack(
            guard, "items", "storefront", give_up_after=3
        )
        result = attack.relay(trace)
        assert result.relayed == 20
        assert result.denied >= 3
        assert result.coverage < 1.0

    def test_coverage_is_distinct_items_over_population(self):
        guard = storefront_setup(rows=10)
        trace = make_zipf_query_trace(10, 100, alpha=0.0, seed=2)
        result = StorefrontAttack(guard, "items", "storefront").relay(trace)
        distinct = len({e.item for e in trace if e.kind == "query"})
        assert result.coverage == pytest.approx(distinct / 10)

    def test_cached_storefront_skips_repeats(self):
        guard = storefront_setup()
        trace = make_zipf_query_trace(50, 300, alpha=1.5, seed=3)
        cached = StorefrontAttack(
            guard, "items", "storefront", cache=True
        ).relay(trace)
        # With caching, relayed equals distinct items touched.
        assert cached.relayed == len(
            {e.item for e in trace if e.kind == "query"}
        )

    def test_customers_absorb_delay(self):
        guard = storefront_setup()
        trace = make_zipf_query_trace(50, 100, alpha=1.0, seed=4)
        result = StorefrontAttack(guard, "items", "storefront").relay(trace)
        assert result.total_delay > 0

    def test_wait_events_recorded(self):
        guard = storefront_setup(quota=5)
        trace = make_zipf_query_trace(50, 100, alpha=1.0, seed=5)
        result = StorefrontAttack(
            guard, "items", "storefront", give_up_after=2
        ).relay(trace)
        assert len(result.wait_events) == result.denied

    def test_invalid_give_up(self):
        guard = storefront_setup()
        with pytest.raises(ConfigError):
            StorefrontAttack(guard, "items", "storefront", give_up_after=0)
