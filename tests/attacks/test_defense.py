"""Tests for defense-side cost analysis (§2.4)."""

import math

import pytest

from repro.attacks.defense import (
    best_parallel_attack_time,
    fee_for_parity,
    optimal_parallelism,
    parallel_attack_time,
    registration_interval_for_target,
)
from repro.core.errors import ConfigError


class TestParallelAttackTime:
    def test_formula(self):
        # k*t + D/k
        assert parallel_attack_time(100.0, 5, 2.0) == pytest.approx(30.0)

    def test_single_identity(self):
        assert parallel_attack_time(100.0, 1, 2.0) == pytest.approx(102.0)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            parallel_attack_time(10.0, 0, 1.0)
        with pytest.raises(ConfigError):
            parallel_attack_time(-1.0, 1, 1.0)


class TestOptimalParallelism:
    def test_sqrt_rule(self):
        # k* = sqrt(D/t) = sqrt(10000/1) = 100
        assert optimal_parallelism(10_000.0, 1.0) == 100

    def test_is_actually_optimal(self):
        extraction, interval = 86_400.0, 7.0
        best = optimal_parallelism(extraction, interval)
        best_time = parallel_attack_time(extraction, best, interval)
        for k in (best - 1, best + 1):
            if k >= 1:
                assert parallel_attack_time(
                    extraction, k, interval
                ) >= best_time

    def test_at_least_one(self):
        assert optimal_parallelism(1.0, 100.0) == 1

    def test_requires_gate(self):
        with pytest.raises(ConfigError):
            optimal_parallelism(100.0, 0.0)


class TestBestParallelAttackTime:
    def test_two_sqrt_dt(self):
        time = best_parallel_attack_time(10_000.0, 1.0)
        assert time == pytest.approx(2 * math.sqrt(10_000.0), rel=0.01)

    def test_monotone_in_interval(self):
        slow = best_parallel_attack_time(10_000.0, 10.0)
        fast = best_parallel_attack_time(10_000.0, 0.1)
        assert slow > fast


class TestRegistrationIntervalForTarget:
    def test_round_trip(self):
        extraction = 100_000.0
        target = 50_000.0
        interval = registration_interval_for_target(extraction, target)
        achieved = best_parallel_attack_time(extraction, interval)
        assert achieved == pytest.approx(target, rel=0.02)

    def test_paper_criterion_parallelism_moot(self):
        """Setting target = D makes the best parallel attack as slow as
        the single-identity attack — the paper's 'rendered moot'."""
        extraction = 86_400.0
        interval = registration_interval_for_target(extraction, extraction)
        assert best_parallel_attack_time(
            extraction, interval
        ) == pytest.approx(extraction, rel=0.02)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            registration_interval_for_target(0.0, 10.0)
        with pytest.raises(ConfigError):
            registration_interval_for_target(10.0, 0.0)


class TestFeeForParity:
    def test_division(self):
        assert fee_for_parity(1000.0, 100) == 10.0

    def test_total_spend_equals_value(self):
        fee = fee_for_parity(5000.0, 37)
        assert fee * 37 == pytest.approx(5000.0)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            fee_for_parity(-1.0, 10)
        with pytest.raises(ConfigError):
            fee_for_parity(100.0, 0)
