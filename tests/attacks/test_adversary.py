"""Tests for the sequential extraction adversary."""

import numpy as np
import pytest

from repro.attacks.adversary import ExtractionAdversary
from repro.core import DelayGuard, GuardConfig, VirtualClock
from repro.core.errors import ConfigError
from repro.engine import Database
from repro.sim.experiment import build_guarded_items
from repro.workloads.updates import UpdateProcess


@pytest.fixture
def fixture():
    return build_guarded_items(50, config=GuardConfig(cap=2.0))


class TestRun:
    def test_extracts_every_tuple(self, fixture):
        adversary = ExtractionAdversary(fixture.guard, fixture.table)
        result = adversary.run()
        assert result.tuples == 50
        assert result.queries == 50
        assert len(result.snapshot) == 50

    def test_cold_table_pays_full_cap(self, fixture):
        result = ExtractionAdversary(fixture.guard, fixture.table).run()
        assert result.total_delay == pytest.approx(100.0)  # 50 * 2s
        assert result.mean_delay == pytest.approx(2.0)

    def test_clock_advances_by_delay(self, fixture):
        ExtractionAdversary(fixture.guard, fixture.table).run()
        assert fixture.clock.now() == pytest.approx(100.0)

    def test_snapshot_times_increase(self, fixture):
        result = ExtractionAdversary(fixture.guard, fixture.table).run()
        times = [t.extracted_at for t in result.snapshot.tuples.values()]
        assert times == sorted(times)
        assert result.snapshot.completed_at >= times[-1]

    def test_warm_tuples_cheaper(self, fixture):
        for _ in range(100):
            fixture.guard.execute("SELECT * FROM items WHERE id = 1")
        result = ExtractionAdversary(fixture.guard, fixture.table).run()
        assert result.total_delay < 100.0

    def test_random_order_same_total(self):
        a = build_guarded_items(30, config=GuardConfig(cap=1.0))
        b = build_guarded_items(30, config=GuardConfig(cap=1.0))
        ordered = ExtractionAdversary(a.guard, a.table, order="id").run()
        shuffled = ExtractionAdversary(
            b.guard, b.table, order="random", seed=3
        ).run()
        assert ordered.total_delay == pytest.approx(shuffled.total_delay)

    def test_record_true_inflates_later_counts(self, fixture):
        ExtractionAdversary(fixture.guard, fixture.table, record=True).run()
        assert fixture.guard.popularity.total_requests == 50

    def test_record_false_leaves_counts(self, fixture):
        ExtractionAdversary(fixture.guard, fixture.table, record=False).run()
        assert fixture.guard.popularity.total_requests == 0

    def test_per_tuple_delays_kept(self, fixture):
        result = ExtractionAdversary(fixture.guard, fixture.table).run()
        assert len(result.per_tuple_delays) == 50

    def test_invalid_order(self, fixture):
        with pytest.raises(ConfigError):
            ExtractionAdversary(fixture.guard, fixture.table, order="fancy")


class TestEstimate:
    def test_matches_run_on_cold_table(self):
        a = build_guarded_items(40, config=GuardConfig(cap=3.0))
        b = build_guarded_items(40, config=GuardConfig(cap=3.0))
        ran = ExtractionAdversary(a.guard, a.table, record=False).run()
        estimated = ExtractionAdversary(b.guard, b.table).estimate()
        assert estimated.total_delay == pytest.approx(ran.total_delay)
        assert estimated.tuples == ran.tuples

    def test_matches_run_on_warm_table(self):
        a = build_guarded_items(40, config=GuardConfig(cap=3.0))
        b = build_guarded_items(40, config=GuardConfig(cap=3.0))
        for fixture in (a, b):
            for item in (1, 1, 1, 2, 5, 5):
                fixture.guard.execute(f"SELECT * FROM items WHERE id = {item}")
        ran = ExtractionAdversary(a.guard, a.table, record=False).run()
        estimated = ExtractionAdversary(b.guard, b.table).estimate()
        assert estimated.total_delay == pytest.approx(ran.total_delay)

    def test_does_not_touch_guard_state(self):
        fixture = build_guarded_items(20)
        before_requests = fixture.guard.popularity.total_requests
        before_clock = fixture.clock.now()
        ExtractionAdversary(fixture.guard, fixture.table).estimate()
        assert fixture.guard.popularity.total_requests == before_requests
        assert fixture.clock.now() == before_clock

    def test_snapshot_virtual_times(self):
        fixture = build_guarded_items(10, config=GuardConfig(cap=1.0))
        result = ExtractionAdversary(fixture.guard, fixture.table).estimate()
        assert result.snapshot.completed_at == pytest.approx(10.0)


class TestStaleness:
    def test_staleness_from_observed_updates(self):
        fixture = build_guarded_items(10, config=GuardConfig(cap=1.0))
        adversary = ExtractionAdversary(fixture.guard, fixture.table)
        # Update item 10 after extraction starts but before it is read:
        # not stale. Then extract and update item 1 afterwards: also not
        # stale (after completion). Updates *during* extraction count.
        result = adversary.run()
        assert result.staleness is None  # no updates at all

    def test_observed_mid_extraction_update_counts(self):
        fixture = build_guarded_items(5, config=GuardConfig(cap=10.0))
        guard = fixture.guard

        # Extract item 1 (10s), then update item 1, then finish.
        guard.execute("SELECT * FROM items WHERE id = 1")
        first_done = fixture.clock.now()
        guard.execute("UPDATE items SET version = 1 WHERE id = 1")
        # Manually assemble the snapshot the adversary would have.
        from repro.core.staleness import Snapshot, stale_fraction

        snapshot = Snapshot(started_at=0.0)
        snapshot.add(1, None, first_done - 10.0 + 10.0)  # at 10.0
        snapshot.completed_at = fixture.clock.now() + 1.0
        # Update happened at clock 10.0 (no delay for DML), so boundary
        # semantics: updated exactly at extraction => not stale; nudge.
        guard.clock.advance(1.0)
        guard.execute("UPDATE items SET version = 2 WHERE id = 1")
        snapshot.completed_at = fixture.clock.now() + 1.0
        report = stale_fraction(
            snapshot, guard.last_update_times_for("items")
        )
        assert report.stale == 1

    def test_background_process_staleness(self):
        fixture = build_guarded_items(
            200, config=GuardConfig(policy="update", update_c=2.0, cap=10.0)
        )
        process = UpdateProcess.zipf(200, alpha=0.5, rmax=1.0)
        heap = fixture.database.catalog.table(fixture.table)
        rates = {
            ("items", rowid): process.rate(row[0])
            for rowid, row in heap.scan()
        }
        fixture.guard.update_rates.prime(rates, window=1e9)
        adversary = ExtractionAdversary(
            fixture.guard, fixture.table, record=False
        )
        result = adversary.estimate(
            update_process=process, rng=np.random.default_rng(7)
        )
        assert result.staleness is not None
        # Low skew with c=2: most of the snapshot should be stale.
        assert result.staleness.fraction > 0.3
