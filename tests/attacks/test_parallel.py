"""Tests for the parallel (Sybil) adversary and its economics."""

import pytest

from repro.attacks.parallel import ParallelAdversary
from repro.core import (
    AccountManager,
    AccountPolicy,
    DelayGuard,
    GuardConfig,
    VirtualClock,
)
from repro.core.errors import ConfigError
from repro.engine import Database
from repro.sim.experiment import build_guarded_items


def guarded_with_accounts(rows=60, cap=2.0, **policy_kwargs):
    db = Database()
    db.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, payload TEXT)")
    db.insert_rows("items", [(i, f"p{i}") for i in range(1, rows + 1)])
    clock = VirtualClock()
    accounts = AccountManager(
        policy=AccountPolicy(**policy_kwargs), clock=clock
    )
    guard = DelayGuard(
        db, config=GuardConfig(cap=cap), clock=clock, accounts=accounts
    )
    return guard, clock, accounts


class TestSimulate:
    def test_work_divided_across_identities(self):
        fixture = build_guarded_items(60, config=GuardConfig(cap=2.0))
        attack = ParallelAdversary(fixture.guard, fixture.table, identities=4)
        result = attack.simulate()
        assert result.identities == 4
        assert result.total_work == pytest.approx(120.0)  # 60 * 2s
        assert result.wall_time == pytest.approx(30.0)  # perfect split
        assert result.speedup == pytest.approx(4.0)

    def test_single_identity_no_speedup(self):
        fixture = build_guarded_items(60, config=GuardConfig(cap=2.0))
        result = ParallelAdversary(
            fixture.guard, fixture.table, identities=1
        ).simulate()
        assert result.speedup == pytest.approx(1.0)

    def test_registration_gate_adds_wall_time(self):
        guard, _, _ = guarded_with_accounts(
            rows=60, cap=2.0, registration_interval=100.0
        )
        result = ParallelAdversary(guard, "items", identities=10).simulate()
        # First registration is free, then 9 waits of 100s.
        assert result.registration_wait == pytest.approx(900.0)
        assert result.wall_time >= 900.0

    def test_gate_can_erase_parallel_benefit(self):
        guard, _, _ = guarded_with_accounts(
            rows=60, cap=2.0, registration_interval=100.0
        )
        serial = ParallelAdversary(guard, "items", identities=1).simulate()
        parallel = ParallelAdversary(guard, "items", identities=20).simulate()
        assert parallel.wall_time > serial.wall_time

    def test_fees_accumulate(self):
        guard, _, _ = guarded_with_accounts(
            rows=10, cap=1.0, registration_fee=3.0
        )
        result = ParallelAdversary(guard, "items", identities=5).simulate()
        assert result.fees_paid == 15.0

    def test_invalid_identity_count(self):
        fixture = build_guarded_items(10)
        with pytest.raises(ConfigError):
            ParallelAdversary(fixture.guard, fixture.table, identities=0)


class TestRegisterIdentities:
    def test_registers_through_gate_advancing_clock(self):
        guard, clock, accounts = guarded_with_accounts(
            rows=10, cap=1.0, registration_interval=50.0
        )
        attack = ParallelAdversary(guard, "items", identities=3)
        names = attack.register_identities()
        assert len(names) == 3
        assert len(accounts.accounts) == 3
        assert clock.now() >= 100.0  # two waits of 50s

    def test_requires_account_manager(self):
        fixture = build_guarded_items(10)
        attack = ParallelAdversary(fixture.guard, fixture.table, identities=2)
        with pytest.raises(ConfigError):
            attack.register_identities()

    def test_identities_share_subnet(self):
        guard, _, accounts = guarded_with_accounts(rows=5, cap=1.0)
        ParallelAdversary(
            guard, "items", identities=3, subnet="evil/24"
        ).register_identities()
        assert accounts.subnet_accounts("evil/24") == 3
