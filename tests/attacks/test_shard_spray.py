"""Shard-spray attack: does scaling out weaken the §2 delay defense?

The attack: an adversary extracts the whole database through a sharded
deployment, hoping that M shards each seeing only 1/M of the request
stream will under-estimate popularity denominators and under-price the
delays — an M-fold discount on the total extraction time.

The defense under test: anti-entropy gossip merges every shard's
popularity mass, so each shard prices against the *global* request
distribution and the total extraction delay stays at the single-node
figure no matter how many shards serve it.

Both claims are asserted: the gossiping 4-shard cluster charges within
10% of the single node, and the *same* cluster with gossip disabled
charges dramatically less — i.e. this test fails if gossip is turned
off, which is exactly the point.
"""

import pytest

from repro.cluster import ClusterService
from repro.core import GuardConfig
from repro.service import DataProviderService

ROWS = 48
WARM_PASSES = 6
GOSSIP_EVERY = 50  # queries between anti-entropy rounds while warming

# unit is chosen so a uniformly-warmed tuple prices at unit seconds
# (N·popularity == 1), comfortably below the cap — a capped price would
# mask the per-shard discount this attack exploits.
CONFIG = dict(policy="popularity", cap=30.0, unit=10.0, decay_rate=1.0)


def load_items(service) -> None:
    service.query(
        None, "CREATE TABLE items (id INTEGER PRIMARY KEY, payload TEXT)"
    )
    for i in range(1, ROWS + 1):
        service.query(None, f"INSERT INTO items VALUES ({i}, 'p{i}')")


def warm_uniformly(service, gossip=None) -> None:
    """Uniform legitimate traffic: every tuple WARM_PASSES lookups."""
    sent = 0
    for _ in range(WARM_PASSES):
        for i in range(1, ROWS + 1):
            service.query(None, f"SELECT * FROM items WHERE id = {i}")
            sent += 1
            if gossip is not None and sent % GOSSIP_EVERY == 0:
                gossip.run_round()
    if gossip is not None:
        gossip.run_round()


def spray_extraction_delay(service) -> float:
    """Total delay an adversary pays to read every tuple once.

    ``record=False`` prices the state the warm phase built without the
    spray itself shifting the distribution mid-measurement — the same
    figure on every deployment shape.
    """
    return sum(
        service.query(
            None, f"SELECT * FROM items WHERE id = {i}", record=False
        ).delay
        for i in range(1, ROWS + 1)
    )


def build_cluster(**kwargs):
    return ClusterService(
        shard_count=4, guard_config=GuardConfig(**CONFIG), **kwargs
    )


class TestShardSpray:
    def test_total_extraction_delay_does_not_drop_with_shards(self):
        reference = DataProviderService(guard_config=GuardConfig(**CONFIG))
        load_items(reference)
        warm_uniformly(reference)
        single_node = spray_extraction_delay(reference)
        assert single_node > 0

        cluster = build_cluster()
        load_items(cluster)
        warm_uniformly(cluster, gossip=cluster.gossip)
        clustered = spray_extraction_delay(cluster)

        # Four shards, one price: within 10% of the single node.
        assert clustered == pytest.approx(single_node, rel=0.10)

    def test_gossip_disabled_reopens_the_attack(self):
        """The control: without anti-entropy the discount is real.

        Each shard sees only ~1/M of the raw request total, inflates
        every popularity estimate ~M-fold, and under-prices delays to
        match — the 4-shard spray gets the database for well under the
        single-node cost. Gossip is load-bearing, not decorative.
        """
        reference = DataProviderService(guard_config=GuardConfig(**CONFIG))
        load_items(reference)
        warm_uniformly(reference)
        single_node = spray_extraction_delay(reference)

        dark = build_cluster(gossip=False)
        load_items(dark)
        warm_uniformly(dark, gossip=None)
        discounted = spray_extraction_delay(dark)

        assert discounted < 0.6 * single_node, (
            "gossip-off cluster charged like a single node; the attack "
            "this defense exists for would never have worked"
        )
        # And the discount is roughly the shard count, as predicted.
        assert discounted == pytest.approx(single_node / 4, rel=0.25)
