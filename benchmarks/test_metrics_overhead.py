"""Observability-cost microbenchmarks: instrumented vs. uninstrumented.

The obs layer adds per-query work to the guard's hot path: a trace
object, ~10 perf_counter readings, and a handful of locked counter
increments plus one histogram observe. The acceptance criterion for
this PR is that the fully instrumented guard costs < 5% single-threaded
throughput against ``Observability.disabled()`` — observability must be
cheap enough to leave on in production, or nobody will have the numbers
when an extraction attack actually happens.

The comparison uses interleaved min-of-repeats manual timing — both
guards are timed alternately inside one loop, so clock-frequency drift
or background load hits both paths equally and the *ratio* stays
honest (two sequential timing blocks can disagree by 30%+ on a busy
machine even for identical code). pytest-benchmark cases are kept too,
for tracking absolute cost over time.

Run with::

    pytest benchmarks/test_metrics_overhead.py --benchmark-only
    pytest benchmarks/test_metrics_overhead.py -k overhead_budget
"""

import time

from repro.core import DelayGuard, GuardConfig, VirtualClock
from repro.engine import Database
from repro.obs import Observability

ROWS = 500
QUERIES = 200
REPEATS = 25
#: Acceptance: instrumentation costs < 5%; asserted at 10% to keep CI
#: machines' scheduling noise from flaking the build (the margin is
#: routinely ~1-3% on an idle machine).
BUDGET = 0.10


def build_guard(obs=None):
    database = Database()
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    database.insert_rows("t", [(i, f"v{i}") for i in range(1, ROWS + 1)])
    return DelayGuard(
        database,
        config=GuardConfig(cap=5.0),
        clock=VirtualClock(),
        obs=obs,
    )


def serve(guard, statements):
    for sql in statements:
        guard.execute(sql, sleep=False)


def interleaved_minima(guards, statements, repeats=REPEATS):
    """Min-of-repeats for each guard, alternating between them.

    Interleaving means slow moments (GC, frequency scaling, a noisy
    neighbour) are shared across the compared paths instead of landing
    entirely on whichever happened to be measured second.
    """
    minima = [float("inf")] * len(guards)
    for _ in range(repeats):
        for index, guard in enumerate(guards):
            start = time.perf_counter()
            serve(guard, statements)
            minima[index] = min(
                minima[index], time.perf_counter() - start
            )
    return minima


def make_statements():
    return [
        f"SELECT * FROM t WHERE id = {1 + i % ROWS}" for i in range(QUERIES)
    ]


def test_observability_overhead_within_budget():
    """Instrumented throughput within BUDGET of the uninstrumented guard."""
    statements = make_statements()
    plain_guard = build_guard(obs=Observability.disabled())
    instrumented_guard = build_guard()
    # Warm both paths (parse cache, first-touch allocations) before
    # timing anything.
    serve(plain_guard, statements)
    serve(instrumented_guard, statements)

    plain, instrumented = interleaved_minima(
        [plain_guard, instrumented_guard], statements
    )

    overhead = instrumented / plain - 1.0
    assert overhead < BUDGET, (
        f"observability overhead {overhead:.1%} exceeds {BUDGET:.0%} "
        f"(plain {plain * 1e3:.2f} ms, "
        f"instrumented {instrumented * 1e3:.2f} ms for {QUERIES} queries)"
    )


def test_instrumented_guard_throughput(benchmark):
    """Absolute cost of the fully instrumented hot path, for tracking."""
    guard = build_guard()
    statements = make_statements()
    benchmark(serve, guard, statements)
    assert guard.stats.queries >= QUERIES
    assert guard.obs.tracer.finished_total >= QUERIES


def test_uninstrumented_guard_throughput(benchmark):
    """Baseline: the same hot path with Observability.disabled()."""
    guard = build_guard(obs=Observability.disabled())
    statements = make_statements()
    benchmark(serve, guard, statements)
    assert guard.stats.queries >= QUERIES
    assert len(guard.obs.registry) == 0


def test_histogram_observe_throughput(benchmark):
    """Raw cost of one histogram observe (the per-SELECT stats add-on)."""
    from repro.obs import Histogram

    histogram = Histogram("bench_delay_seconds")
    values = [(i % 97) * 0.01 for i in range(10_000)]

    def observe_all():
        for value in values:
            histogram.observe(value)

    benchmark(observe_all)
    assert histogram.count >= len(values)
