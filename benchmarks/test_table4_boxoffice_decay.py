"""Table 4 benchmark: weekly-decay sweep on the full box-office year.

Paper rows: decay 1.00 → median 0.03 ms / adversary 1.33 h, up to decay
5.00 → median 1.26 ms / adversary 1.76 h (= 100% of the N·d_max bound).
Shape: medians rise gently with decay and stay tiny; every decay rate
pushes the adversary to a large fraction of the bound, approaching 100%
as decay grows.
"""

import pytest

from repro.experiments import run_table4
from repro.experiments.table4_boxoffice_decay import PAPER_DECAYS


def test_table4_boxoffice_decay(benchmark):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    result.to_table().show()

    assert [row.decay for row in result.rows] == list(PAPER_DECAYS)

    # Median user delay grows monotonically but stays small relative to
    # the 10s cap (the box-office head is always hot).
    medians = [row.median_user_delay for row in result.rows]
    assert medians == sorted(medians)
    assert medians[-1] < 2.0

    # The paper's bound for 634 films at 10s is 1.76 h.
    assert result.max_hours == pytest.approx(1.76, abs=0.02)

    # Adversary delay is a large fraction of the bound everywhere and
    # approaches 100% at high decay (paper: 1.33h -> 1.76h).
    adversaries = [row.adversary_delay for row in result.rows]
    assert adversaries[-1] >= adversaries[0]
    assert adversaries[0] > 0.5 * result.max_extraction_delay
    assert adversaries[-1] > 0.9 * result.max_extraction_delay
