"""Ablation benchmark: the parallel attack, actually run (§2.4).

Unlike the analytic `ParallelAdversary.simulate()`, this runs k Sybil
sessions concurrently through the guard on the event-driven simulator,
with and without the subnet-aggregate rate limit. Measures wall time
(simulated) per configuration.
"""

import pytest

from repro.core import (
    AccountManager,
    AccountPolicy,
    DelayGuard,
    GuardConfig,
    VirtualClock,
)
from repro.engine import Database
from repro.sim import ConcurrentSimulation, ResultTable, extraction_script
from repro.sim.metrics import format_seconds

POPULATION = 2_000
CAP = 10.0


def run_parallel_attack(identities, subnet_rate=None):
    db = Database()
    db.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, v TEXT)")
    db.insert_rows("items", [(i, "x") for i in range(1, POPULATION + 1)])
    clock = VirtualClock()
    accounts = AccountManager(
        policy=AccountPolicy(
            subnet_query_rate=subnet_rate,
            subnet_query_burst=10.0 if subnet_rate else 20.0,
        ),
        clock=clock,
    )
    guard = DelayGuard(
        db, config=GuardConfig(cap=CAP), clock=clock, accounts=accounts
    )
    sim = ConcurrentSimulation(guard, max_retries=10_000)
    for index in range(identities):
        name = f"sybil-{index}"
        accounts.register(name, subnet="203.0.113.0/24")
        items = range(index + 1, POPULATION + 1, identities)
        sim.add_session(
            name, extraction_script("items", items), identity=name,
            record=False,
        )
    report = sim.run()
    extracted = sum(s.queries for s in report.sessions.values())
    return report.makespan, extracted


def test_ablation_parallel_attack(benchmark):
    def experiment():
        rows = {}
        for k in (1, 10, 50):
            rows[("open", k)] = run_parallel_attack(k)
        # Subnet limit: all identities share 0.5 queries/sec.
        rows[("subnet-limited", 50)] = run_parallel_attack(
            50, subnet_rate=0.5
        )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = ResultTable(
        title="Ablation — Parallel (Sybil) Attack, Executed Concurrently",
        columns=("defense", "identities", "wall time", "tuples"),
        note=f"{POPULATION} cold tuples, cap {CAP:g}s "
        f"(serial bound {format_seconds(POPULATION * CAP)})",
    )
    for (defense, k), (makespan, extracted) in rows.items():
        table.add_row(defense, str(k), format_seconds(makespan),
                      str(extracted))
    table.show()

    serial, _ = rows[("open", 1)]
    ten, _ = rows[("open", 10)]
    fifty, _ = rows[("open", 50)]
    limited, extracted = rows[("subnet-limited", 50)]

    # Unthrottled parallelism is nearly perfect: k identities cut the
    # wall time by ~k.
    assert serial == pytest.approx(POPULATION * CAP)
    assert ten == pytest.approx(serial / 10, rel=0.05)
    assert fifty == pytest.approx(serial / 50, rel=0.10)

    # The subnet aggregate limit removes the advantage: 50 identities
    # behind one subnet are no faster than the shared rate allows.
    assert limited > 0.9 * POPULATION / 0.5
    assert limited > 5 * fifty
    assert extracted == POPULATION  # they do finish — just slowly
