"""Figures 4-6 benchmark: update-rate delays at 100,000 tuples.

Paper setup: uniform queries, Zipf updates with α swept 0.25..2.5,
delays assigned inversely to update rate. Shapes:

* Fig 4 — median user delay rises with skew to the 10 s cap (log y).
* Fig 5 — total adversary delay rises to ~N·d_max (log y, 10^5-10^6 s).
* Fig 6 — staleness ~100% at modest skew, falling once updates focus on
  few tuples (while the adversary pays the maximum delay anyway).
"""

import pytest

from repro.experiments import run_fig456
from repro.experiments.fig456_update_skew import PAPER_SKEWS


def test_fig456_update_skew(benchmark):
    result = benchmark.pedantic(run_fig456, rounds=1, iterations=1)
    result.to_table().show()

    assert result.population == 100_000
    assert [point.alpha for point in result.points] == list(PAPER_SKEWS)

    # Figure 4: monotone median, reaching the cap at high skew.
    medians = [point.median_user_delay for point in result.points]
    assert medians == sorted(medians)
    assert medians[0] < 0.01  # sub-10ms at alpha=0.25
    assert medians[-1] == pytest.approx(result.cap)

    # Figure 5: monotone adversary delay approaching the bound, with a
    # dynamic range of several orders of magnitude (the log-y figure).
    adversaries = [point.adversary_delay for point in result.points]
    assert adversaries == sorted(adversaries)
    assert adversaries[-1] > 1e4 * 0.9  # hundreds of thousands of sec
    assert adversaries[-1] > 0.9 * result.max_extraction_delay
    assert adversaries[-1] / adversaries[0] > 1e3

    # Figure 6: full staleness through modest skew, collapsing at high
    # skew (where the cap truncates the extraction time).
    stale = [point.stale_fraction for point in result.points]
    assert all(value > 0.95 for value in stale[:4])  # alpha <= 1.0
    assert stale[-1] < 0.2
    # Monotone non-increasing past the knee.
    knee = stale.index(max(stale))
    tail = stale[knee:]
    assert all(a >= b - 1e-9 for a, b in zip(tail, tail[1:]))

    # Equation (12) agreement in the uncapped regime.
    for point in result.points[:4]:
        assert point.stale_fraction == pytest.approx(
            min(1.0, point.predicted_staleness), abs=0.05
        )
