"""Durability-cost microbenchmarks: journal appends and recovery time.

The write-ahead journal fsyncs every commit, which is the textbook
durability tax. These benchmarks record (a) write throughput with no
journal, with a sync journal, and with fsync disabled — so the fsync
cost is visible separately from the framing/serialisation cost — and
(b) recovery time from a journal of realistic length, which bounds how
long a crashed provider stays offline (reported in EXPERIMENTS.md).

Run with::

    pytest benchmarks/test_durability_overhead.py --benchmark-only
"""

import pytest

from repro.engine import Database, WriteAheadJournal, recover_database

WRITES = 200
RECOVERY_STATEMENTS = 1000


def build_database(journal_path=None, sync=True):
    database = Database()
    if journal_path is not None:
        database.attach_journal(WriteAheadJournal(journal_path, sync=sync))
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    return database


def write_workload(database, count=WRITES):
    for i in range(count):
        database.execute(f"INSERT INTO t VALUES ({i}, 'v{i}')")


def test_writes_no_journal(benchmark):
    """Baseline: the engine alone, durability off."""

    def run():
        write_workload(build_database())

    benchmark(run)


def test_writes_sync_journal(benchmark, tmp_path):
    """Full durability: one fsync per autocommit statement."""
    counter = iter(range(10**9))

    def run():
        path = tmp_path / f"sync-{next(counter)}.bin"
        database = build_database(path, sync=True)
        write_workload(database)
        database.journal.close()

    benchmark(run)


def test_writes_nosync_journal(benchmark, tmp_path):
    """Journal framing without fsync: isolates the serialisation cost."""
    counter = iter(range(10**9))

    def run():
        path = tmp_path / f"nosync-{next(counter)}.bin"
        database = build_database(path, sync=False)
        write_workload(database)
        database.journal.close()

    benchmark(run)


def test_batched_transaction_amortises_fsync(benchmark, tmp_path):
    """One txn around the workload: a single fsync for all writes."""
    counter = iter(range(10**9))

    def run():
        path = tmp_path / f"batch-{next(counter)}.bin"
        database = build_database(path, sync=True)
        database.execute("BEGIN")
        write_workload(database)
        database.execute("COMMIT")
        database.journal.close()

    benchmark(run)


@pytest.fixture(scope="module")
def long_journal(tmp_path_factory):
    """A journal holding RECOVERY_STATEMENTS committed statements."""
    path = tmp_path_factory.mktemp("recovery") / "journal.bin"
    database = build_database(path, sync=False)
    for i in range(RECOVERY_STATEMENTS):
        database.execute(f"INSERT INTO t VALUES ({i}, 'v{i}')")
    database.journal.close()
    return path


def test_recovery_time(benchmark, long_journal):
    """Replay cost per journalled statement — the crash-restart budget."""

    def run():
        recovered, report = recover_database(None, long_journal)
        assert report.replayed_statements == RECOVERY_STATEMENTS + 1
        return recovered

    recovered = benchmark(run)
    assert recovered.row_count("t") == RECOVERY_STATEMENTS
