"""Engine microbenchmarks: the substrate's raw operation costs.

These are conventional pytest-benchmark timings (many rounds) for the
hot paths the guarded workloads exercise: point lookups through the
primary key, index range scans, full scans, inserts, and SQL parsing.
They make the Table 5 overhead number interpretable — the guard's cost
is relative to *these* baselines.
"""

import pytest

from repro.engine import Database
from repro.engine.parser import parse

POPULATION = 10_000


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, score FLOAT)"
    )
    database.execute("CREATE INDEX igrp ON t (grp)")
    database.execute("CREATE INDEX iscore ON t (score)")
    database.insert_rows(
        "t",
        [(i, i % 100, float(i % 1000)) for i in range(1, POPULATION + 1)],
    )
    return database


def test_pk_lookup(benchmark, db):
    result = benchmark(db.query, "SELECT * FROM t WHERE id = 5000")
    assert len(result) == 1


def test_hash_index_lookup(benchmark, db):
    result = benchmark(db.query, "SELECT id FROM t WHERE grp = 42")
    assert len(result) == POPULATION // 100


def test_index_range_scan(benchmark, db):
    result = benchmark(
        db.query, "SELECT id FROM t WHERE score BETWEEN 100 AND 110"
    )
    assert len(result) > 0


def test_full_scan_with_predicate(benchmark, db):
    result = benchmark(
        db.query, "SELECT id FROM t WHERE score * 2 > 1990"
    )
    assert len(result) > 0


def test_aggregate_full_table(benchmark, db):
    result = benchmark(db.query, "SELECT COUNT(*), AVG(score) FROM t")
    assert result[0][0] == POPULATION


def test_group_by(benchmark, db):
    result = benchmark(
        db.query, "SELECT grp, COUNT(*) FROM t GROUP BY grp"
    )
    assert len(result) == 100


def test_sql_parse_only(benchmark):
    statement = benchmark(
        parse,
        "SELECT a, b FROM t WHERE x = 1 AND y BETWEEN 2 AND 3 "
        "ORDER BY a DESC LIMIT 10",
    )
    assert statement.table == "t"


def test_insert_throughput(benchmark):
    database = Database()
    database.execute("CREATE TABLE w (id INTEGER PRIMARY KEY, v TEXT)")
    counter = iter(range(1, 10_000_000))

    def insert_one():
        database.table("w").insert([next(counter), "payload"])

    benchmark(insert_one)
    assert database.row_count("w") > 0
