"""Table 1 benchmark: synthetic trace scaling at published sizes.

Paper rows: 100k tuples → 2 weeks, 500k → 8 weeks, 1M → 17 weeks of
adversary delay, with 0.0 ms median user delay throughout (cap 10 s).
"""

import pytest

from repro.experiments import run_table1
from repro.experiments.table1_synthetic_scaling import (
    PAPER_ADVERSARY_WEEKS,
    PAPER_SIZES,
    WEEK_SECONDS,
)


def test_table1_synthetic_scaling(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    result.to_table().show()

    assert [row.size for row in result.rows] == list(PAPER_SIZES)

    for row, paper_weeks in zip(result.rows, PAPER_ADVERSARY_WEEKS):
        # Median user delay ≈ 0 ms (paper reports 0.0 for all sizes).
        assert row.median_user_delay < 0.010
        # Adversary delay lands in the paper's weeks band (within 2x):
        # with nearly every tuple cold, total ≈ N * cap ≈ paper value.
        assert row.adversary_weeks == pytest.approx(paper_weeks, rel=0.5)

    # Linear scaling in N: 10x tuples => ~10x adversary delay.
    first, last = result.rows[0], result.rows[-1]
    scale = (last.size / first.size)
    assert last.adversary_delay / first.adversary_delay == pytest.approx(
        scale, rel=0.25
    )
