"""Audit + forensics overhead on the multi-client scan workload.

The audit log and the forensics stage both sit on the serving path
(the guard emits events per query; the pipeline feeds the coverage
monitor per SELECT), so their cost budget is explicit: enabling both
must cost at most 5% of the throughput of the same workload on the
same server without them. The audit writer being a bounded background
queue — never a synchronous disk write — is what makes this hold.

Run with::

    pytest benchmarks/test_audit_overhead.py --benchmark-only
"""

import threading
import time

from repro.core import AccountPolicy, GuardConfig, RealClock
from repro.server import DelayClient, DelayServer
from repro.service import DataProviderService

ROWS = 100
CLIENTS = 8
QUERIES_PER_CLIENT = 12
FIXED_DELAY = 0.02
#: Acceptance bound: audit + forensics may cost at most this fraction
#: of baseline throughput.
MAX_OVERHEAD = 0.05


def build_server(tmp_path=None, observability=False):
    """The throughput-benchmark server, optionally fully instrumented."""
    config = dict(policy="fixed", fixed_delay=FIXED_DELAY)
    audit_path = None
    if observability:
        config.update(
            forensics=True,
            forensics_min_requests=10,
            forensics_window=50,
        )
        audit_path = str(tmp_path / "audit.jsonl")
    service = DataProviderService(
        guard_config=GuardConfig(**config),
        account_policy=AccountPolicy(),
        clock=RealClock(),
        audit_path=audit_path,
    )
    service.database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
    )
    service.database.insert_rows(
        "t", [(i, f"v{i}") for i in range(1, ROWS + 1)]
    )
    server = DelayServer(service)
    server.start()
    return server


def run_client(server, identity, count):
    with DelayClient(*server.address) as client:
        client.register(identity)
        for i in range(count):
            client.query(
                f"SELECT * FROM t WHERE id = {1 + i % ROWS}",
                identity=identity,
            )


def run_fleet(server, tag):
    threads = [
        threading.Thread(
            target=run_client,
            args=(server, f"{tag}-{i}", QUERIES_PER_CLIENT),
        )
        for i in range(CLIENTS)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    return CLIENTS * QUERIES_PER_CLIENT / elapsed


def test_audit_and_forensics_overhead(benchmark, tmp_path):
    """Full observability costs <= 5% of baseline scan throughput."""
    baseline = build_server()
    instrumented = build_server(tmp_path, observability=True)
    try:
        # Warm-up both servers (parse cache, first connections).
        run_client(baseline, "warmup", 2)
        run_client(instrumented, "warmup", 2)

        baseline_rate = run_fleet(baseline, "base")

        def instrumented_fleet():
            return run_fleet(instrumented, "obs")

        instrumented_rate = benchmark.pedantic(
            instrumented_fleet, rounds=1, iterations=1
        )

        overhead = 1.0 - instrumented_rate / baseline_rate
        audit = instrumented.service.obs.audit
        audit.flush()
        stats = audit.stats()
        benchmark.extra_info["baseline_rate_qps"] = round(
            baseline_rate, 2
        )
        benchmark.extra_info["instrumented_rate_qps"] = round(
            instrumented_rate, 2
        )
        benchmark.extra_info["overhead_fraction"] = round(overhead, 4)
        benchmark.extra_info["audit_events_written"] = stats["written"]
        benchmark.extra_info["audit_events_dropped"] = stats["dropped"]

        # Every served query must have produced its audit events
        # (served + priced), none dropped at this throughput.
        assert stats["written"] > 0
        assert stats["dropped"] == 0
        forensics = instrumented.service.guard.forensics
        assert forensics.summary()["tracked_identities"] > 0
        assert overhead <= MAX_OVERHEAD, (
            f"audit + forensics cost {overhead:.1%} of throughput "
            f"({instrumented_rate:.1f} vs {baseline_rate:.1f} q/s); "
            f"budget is {MAX_OVERHEAD:.0%}"
        )
        assert not baseline.handler_errors
        assert not instrumented.handler_errors
    finally:
        baseline.stop()
        instrumented.stop()
