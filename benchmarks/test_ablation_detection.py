"""Ablation benchmark: extraction detection (§2.4's 'we will notice').

Runs a population of legitimate Zipf browsers plus one extraction robot
through the coverage/novelty monitor and measures the separation: the
robot must be flagged before it has copied 25% of the database, with
zero false positives among the browsers.
"""

import pytest

from repro.core.detection import CoverageMonitor
from repro.sim.experiment import ResultTable
from repro.workloads.zipf import ZipfSampler

POPULATION = 20_000
BROWSERS = 20
BROWSER_REQUESTS = 5_000


def run_detection_experiment():
    # Thresholds: the flattest legitimate browser here (alpha=0.8 over
    # 5k requests) plateaus around 15% coverage and ~50% novelty; the
    # robot is 100% novel forever, so novelty catches it right after
    # the grace period while coverage stays a safe backstop.
    monitor = CoverageMonitor(
        population=POPULATION,
        coverage_threshold=0.25,
        novelty_threshold=0.90,
        window=500,
        min_requests=300,
    )
    # Legitimate browsers with varied skew.
    for index in range(BROWSERS):
        sampler = ZipfSampler(
            POPULATION, alpha=0.8 + 0.05 * index, seed=100 + index
        )
        name = f"browser-{index}"
        for item in sampler.sample_many(BROWSER_REQUESTS):
            monitor.record(name, [("t", int(item))])

    # The robot walks the key space; find when it gets flagged.
    flagged_at = None
    for item in range(1, POPULATION + 1):
        monitor.record("robot", [("t", item)])
        if flagged_at is None and monitor.evaluate("robot") is not None:
            flagged_at = item
    return monitor, flagged_at


def test_ablation_detection(benchmark):
    monitor, flagged_at = benchmark.pedantic(
        run_detection_experiment, rounds=1, iterations=1
    )

    table = ResultTable(
        title="Ablation — Extraction Detection (coverage + novelty)",
        columns=("identity", "coverage", "novelty", "flagged"),
        note=(
            f"robot flagged after {flagged_at} of {POPULATION} tuples "
            f"({flagged_at / POPULATION:.1%} copied)"
        ),
    )
    suspects = {s.identity for s in monitor.suspects()}
    for index in (0, BROWSERS // 2, BROWSERS - 1):
        name = f"browser-{index}"
        table.add_row(
            name,
            f"{monitor.coverage(name):.1%}",
            f"{monitor.novelty_rate(name):.1%}",
            "YES" if name in suspects else "no",
        )
    table.add_row(
        "robot",
        f"{monitor.coverage('robot'):.1%}",
        f"{monitor.novelty_rate('robot'):.1%}",
        "YES" if "robot" in suspects else "no",
    )
    table.show()

    # The robot is caught early...
    assert flagged_at is not None
    assert flagged_at / POPULATION <= 0.25
    # ...and no legitimate browser is flagged.
    assert suspects == {"robot"}
