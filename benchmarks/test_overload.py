"""Overload benchmarks: shed latency and goodput under 2x / 10x load.

The bounded-admission refactor claims two things under overload, and
these benchmarks measure both against a live RealClock server:

1. **Sheds are fast.** A client the server cannot serve hears
   ``{"ok": false, "reason": "overloaded", "retry_after": ...}`` in
   well under 100 ms — it is never accepted and left to time out. This
   holds at 2x and at 10x the connection capacity, because shedding
   happens on the I/O loop and in the parking lot, never behind a
   busy worker.
2. **Degradation is asymmetric, the way the paper needs it.** Under
   parking-lot pressure the server sheds the *largest priced delays*
   first, so an adversary fleet issuing heavily-penalised range scans
   is sacrificed while cheap legitimate point queries keep flowing:
   cheap-query goodput at overload stays within 20% of its unloaded
   baseline.

Run with::

    pytest benchmarks/test_overload.py --benchmark-only
"""

import threading
import time

from repro.core import GuardConfig, RealClock
from repro.server import DelayClient, DelayServer, ServerError
from repro.service import DataProviderService

ROWS = 100
#: Cheap per-tuple delay: a legitimate point query owes 10 ms.
FIXED_DELAY = 0.01
#: Tuples the adversarial range scan touches: 20 * 10 ms = 200 ms owed.
ADVERSARY_TUPLES = 20
#: Connection capacity for the shed-latency waves.
WAVE_CONNECTIONS = 8
#: The acceptance bar for answering a shed request.
SHED_LATENCY_BUDGET = 0.1


def build_service():
    service = DataProviderService(
        guard_config=GuardConfig(policy="fixed", fixed_delay=FIXED_DELAY),
        clock=RealClock(),
    )
    service.database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
    )
    service.database.insert_rows(
        "t", [(i, f"v{i}") for i in range(1, ROWS + 1)]
    )
    return service


def overload_wave(server, total_clients, hold_seconds=0.1):
    """``total_clients`` connect at once; each runs one cheap query and
    holds its connection briefly. Returns (served, shed_latencies)."""
    outcomes = []
    lock = threading.Lock()
    barrier = threading.Barrier(total_clients)

    def one_client(index):
        barrier.wait()
        started = time.perf_counter()
        try:
            with DelayClient(*server.address) as client:
                client.query(
                    f"SELECT * FROM t WHERE id = {1 + index % ROWS}"
                )
                time.sleep(hold_seconds)
                outcome = ("served", time.perf_counter() - started)
        except ServerError as error:
            kind = "shed" if error.reason == "overloaded" else "error"
            outcome = (kind, time.perf_counter() - started)
        with lock:
            outcomes.append(outcome)

    threads = [
        threading.Thread(target=one_client, args=(index,))
        for index in range(total_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert len(outcomes) == total_clients
    assert not any(kind == "error" for kind, _ in outcomes)
    served = [t for kind, t in outcomes if kind == "served"]
    shed = [t for kind, t in outcomes if kind == "shed"]
    return served, shed


def test_shed_latency_at_2x_and_10x(benchmark):
    """Overflow connections are answered in < 100 ms at 2x and 10x load.

    Admitted clients hold their connection for 100 ms, so every wave
    genuinely exceeds ``max_connections``; the overflow must hear the
    overload answer from the I/O loop immediately — its latency must
    not scale with the load factor.
    """
    service = build_service()
    server = DelayServer(
        service,
        max_workers=4,
        max_connections=WAVE_CONNECTIONS,
    )
    server.start()
    try:
        # Warm-up.
        with DelayClient(*server.address) as client:
            client.query("SELECT * FROM t WHERE id = 1")

        served_2x, shed_2x = overload_wave(server, 2 * WAVE_CONNECTIONS)
        assert shed_2x, "2x wave produced no sheds"

        threads_before = threading.active_count()

        def wave_10x():
            return overload_wave(server, 10 * WAVE_CONNECTIONS)

        served_10x, shed_10x = benchmark.pedantic(
            wave_10x, rounds=1, iterations=1
        )
        assert shed_10x, "10x wave produced no sheds"
        # Thread count did not balloon with 80 concurrent clients: the
        # server side is the worker pool plus its fixed machinery.
        assert threading.active_count() <= (
            threads_before + server.max_workers + 4
        )

        for label, shed in (("2x", shed_2x), ("10x", shed_10x)):
            worst = max(shed)
            assert worst < SHED_LATENCY_BUDGET, (
                f"{label} overload: slowest shed took {worst * 1000:.1f} ms"
                f" (budget {SHED_LATENCY_BUDGET * 1000:.0f} ms)"
            )

        assert served_2x and served_10x  # admitted work still completed
        assert server.shed_counts.get("connection_limit", 0) >= (
            len(shed_2x) + len(shed_10x)
        )
        benchmark.extra_info["served_2x"] = len(served_2x)
        benchmark.extra_info["shed_2x"] = len(shed_2x)
        benchmark.extra_info["shed_2x_max_ms"] = round(
            max(shed_2x) * 1000, 2
        )
        benchmark.extra_info["served_10x"] = len(served_10x)
        benchmark.extra_info["shed_10x"] = len(shed_10x)
        benchmark.extra_info["shed_10x_max_ms"] = round(
            max(shed_10x) * 1000, 2
        )
        assert not server.handler_errors
    finally:
        server.stop()


def test_cheap_goodput_survives_adversarial_overload(benchmark):
    """Cheap-query goodput under adversary pressure stays within 20%.

    Four legitimate clients issue 10 ms point queries continuously.
    Then an adversary fleet floods the server with 200 ms range scans —
    enough offered delay to oversubscribe the parking lot many times
    over. The lot sheds the largest priced delay first, so the
    adversaries absorb the shedding and the legitimate fleet's goodput
    (completed queries per second) stays within 20% of its unloaded
    baseline. No cheap query is ever shed.
    """
    service = build_service()
    cheap_clients = 4
    adversaries = 12
    window = 1.2
    server = DelayServer(
        service,
        max_workers=8,
        max_connections=64,
        # The lot fits exactly the legitimate fleet's in-flight delays:
        # every adversarial park oversubscribes it.
        max_parked=cheap_clients,
    )
    server.start()
    try:
        with DelayClient(*server.address) as client:
            client.query("SELECT * FROM t WHERE id = 1")

        def cheap_loop(duration, counts, index):
            done = 0
            shed = 0
            deadline = time.monotonic() + duration
            with DelayClient(*server.address) as client:
                while time.monotonic() < deadline:
                    try:
                        client.query(
                            f"SELECT * FROM t WHERE id = {1 + done % ROWS}"
                        )
                        done += 1
                    except ServerError as error:
                        if error.reason == "overloaded":
                            shed += 1
                        else:
                            raise
            counts[index] = (done, shed)

        def run_cheap_fleet(duration):
            counts = {}
            threads = [
                threading.Thread(
                    target=cheap_loop, args=(duration, counts, index)
                )
                for index in range(cheap_clients)
            ]
            started = time.monotonic()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            elapsed = time.monotonic() - started
            done = sum(done for done, _ in counts.values())
            shed = sum(shed for _, shed in counts.values())
            return done / elapsed, shed

        # Unloaded baseline.
        baseline_goodput, baseline_shed = run_cheap_fleet(window)
        assert baseline_shed == 0

        # Overload: the adversary fleet hammers range scans for the
        # whole window; each shed answer is timed.
        stop_adversaries = threading.Event()
        adversary_stats = {"attempts": 0, "sheds": 0, "served": 0}
        shed_latencies = []
        stats_lock = threading.Lock()

        def adversary_loop():
            with DelayClient(*server.address) as client:
                while not stop_adversaries.is_set():
                    started = time.perf_counter()
                    try:
                        client.query(
                            f"SELECT * FROM t WHERE id <= {ADVERSARY_TUPLES}"
                        )
                        outcome = "served"
                    except ServerError as error:
                        if error.reason != "overloaded":
                            raise
                        outcome = "sheds"
                        with stats_lock:
                            shed_latencies.append(
                                time.perf_counter() - started
                            )
                    with stats_lock:
                        adversary_stats["attempts"] += 1
                        adversary_stats[outcome] += 1
                    time.sleep(0.02)

        adversary_threads = [
            threading.Thread(target=adversary_loop)
            for _ in range(adversaries)
        ]
        for thread in adversary_threads:
            thread.start()
        time.sleep(0.1)  # let the flood establish

        def contended_fleet():
            return run_cheap_fleet(window)

        overload_goodput, cheap_sheds = benchmark.pedantic(
            contended_fleet, rounds=1, iterations=1
        )
        stop_adversaries.set()
        for thread in adversary_threads:
            thread.join(timeout=30)

        ratio = overload_goodput / baseline_goodput
        benchmark.extra_info["baseline_goodput_qps"] = round(
            baseline_goodput, 1
        )
        benchmark.extra_info["overload_goodput_qps"] = round(
            overload_goodput, 1
        )
        benchmark.extra_info["goodput_ratio"] = round(ratio, 3)
        benchmark.extra_info["adversary_attempts"] = adversary_stats[
            "attempts"
        ]
        benchmark.extra_info["adversary_sheds"] = adversary_stats["sheds"]
        if shed_latencies:
            benchmark.extra_info["adversary_shed_max_ms"] = round(
                max(shed_latencies) * 1000, 2
            )

        # The adversaries were genuinely shed, fast, and the shedding
        # hit them — not the legitimate fleet.
        assert adversary_stats["sheds"] > 0
        assert max(shed_latencies) < 0.25
        assert cheap_sheds == 0, (
            f"{cheap_sheds} cheap queries were shed ahead of the "
            "adversaries' larger delays"
        )
        assert ratio >= 0.8, (
            f"cheap goodput degraded {100 * (1 - ratio):.0f}% under "
            f"adversarial overload ({overload_goodput:.1f} vs "
            f"{baseline_goodput:.1f} q/s)"
        )
        assert not server.handler_errors
    finally:
        server.stop()
