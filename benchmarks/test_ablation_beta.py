"""Ablation benchmark: the penalty exponent β of equation (1).

β multiplies each tuple's delay by rank^β. Uncapped, the adversary's
total grows super-linearly with β (eq. 2); with a cap, it saturates at
N·d_max while β pushes more of the tail onto the cap.
"""

import pytest

from repro.experiments.ablations import run_beta_ablation


def test_ablation_beta(benchmark):
    result = benchmark.pedantic(run_beta_ablation, rounds=1, iterations=1)
    result.to_table().show()

    betas = [row.beta for row in result.rows]
    assert betas == sorted(betas)

    # Uncapped adversary delay grows strictly (and fast) with beta.
    uncapped = [row.uncapped_adversary_delay for row in result.rows]
    assert uncapped == sorted(uncapped)
    assert uncapped[-1] > 10 * uncapped[0]

    # Capped adversary delay grows monotonically but saturates at the
    # N*d_max bound.
    capped = [row.adversary_delay for row in result.rows]
    assert capped == sorted(capped)
    bound = result.population * 10.0
    assert capped[-1] <= bound + 1e-6
    assert capped[-1] > 0.9 * bound

    # The popularity-weighted median stays below the cap even at the
    # largest beta: the penalty lands on the tail, not on typical users.
    assert result.rows[0].median_user_delay < 10.0
