"""Ablation benchmark: delay policies vs the naive baseline.

One mixed workload (Zipf queries + Zipf updates), five policies. The
"fixed" baseline is calibrated to charge the adversary exactly what the
popularity scheme does — making visible what §1 claims: a uniform
restriction either fails to slow the adversary or crushes the median
user.
"""

import pytest

from repro.experiments.ablations import run_policy_ablation


def test_ablation_policies(benchmark):
    result = benchmark.pedantic(run_policy_ablation, rounds=1, iterations=1)
    result.to_table().show()

    popularity = result.row("popularity")
    fixed = result.row("fixed (calibrated)")
    update = result.row("update-rate")
    both = result.row("both (max)")
    none = result.row("none")

    # The unprotected baseline: free for everyone.
    assert none.median_user_delay == 0.0
    assert none.adversary_delay == 0.0

    # Calibration check: fixed charges the adversary the same total.
    assert fixed.adversary_delay == pytest.approx(
        popularity.adversary_delay, rel=0.01
    )
    # ...but its median user pays orders of magnitude more.
    assert fixed.median_user_delay > 50 * popularity.median_user_delay

    # Popularity's separation (ratio) dwarfs the naive scheme's, which
    # is exactly N by construction.
    assert popularity.ratio > 20 * fixed.ratio

    # The max-combination dominates both single signals against the
    # adversary, at a median cost no worse than their sum.
    assert both.adversary_delay >= popularity.adversary_delay - 1e-9
    assert both.adversary_delay >= update.adversary_delay - 1e-9
    assert both.median_user_delay <= (
        popularity.median_user_delay + update.median_user_delay + 1e-9
    )
