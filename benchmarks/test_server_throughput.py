"""Multi-client throughput benchmarks for the lock-free front door.

The server no longer serialises statements behind a global lock: each
connection's handler thread runs the guard's staged pipeline directly,
the engine arbitrates data access with its read/write lock, and delay
sleeps are served on the connection's own thread. These benchmarks
measure what that buys against a RealClock server, and pin the two
acceptance properties of the refactor:

1. **Parallel speedup** — 8 clients issuing cheap delayed SELECTs
   sustain >= 3x the single-client rate, because their per-connection
   delay sleeps overlap instead of queueing behind one lock.
2. **Penalty isolation** — a penalised (long-sleeping) query blocks
   only its own connection; a concurrent client's cheap queries finish
   while the penalised one is still being served.

**GIL caveat.** These gains come from overlapping *sleeps and socket
I/O*, not CPU parallelism: CPython executes at most one thread of
engine bytecode at a time, so pure-compute SELECT throughput would not
scale with clients. Delay serving is exactly the workload that does
scale — a delayed query spends almost all of its wall time in
``time.sleep``, which releases the GIL — which is why the benchmark
uses cheap-but-nonzero fixed delays rather than zero-delay queries.

Run with::

    pytest benchmarks/test_server_throughput.py --benchmark-only
"""

import threading
import time

from repro.core import AccountPolicy, GuardConfig, RealClock
from repro.server import DelayClient, DelayServer
from repro.service import DataProviderService

ROWS = 100
CLIENTS = 8
QUERIES_PER_CLIENT = 12
#: Cheap but nonzero per-tuple delay: large enough to dominate per-query
#: engine time (so overlap is measurable), small enough to keep the
#: benchmark fast.
FIXED_DELAY = 0.02
#: Tuples the penalised range scan touches: 25 * FIXED_DELAY = 0.5 s.
PENALTY_TUPLES = 25


def build_server():
    """A RealClock service with a flat per-tuple delay, over TCP."""
    service = DataProviderService(
        guard_config=GuardConfig(policy="fixed", fixed_delay=FIXED_DELAY),
        account_policy=AccountPolicy(),
        clock=RealClock(),
    )
    service.database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
    )
    service.database.insert_rows(
        "t", [(i, f"v{i}") for i in range(1, ROWS + 1)]
    )
    server = DelayServer(service)
    server.start()
    return server


def run_client(server, identity, count, elapsed_out=None):
    """One connection issuing ``count`` cheap single-tuple SELECTs."""
    with DelayClient(*server.address) as client:
        client.register(identity)
        started = time.monotonic()
        for i in range(count):
            client.query(
                f"SELECT * FROM t WHERE id = {1 + i % ROWS}",
                identity=identity,
            )
        if elapsed_out is not None:
            elapsed_out[identity] = time.monotonic() - started


def test_multi_client_speedup(benchmark):
    """8 concurrent clients sustain >= 3x the single-client query rate.

    Every query carries a FIXED_DELAY sleep served on its own handler
    thread, so concurrent connections wait in parallel; with a global
    statement lock the sleeps would still overlap but the rate here is
    also free of lock queueing, and the measured ratio lands near the
    client count rather than near 1.
    """
    server = build_server()
    try:
        # Warm-up: parse cache, registration, first-connection costs.
        run_client(server, "warmup", 2)

        # Single-client baseline, measured inline (not benchmarked).
        started = time.monotonic()
        run_client(server, "solo", QUERIES_PER_CLIENT)
        solo_elapsed = time.monotonic() - started
        solo_rate = QUERIES_PER_CLIENT / solo_elapsed

        def fleet():
            threads = [
                threading.Thread(
                    target=run_client,
                    args=(server, f"client-{i}", QUERIES_PER_CLIENT),
                )
                for i in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        started = time.monotonic()
        benchmark.pedantic(fleet, rounds=1, iterations=1)
        fleet_elapsed = time.monotonic() - started
        fleet_rate = CLIENTS * QUERIES_PER_CLIENT / fleet_elapsed

        speedup = fleet_rate / solo_rate
        benchmark.extra_info["solo_rate_qps"] = round(solo_rate, 2)
        benchmark.extra_info["fleet_rate_qps"] = round(fleet_rate, 2)
        benchmark.extra_info["speedup"] = round(speedup, 2)
        assert speedup >= 3.0, (
            f"8-client rate only {speedup:.2f}x the single-client rate "
            f"({fleet_rate:.1f} vs {solo_rate:.1f} q/s) — statements "
            "are serialising somewhere"
        )
        assert not server.handler_errors
    finally:
        server.stop()


def test_penalised_query_blocks_only_its_connection(benchmark):
    """A long-delayed query stalls its own connection and nobody else.

    The penalised client runs a range scan charged PENALTY_TUPLES
    tuple-delays (~0.5 s of sleep on its handler thread); a concurrent
    fast client issues cheap single-tuple queries and must finish while
    the penalised query is still being served.
    """
    server = build_server()
    penalty = PENALTY_TUPLES * FIXED_DELAY
    try:
        run_client(server, "warmup", 2)
        penalised_done = threading.Event()
        penalised = {}

        def penalised_client():
            with DelayClient(*server.address) as client:
                client.register("slowpoke")
                started = time.monotonic()
                response = client.query(
                    f"SELECT * FROM t WHERE id <= {PENALTY_TUPLES}",
                    identity="slowpoke",
                )
                penalised["elapsed"] = time.monotonic() - started
                penalised["delay"] = response["delay"]
                penalised_done.set()

        def race():
            thread = threading.Thread(target=penalised_client)
            thread.start()
            time.sleep(0.05)  # let the penalised query get in flight
            elapsed_out = {}
            run_client(server, "speedy", 8, elapsed_out)
            fast_elapsed = elapsed_out["speedy"]
            still_sleeping = not penalised_done.is_set()
            thread.join(timeout=30)
            assert not thread.is_alive()
            return fast_elapsed, still_sleeping

        fast_elapsed, still_sleeping = benchmark.pedantic(
            race, rounds=1, iterations=1
        )
        assert penalised["delay"] >= penalty * 0.99
        assert penalised["elapsed"] >= penalty * 0.9
        # The fast client's 8 queries (~0.16 s of sleep) must complete
        # while the penalised connection is still waiting out ~0.5 s.
        assert still_sleeping, (
            "fast client did not overtake the penalised query — its "
            "queries queued behind another connection's sleep"
        )
        assert fast_elapsed < penalised["elapsed"], (
            f"fast client took {fast_elapsed:.2f}s vs penalised "
            f"{penalised['elapsed']:.2f}s"
        )
        benchmark.extra_info["penalised_elapsed_s"] = round(
            penalised["elapsed"], 3
        )
        benchmark.extra_info["fast_elapsed_s"] = round(fast_elapsed, 3)
        assert not server.handler_errors
    finally:
        server.stop()
