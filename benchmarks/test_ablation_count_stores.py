"""Ablation benchmark: count-store backends (§4.4).

Compares exact in-memory counts, the write-behind cache, and the
bounded Space-Saving synopsis on one Zipf workload: replay cost, delay
accuracy, and memory (counter) footprint.
"""

import pytest

from repro.experiments.ablations import run_store_ablation


def test_ablation_count_stores(benchmark):
    result = benchmark.pedantic(run_store_ablation, rounds=1, iterations=1)
    result.to_table().show()

    by_name = {row.store: row for row in result.rows}
    exact = by_name["memory"]
    cached = by_name["write_behind"]
    sampled = by_name["space_saving"]

    # The write-behind cache is exact: same delays, bounded cache, but
    # it pays backing I/O for cold counters.
    assert cached.adversary_error == pytest.approx(0.0, abs=1e-9)
    assert cached.median_user_delay == pytest.approx(
        exact.median_user_delay, rel=1e-6
    )
    assert cached.backing_io is not None and cached.backing_io > 0

    # Space-Saving bounds memory hard...
    assert sampled.tracked_keys <= result.population // 10
    assert exact.tracked_keys > sampled.tracked_keys
    # ...at a bounded cost in adversary-delay accuracy. Its errors are
    # one-sided (overestimated counts => underestimated delays).
    assert sampled.adversary_error <= 0.0
    assert abs(sampled.adversary_error) < 0.25

    # All backends keep the median user delay in the same regime.
    assert sampled.median_user_delay <= 2 * exact.median_user_delay + 1e-6
