"""Ablation benchmark: fixed vs adaptive decay (§2.3).

On a workload whose hot set jumps every phase, no-decay remembers dead
hot sets forever; a well-chosen fixed decay does well; the adaptive
multi-decay tracker should land near the best fixed rate without being
told the dynamics.
"""

import pytest

from repro.experiments.ablations import run_adaptive_ablation


def test_ablation_adaptive_decay(benchmark):
    result = benchmark.pedantic(
        run_adaptive_ablation, rounds=1, iterations=1
    )
    result.to_table().show()

    no_decay = result.row("fixed decay 1.0")
    fixed_rows = [
        row for row in result.rows if row.tracker.startswith("fixed")
    ]
    best_fixed = min(fixed_rows, key=lambda row: row.median_user_delay)
    adaptive = result.row("adaptive")

    # Forgetting must beat remembering on a shifting workload.
    assert best_fixed.median_user_delay < no_decay.median_user_delay

    # The adaptive tracker selects a forgetting rate...
    assert result.selected_rate > 1.0
    # ...and lands within 2x of the best fixed configuration, far
    # below the no-decay cost.
    assert adaptive.median_user_delay <= 2 * best_fixed.median_user_delay
    assert adaptive.median_user_delay < no_decay.median_user_delay
