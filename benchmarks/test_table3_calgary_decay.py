"""Table 3 benchmark: decay sweep on the full Calgary-like trace.

Paper rows: decay 1.0 → median 15.4 ms / adversary 30.17 h, up to decay
1.00002 → median 2,241.6 ms / adversary 33.61 h. Shape: median grows by
orders of magnitude with decay; adversary delay barely moves and sits
near 90% of the N·d_max bound.
"""

import pytest

from repro.experiments import run_table3
from repro.experiments.table3_calgary_decay import PAPER_DECAYS


def test_table3_calgary_decay(benchmark):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    result.to_table().show()

    assert [row.decay for row in result.rows] == list(PAPER_DECAYS)

    # Median user delay is monotone increasing in the decay rate and
    # spans well over an order of magnitude across the sweep.
    medians = [row.median_user_delay for row in result.rows]
    assert medians == sorted(medians)
    # The paper's real trace shows a 146x swing; our stationary
    # synthetic trace reproduces the monotone blow-up at a smaller
    # magnitude (its popularity has no temporal burstiness to forget).
    assert medians[-1] > 5 * medians[0]

    # Adversary delay barely moves (paper: 30.17h -> 33.61h, +11%).
    adversaries = [row.adversary_delay for row in result.rows]
    assert max(adversaries) / min(adversaries) < 1.35

    # No-decay adversary is near the N*d_max bound (paper: ~89%).
    assert adversaries[0] > 0.8 * result.max_extraction_delay
    assert adversaries[0] <= result.max_extraction_delay

    # Absolute scale: paper's bound is 33.8 h for this dataset.
    assert result.max_extraction_delay / 3600 == pytest.approx(33.8, rel=0.01)
    assert adversaries[0] / 3600 == pytest.approx(30.17, rel=0.25)
