"""Figures 2 & 3 benchmark: box-office sales distributions, full scale.

Figure 2 (annual top-10): mild skew — the paper's 2002 data runs from
~$400M down to ~$160M (a ~2.5x spread). Figure 3 (single week top-10):
sharp skew. The weekly/annual contrast is the point.
"""

import pytest

from repro.experiments import run_fig23


def test_fig2_fig3_boxoffice_distribution(benchmark):
    result = benchmark.pedantic(run_fig23, rounds=1, iterations=1)
    result.to_table().show()

    # Figure 2: top film ≈ $400M, mild monotone decline over top 10.
    annual = [sales for _, sales in result.annual_top10]
    assert annual == sorted(annual, reverse=True)
    assert annual[0] == pytest.approx(400e6, rel=0.05)
    assert 1.5 < result.annual_skew < 5.0  # paper: ~2.5x

    # Figure 3: the weekly distribution is much sharper.
    weekly = [sales for _, sales in result.week1_top10]
    assert weekly == sorted(weekly, reverse=True)
    assert result.weekly_skew > 2 * result.annual_skew

    # Paper generates ~1 request per $100k; 2002 grossed ~$9B, so the
    # request count should be in the tens of thousands.
    assert 50_000 < result.total_requests < 200_000
