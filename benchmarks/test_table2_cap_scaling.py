"""Table 2 benchmark: delay-cap sweep on the full Calgary-like trace.

Paper rows (12,179 objects): cap 0.1 s → 0.33 h, 1 s → 3.16 h,
10 s → 30.17 h, 100 s → 282.70 h of adversary delay. Adversary delay
scales near-linearly with the cap; the median user delay does not move.
"""

import pytest

from repro.experiments import run_table2
from repro.experiments.table2_cap_scaling import (
    PAPER_ADVERSARY_HOURS,
    PAPER_CAPS,
)


def test_table2_cap_scaling(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    result.to_table().show()

    assert result.population == 12_179
    assert [row.cap for row in result.rows] == list(PAPER_CAPS)

    # Adversary delay within 2x of every paper row.
    for row, paper_hours in zip(result.rows, PAPER_ADVERSARY_HOURS):
        assert row.adversary_hours == pytest.approx(paper_hours, rel=1.0)

    # Near-linear growth: each 10x cap multiplies adversary delay ~9-10x
    # (the paper's 0.33/3.16/30.17/282.7 gives ratios 9.6, 9.5, 9.4).
    for previous, current in zip(result.rows, result.rows[1:]):
        ratio = current.adversary_delay / previous.adversary_delay
        assert 5.0 < ratio <= 10.5

    # Raising the cap never moves the median (paper: cap "has no impact
    # on the median delay").
    medians = [row.median_user_delay for row in result.rows]
    assert max(medians) == pytest.approx(min(medians), abs=1e-9)
