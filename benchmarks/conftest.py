"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures at full
published scale, prints the paper-style result table, and asserts the
qualitative shape the paper reports. Timings recorded by
pytest-benchmark measure the full experiment (workload generation +
replay + adversary evaluation) on simulated time — no real sleeping
happens anywhere.

Run with::

    pytest benchmarks/ --benchmark-only
"""
