"""Read-throughput scaling across shard processes.

The tentpole claim: sharding the guarded store multiplies *read*
throughput (each shard scans only its partition, in its own process)
while the delay defense stays single-node-priced (see
``tests/attacks/test_shard_spray.py`` for that half).

**Why subprocesses.** CPython's GIL serialises engine bytecode, so an
in-process "cluster" cannot show CPU scaling no matter how correct the
sharding is. Each shard here is a real ``repro.cluster.procserver``
process serving its hash-partition of the same logical table over TCP —
the deployment shape the cluster is for.

Two measurements, because scaling has two factors:

1. **Partition speedup** (core-count independent): the sequential
   latency of one shard's subscan vs the unsharded full scan. Hash
   partitioning must cut per-shard work ~M-fold; this is the quantity
   that multiplies across cores, and it is asserted at the full
   ``0.625 x M`` floor on any machine.
2. **Fleet throughput**: M shard processes driven concurrently by a
   fixed client pool. Aggregate ``full-scan equivalents per second`` =
   (subscans/s) / M. True process parallelism needs cores: the floor
   is ``0.625 x min(M, cores)``, asserted only where the hardware can
   express parallelism at all (>= 2 cores) — on a single-core box the
   ratio is recorded but M processes time-sharing one core measure
   the scheduler, not the sharding. On >= 4 cores the full >= 2.5x
   aggregate ratio is demanded at 4 shards.

Environment knobs (CI uses a smaller shape):

- ``CLUSTER_BENCH_SHARDS``: comma list, baseline first, target last
  (default ``1,4``).
- ``CLUSTER_BENCH_ROWS``: total logical rows (default 1600).
- ``CLUSTER_BENCH_QUERIES``: scans per client thread (default 25).

Run with::

    pytest benchmarks/test_cluster_throughput.py --benchmark-only
"""

import os
import threading
import time
from pathlib import Path

from repro.cluster.procserver import ProcessFleet
from repro.server import DelayClient

REPO_ROOT = Path(__file__).resolve().parent.parent
SHARD_COUNTS = [
    int(part)
    for part in os.environ.get("CLUSTER_BENCH_SHARDS", "1,4").split(",")
]
TOTAL_ROWS = int(os.environ.get("CLUSTER_BENCH_ROWS", "1600"))
QUERIES_PER_THREAD = int(os.environ.get("CLUSTER_BENCH_QUERIES", "25"))
CLIENT_THREADS = 8  # total, split evenly across shards
LATENCY_SCANS = 30  # sequential scans per latency sample
SCAN_SQL = "SELECT COUNT(*) FROM items WHERE category = 3"


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def spawn_fleet(shard_count, shards):
    """A started :class:`ProcessFleet` for ``shards`` (of ``shard_count``)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return ProcessFleet(
        shard_count, shards=shards, rows=TOTAL_ROWS, env=env
    ).start()


def run_scans(port, count, failures):
    try:
        with DelayClient("127.0.0.1", port) as client:
            for _ in range(count):
                response = client.query(SCAN_SQL)
                assert response["rows"][0][0] > 0
    except Exception as error:  # surfaced by the main thread
        failures.append(error)


def measure_subscan_latency(shard_count):
    """Sequential seconds per subscan against one idle shard of M."""
    fleet = spawn_fleet(shard_count, [0])
    try:
        port = fleet.ports[0]
        with DelayClient("127.0.0.1", port) as client:
            for _ in range(3):  # warm parse caches and the connection
                client.query(SCAN_SQL)
            started = time.monotonic()
            for _ in range(LATENCY_SCANS):
                client.query(SCAN_SQL)
            return (time.monotonic() - started) / LATENCY_SCANS
    finally:
        fleet.stop()


def measure_fleet_qps(shard_count):
    """Effective full-logical-table scans per second at ``shard_count``."""
    fleet = spawn_fleet(shard_count, range(shard_count))
    try:
        # Warm-up: connection setup, parse caches, first-scan costs.
        for port in fleet.ports.values():
            run_scans(port, 2, [])
        threads_per_shard = max(1, CLIENT_THREADS // shard_count)
        failures = []
        threads = [
            threading.Thread(
                target=run_scans,
                args=(port, QUERIES_PER_THREAD, failures),
            )
            for port in fleet.ports.values()
            for _ in range(threads_per_shard)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - started
        if failures:
            raise failures[0]
        subscans = len(threads) * QUERIES_PER_THREAD
        return (subscans / elapsed) / shard_count
    finally:
        fleet.stop()


def test_read_throughput_scales_with_shards(benchmark):
    baseline, target = SHARD_COUNTS[0], SHARD_COUNTS[-1]
    cores = available_cores()

    base_latency = measure_subscan_latency(baseline)
    target_latency = measure_subscan_latency(target)
    base_qps = measure_fleet_qps(baseline)
    target_qps = benchmark.pedantic(
        measure_fleet_qps, args=(target,), rounds=1, iterations=1
    )

    partition_speedup = base_latency / target_latency
    fleet_ratio = target_qps / base_qps
    benchmark.extra_info.update(
        {
            "cores": cores,
            "total_rows": TOTAL_ROWS,
            f"subscan_ms_{baseline}_shards": round(base_latency * 1e3, 3),
            f"subscan_ms_{target}_shards": round(target_latency * 1e3, 3),
            f"fleet_full_scan_qps_{baseline}_shards": round(base_qps, 2),
            f"fleet_full_scan_qps_{target}_shards": round(target_qps, 2),
            "partition_speedup": round(partition_speedup, 2),
            "fleet_ratio": round(fleet_ratio, 2),
        }
    )

    # Factor 1: partitioning cuts per-shard scan work ~M-fold. This is
    # the machine-independent half of the scaling claim.
    partition_floor = 0.625 * (target / baseline)
    assert partition_speedup >= partition_floor, (
        f"a 1/{target} partition subscan ran only "
        f"{partition_speedup:.2f}x faster than the 1/{baseline} scan "
        f"(floor {partition_floor:.2f}x) — partitioning is not cutting "
        "per-shard work"
    )

    # Factor 2: the process fleet turns that into aggregate throughput,
    # bounded by the cores actually present to run the shards. On a
    # box with no spare cores (parallelism == 1) there is no aggregate
    # claim to assert — M processes time-sharing one core measure the
    # scheduler, not the sharding — so the ratio is recorded but only
    # enforced where the hardware can express it.
    parallelism = min(target, max(1, cores)) / min(
        baseline, max(1, cores)
    )
    if parallelism > 1:
        fleet_floor = 0.625 * parallelism
        assert fleet_ratio >= fleet_floor, (
            f"{target}-shard fleet scanned only {fleet_ratio:.2f}x the "
            f"{baseline}-shard rate (floor {fleet_floor:.2f}x on "
            f"{cores} cores) — shards are not scaling reads"
        )
