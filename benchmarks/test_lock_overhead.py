"""Locking-cost microbenchmarks for the concurrency-safety layer.

The trackers, count stores, stats, and clock all take internal locks so
the TCP front door can serve many connections at once. These benchmarks
record guard throughput with and without thread contention so future
PRs can see the locking cost explicitly; the Table 5 overhead number
must not silently absorb a lock regression (acceptance: single-threaded
throughput regresses < 10% against the pre-locking seed).

Run with::

    pytest benchmarks/test_lock_overhead.py --benchmark-only
"""

import threading

import pytest

from repro.core import DelayGuard, GuardConfig, VirtualClock
from repro.engine import Database

ROWS = 500
QUERIES = 200
THREADS = 4


def build_guard():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
    )
    database.insert_rows(
        "t", [(i, f"v{i}") for i in range(1, ROWS + 1)]
    )
    return DelayGuard(
        database, config=GuardConfig(cap=5.0), clock=VirtualClock()
    )


def test_guard_single_thread_throughput(benchmark):
    """Uncontended serving: the pure cost of engine + locked accounting."""
    guard = build_guard()
    statements = [
        f"SELECT * FROM t WHERE id = {1 + i % ROWS}"
        for i in range(QUERIES)
    ]

    def serve():
        for sql in statements:
            guard.execute(sql, sleep=False)

    benchmark(serve)
    assert guard.stats.queries >= QUERIES


def test_guard_contended_throughput(benchmark):
    """Server-shaped contention: THREADS workers, no statement lock.

    This mirrors DelayServer's dispatch — each worker calls the guard's
    staged pipeline directly (the engine's read/write lock and the
    trackers' internal locks do all the synchronising) and serves the
    sleep itself — so the number here is what a loaded front door
    actually sustains per statement.
    """
    guard = build_guard()
    per_thread = QUERIES // THREADS

    def worker(index):
        for i in range(per_thread):
            sql = f"SELECT * FROM t WHERE id = {1 + (index * per_thread + i) % ROWS}"
            result = guard.execute(sql, sleep=False)
            if result.delay > 0:
                guard.clock.sleep(result.delay)

    def serve():
        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    benchmark(serve)
    assert guard.stats.queries >= THREADS * per_thread


def test_tracker_record_throughput(benchmark):
    """Raw locked-record cost: popularity bookkeeping without the engine."""
    guard = build_guard()
    keys = [("t", 1 + i % ROWS) for i in range(1000)]

    def record_all():
        for key in keys:
            guard.popularity.record(key)

    benchmark(record_all)
    assert guard.popularity.total_requests >= len(keys)
