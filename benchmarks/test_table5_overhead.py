"""Table 5 benchmark: count-maintenance + delay-computation overhead.

Paper: 100 random single-tuple selections; base 55.17 ms vs guarded
66.20 ms on a 2004 commercial DBMS — ~20% relative overhead with counts
in a small write-behind cache. Our engine's absolute times are in the
tens of microseconds; the claim reproduced is the *relative* overhead.
"""

import pytest

from repro.experiments import run_table5


def test_table5_overhead(benchmark):
    result = benchmark.pedantic(
        run_table5,
        kwargs={"queries": 100, "repeats": 50, "population": 10_000},
        rounds=1,
        iterations=1,
    )
    result.to_table().show()

    assert result.queries == 100
    # Guarded queries must cost more than bare ones...
    assert result.total_mean > result.base_mean
    # ...but the machinery stays modest: the paper reports 20%; our
    # pure-Python engine has a much cheaper base query than a 2004
    # commercial DBMS, so allow up to 60% before calling it a
    # regression.
    assert result.overhead_fraction < 0.60
