"""Table 5 companion: proxy overhead over a *real* DBMS (SQLite).

The paper measured its overhead on a commercial RDBMS; the closest
equivalent here is the SQLite proxy: 100 random single-tuple selections
against bare ``sqlite3`` vs through :class:`SQLiteDelayProxy`
(authorization + rowid attribution + count maintenance + delay
computation; intentional delay excluded via the virtual clock).

The proxy necessarily pays more than the in-engine guard — attribution
costs one extra companion query per statement — so the bound asserted
here is looser than Table 5's 20%, and the printed number is what a
deployment over a real database should expect.
"""

import sqlite3
import statistics
import time

import numpy as np
import pytest

from repro.adapters import SQLiteDelayProxy
from repro.core import GuardConfig, VirtualClock
from repro.sim.experiment import ResultTable

POPULATION = 10_000
QUERIES = 100
REPEATS = 30


def run_sqlite_overhead():
    connection = sqlite3.connect(":memory:")
    connection.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT, n REAL)"
    )
    connection.executemany(
        "INSERT INTO t VALUES (?, ?, ?)",
        [(i, f"v{i}", float(i)) for i in range(1, POPULATION + 1)],
    )
    connection.commit()
    proxy = SQLiteDelayProxy(
        connection, config=GuardConfig(cap=10.0), clock=VirtualClock()
    )

    rng = np.random.default_rng(55)

    def fresh_batch():
        items = rng.choice(POPULATION, size=QUERIES, replace=False) + 1
        return [
            f"SELECT * FROM t WHERE id = {int(item)}" for item in items
        ]

    for sql in fresh_batch()[:10]:  # warm both paths
        connection.execute(sql).fetchall()
        proxy.execute(sql)

    base, total = [], []
    for _round in range(REPEATS):
        batch = fresh_batch()
        started = time.perf_counter()
        for sql in batch:
            connection.execute(sql).fetchall()
        base.append((time.perf_counter() - started) / QUERIES)

        batch = fresh_batch()
        started = time.perf_counter()
        for sql in batch:
            proxy.execute(sql)
        total.append((time.perf_counter() - started) / QUERIES)
    connection.close()
    return statistics.mean(base), statistics.mean(total)


def test_table5_sqlite_overhead(benchmark):
    base_mean, total_mean = benchmark.pedantic(
        run_sqlite_overhead, rounds=1, iterations=1
    )
    overhead = (total_mean - base_mean) / base_mean

    table = ResultTable(
        title="Table 5 companion — Proxy Overhead over SQLite",
        columns=("base avg (ms)", "proxied avg (ms)", "overhead"),
        note=(
            "parse + companion rowid query + counts + delay computation; "
            "paper: 20% on a 2004 commercial DBMS (in-engine counts)"
        ),
    )
    table.add_row(
        f"{base_mean * 1000:.4f}",
        f"{total_mean * 1000:.4f}",
        f"{overhead:.1%}",
    )
    table.show()

    assert total_mean > base_mean
    # Proxy attribution costs a second query plus parsing, so allow a
    # few x of SQLite's (very fast) point lookup; anything beyond that
    # is a regression.
    assert overhead < 30.0
