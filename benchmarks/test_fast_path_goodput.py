"""Goodput of the I/O-loop fast path for result-cache hits.

``benchmarks/test_result_cache.py`` shows a result cache beats no cache.
This benchmark isolates the *next* step: with the cache already on, does
serving hits on the I/O loop (``cache_fast_path=True``, skipping the
admission queue and the worker pool) buy additional goodput when the
workers are saturated?

The shape that makes the difference visible: a deliberately small
worker pool, an adversary fleet flooding distinct full scans (always
cache misses — they own the workers), and a legitimate fleet repeating
one cached query. With the fast path off, every cached hit still queues
behind the adversaries' scans for a worker slot; with it on, hits are
priced and answered straight off the loop and only sleep their mandated
delay. Same cache, same prices — the only variable is *where* hits are
served.

Run with::

    pytest benchmarks/test_fast_path_goodput.py --benchmark-only
"""

import threading
import time

from repro.core import GuardConfig, RealClock
from repro.server import DelayClient, DelayServer, ServerError
from repro.service import DataProviderService

ROWS = 4000
HOT_ROWS = 2
FIXED_DELAY = 0.01
CHEAP_CLIENTS = 3
ADVERSARIES = 5
#: Small on purpose: the fast path's win is precisely "hits do not need
#: one of these".
WORKERS = 2
WINDOW = 2.0

CHEAP_SQL = "SELECT * FROM t WHERE v = 'hot'"


def build_service():
    service = DataProviderService(
        guard_config=GuardConfig(
            policy="fixed",
            fixed_delay=FIXED_DELAY,
            result_cache_size=256,
        ),
        clock=RealClock(),
    )
    service.database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
    )
    service.database.insert_rows(
        "t",
        [
            (i, "hot" if i <= HOT_ROWS else f"cold-{i}")
            for i in range(1, ROWS + 1)
        ],
    )
    return service


def cheap_client(server, stop_event, served, delays):
    count = 0
    with DelayClient(*server.address) as client:
        while not stop_event.is_set():
            try:
                response = client.query(CHEAP_SQL)
            except ServerError:
                continue
            count += 1
            delays.add(response["delay"])
    served.append(count)


def adversary_client(server, stop_event, index):
    step = 0
    with DelayClient(*server.address) as client:
        while not stop_event.is_set():
            try:
                client.query(
                    f"SELECT * FROM t WHERE v = 'cold-{10 + (step % 50)}' "
                    f"AND id >= {index}"
                )
            except ServerError:
                continue
            step += 1


def run_flood(fast_path):
    service = build_service()
    server = DelayServer(
        service,
        max_workers=WORKERS,
        max_connections=64,
        cache_fast_path=fast_path,
    )
    server.start()
    try:
        with DelayClient(*server.address) as client:
            client.query(CHEAP_SQL)  # warm-up: fills the cache
        stop_event = threading.Event()
        served = []
        delays = set()
        threads = [
            threading.Thread(
                target=cheap_client,
                args=(server, stop_event, served, delays),
            )
            for _ in range(CHEAP_CLIENTS)
        ] + [
            threading.Thread(
                target=adversary_client, args=(server, stop_event, index)
            )
            for index in range(ADVERSARIES)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        time.sleep(WINDOW)
        stop_event.set()
        for thread in threads:
            thread.join(timeout=30)
        elapsed = time.monotonic() - started
        assert not server.handler_errors
        return sum(served) / elapsed, delays, server.cache_fast_path_hits
    finally:
        server.stop()


def test_fast_path_goodput_with_saturated_workers(benchmark):
    """Loop-served hits beat queue-served hits; prices are unchanged."""

    def both_floods():
        off = run_flood(fast_path=False)
        on = run_flood(fast_path=True)
        return off, on

    (
        (goodput_off, delays_off, hits_off),
        (goodput_on, delays_on, hits_on),
    ) = benchmark.pedantic(both_floods, rounds=1, iterations=1)

    # Same mandated price either way: the fixed-policy constant.
    assert delays_off == {HOT_ROWS * FIXED_DELAY}
    assert delays_on == delays_off
    # The toggle really selected the serving path.
    assert hits_off == 0
    assert hits_on > 0

    benchmark.extra_info["goodput_off_per_s"] = round(goodput_off, 2)
    benchmark.extra_info["goodput_on_per_s"] = round(goodput_on, 2)
    benchmark.extra_info["speedup"] = round(goodput_on / goodput_off, 3)
    benchmark.extra_info["fast_path_hits"] = hits_on
    assert goodput_on > goodput_off * 1.2, (
        f"fast-path goodput {goodput_on:.1f}/s not >20% over "
        f"queued-hit goodput {goodput_off:.1f}/s with {WORKERS} workers "
        f"saturated by {ADVERSARIES} adversaries"
    )
