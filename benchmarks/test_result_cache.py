"""Result-cache benchmarks: priced hits save engine CPU, nothing else.

Two claims, measured separately:

1. **Equivalence** (simulated clock, guard-level): for the same
   (identity, SQL) stream, per-query mandated delays, popularity
   counts, and account charges are bit-identical between a cache-on
   and a cache-off guard. A hit replaces only the engine's work.
2. **Goodput** (RealClock, live server): with an adversary fleet
   flooding distinct full-scan queries, a legitimate fleet repeating
   one cheap query completes measurably more queries per second with
   the cache on — its hits dodge the GIL-serialised engine scans while
   still sleeping their full mandated delay.

Run with::

    pytest benchmarks/test_result_cache.py --benchmark-only
"""

import threading
import time

from repro.core import (
    AccountManager,
    AccountPolicy,
    DelayGuard,
    GuardConfig,
    RealClock,
    VirtualClock,
)
from repro.engine import Database
from repro.server import DelayClient, DelayServer, ServerError
from repro.service import DataProviderService

#: Table size: big enough that a full scan costs real interpreter time.
ROWS = 4000
#: Rows matching the legitimate fleet's repeated query.
HOT_ROWS = 2
#: Per-tuple mandated delay (fixed policy keeps the arithmetic exact).
FIXED_DELAY = 0.01
#: Legitimate / adversary fleet sizes for the goodput phase.
CHEAP_CLIENTS = 3
ADVERSARIES = 5
#: Seconds each goodput window runs.
WINDOW = 2.0

CHEAP_SQL = "SELECT * FROM t WHERE v = 'hot'"


def fill(db):
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    rows = [
        (i, "hot" if i <= HOT_ROWS else f"cold-{i}")
        for i in range(1, ROWS + 1)
    ]
    db.insert_rows("t", rows)


def build_service(cache_entries):
    service = DataProviderService(
        guard_config=GuardConfig(
            policy="fixed",
            fixed_delay=FIXED_DELAY,
            result_cache_size=cache_entries,
        ),
        clock=RealClock(),
    )
    fill(service.database)
    return service


# -- phase 1: hit/miss equivalence -------------------------------------------


PROBE_STREAM = [CHEAP_SQL] * 6 + [
    "SELECT * FROM t WHERE id <= 10",
    CHEAP_SQL,
    "SELECT v FROM t WHERE id = 3",
    CHEAP_SQL,
]


def run_guard_stream(cache_entries):
    clock = VirtualClock()
    accounts = AccountManager(policy=AccountPolicy(), clock=clock)
    accounts.register("probe")
    db = Database()
    fill(db)
    guard = DelayGuard(
        db,
        config=GuardConfig(
            policy="fixed",
            fixed_delay=FIXED_DELAY,
            result_cache_size=cache_entries,
        ),
        clock=clock,
        accounts=accounts,
    )
    results = [
        guard.execute(sql, identity="probe", sleep=False)
        for sql in PROBE_STREAM
    ]
    return guard, accounts, results


def test_hit_and_miss_priced_identically(benchmark):
    """Delays, popularity, and charges match with the cache on or off."""

    def both_streams():
        return run_guard_stream(64), run_guard_stream(None)

    (on_guard, on_accounts, on), (off_guard, off_accounts, off) = (
        benchmark.pedantic(both_streams, rounds=1, iterations=1)
    )
    assert on_guard.result_cache.info()["hits"] >= 7
    assert [r.delay for r in on] == [r.delay for r in off]
    assert [r.result.rows for r in on] == [r.result.rows for r in off]
    assert dict(on_guard.popularity.store.items()) == dict(
        off_guard.popularity.store.items()
    )
    assert (
        on_accounts.account("probe").tuples_retrieved
        == off_accounts.account("probe").tuples_retrieved
    )
    assert on_guard.stats.total_delay == off_guard.stats.total_delay
    assert on_guard.stats.tuples_charged == off_guard.stats.tuples_charged
    # The saving shows up in the only place it should: engine selects.
    on_selects = on_guard.database.stats.by_kind.get("select", 0)
    off_selects = off_guard.database.stats.by_kind.get("select", 0)
    assert off_selects == len(PROBE_STREAM)
    assert on_selects == 3  # one per distinct statement
    benchmark.extra_info["cache_hits"] = on_guard.result_cache.info()["hits"]
    benchmark.extra_info["engine_selects_on"] = on_selects
    benchmark.extra_info["engine_selects_off"] = off_selects


# -- phase 2: goodput under adversarial flood --------------------------------


def goodput_window(server, stop_event, served, delays):
    """One legitimate client repeating the cheap query until stopped."""
    count = 0
    with DelayClient(*server.address) as client:
        while not stop_event.is_set():
            try:
                response = client.query(CHEAP_SQL)
            except ServerError:
                continue
            count += 1
            delays.add(response["delay"])
    served.append(count)


def adversary_window(server, stop_event, index):
    """Distinct full scans every iteration: cache-busting engine load."""
    step = 0
    with DelayClient(*server.address) as client:
        while not stop_event.is_set():
            try:
                client.query(
                    f"SELECT * FROM t WHERE v = 'cold-{10 + (step % 50)}' "
                    f"AND id >= {index}"
                )
            except ServerError:
                continue
            step += 1


def run_flood(service):
    server = DelayServer(service, max_workers=8, max_connections=64)
    server.start()
    try:
        with DelayClient(*server.address) as client:
            client.query(CHEAP_SQL)  # warm-up (and cache fill when on)
        stop_event = threading.Event()
        served = []
        delays = set()
        threads = [
            threading.Thread(
                target=goodput_window,
                args=(server, stop_event, served, delays),
            )
            for _ in range(CHEAP_CLIENTS)
        ] + [
            threading.Thread(
                target=adversary_window, args=(server, stop_event, index)
            )
            for index in range(ADVERSARIES)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        time.sleep(WINDOW)
        stop_event.set()
        for thread in threads:
            thread.join(timeout=30)
        elapsed = time.monotonic() - started
        assert not server.handler_errors
        return sum(served) / elapsed, delays
    finally:
        server.stop()


def test_cache_goodput_under_adversarial_flood(benchmark):
    """Cache-on cheap goodput beats cache-off; delays stay identical."""
    service_off = build_service(None)
    service_on = build_service(256)

    def both_floods():
        off = run_flood(service_off)
        on = run_flood(service_on)
        return off, on

    (goodput_off, delays_off), (goodput_on, delays_on) = benchmark.pedantic(
        both_floods, rounds=1, iterations=1
    )
    # The mandated delay for the cheap query is a fixed-policy constant;
    # hit or miss, every completion owed exactly the same seconds.
    assert delays_off == {HOT_ROWS * FIXED_DELAY}
    assert delays_on == delays_off
    # The cache genuinely engaged.
    cache = service_on.guard.result_cache
    assert cache is not None and cache.info()["hits"] > 0
    assert service_off.guard.result_cache is None
    # Popularity still accrues per completion with the cache on: the
    # hot tuples' counts move with served queries, not engine scans.
    hot_counts = [
        count
        for (table, _rowid), count in (
            service_on.guard.popularity.store.items()
        )
        if table == "t"
    ]
    assert max(hot_counts) >= cache.info()["hits"]
    # The measured claim: cheap goodput improves by a real margin.
    assert goodput_on > goodput_off * 1.1, (
        f"cache-on goodput {goodput_on:.1f}/s not >10% over "
        f"cache-off {goodput_off:.1f}/s"
    )
    benchmark.extra_info["goodput_off_per_s"] = round(goodput_off, 2)
    benchmark.extra_info["goodput_on_per_s"] = round(goodput_on, 2)
    benchmark.extra_info["speedup"] = round(goodput_on / goodput_off, 3)
    benchmark.extra_info["cache_hits"] = cache.info()["hits"]
