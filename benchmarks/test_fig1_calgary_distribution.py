"""Figure 1 benchmark: Calgary-like request distribution, full scale."""

import pytest

from repro.experiments import run_fig1
from repro.workloads.calgary import CALGARY_OBJECTS, CALGARY_REQUESTS


def test_fig1_request_distribution(benchmark):
    result = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    result.to_table().show()

    # Full published scale.
    assert result.total_requests == CALGARY_REQUESTS
    assert result.distinct_objects <= CALGARY_OBJECTS

    # Figure 1 shape: a steep, monotone head.
    counts = [count for _, count in result.top10]
    assert counts == sorted(counts, reverse=True)
    assert counts[0] > 4 * counts[9]

    # Paper: "loosely follows an exponential popularity distribution
    # with alpha ~ 1.5".
    assert result.fitted_alpha == pytest.approx(1.5, abs=0.15)
