"""Failover benchmark: time-to-promote and the goodput dip.

A replicated two-group cluster serves a steady point-query workload
while the monitor probes on a real-time daemon thread. Halfway through
the run, group 0's primary is killed. Three quantities come out:

* **time_to_promote_ms** — wall-clock from the kill to the first
  successfully served query owned by the failed group (detection one
  probe, promotion the next; the budget is a few probe intervals).
* **goodput dip** — served-query rate in the outage window vs the
  pre-kill baseline. Queries for the healthy group keep serving, so
  the dip is partial, and every failed query is a *structured*
  ``shard_unavailable`` denial with a ``retry_after``, never a raw
  exception.
* **post-failover goodput** — the rate after promotion, back near
  baseline on the promoted follower.

Assertions are CI-safe shape checks (promotion within a generous
bound, goodput recovers, denials structured); the precise numbers land
in ``extra_info`` for the BENCH artifact.

Run with::

    pytest benchmarks/test_failover.py --benchmark-only
"""

import time

from repro.cluster import ClusterService
from repro.core.config import GuardConfig
from repro.core.errors import ShardUnavailable

TABLE = "items"
ROWS = 40
PROBE_INTERVAL = 0.02
PHASE_SECONDS = 0.6  # per phase: warmup / outage+recovery / steady
PROMOTE_BUDGET = 5.0  # CI-safe ceiling, not the expected value


def build_cluster(tmp_path):
    cluster = ClusterService(
        shard_count=2,
        data_dir=tmp_path,
        replication_factor=2,
        probe_interval=PROBE_INTERVAL,
        gossip=False,
        guard_config=GuardConfig(policy="popularity", cap=5.0, unit=60.0),
    )
    cluster.query(
        None, f"CREATE TABLE {TABLE} (id INTEGER PRIMARY KEY, v TEXT)"
    )
    for i in range(1, ROWS + 1):
        cluster.query(None, f"INSERT INTO {TABLE} VALUES ({i}, 'v{i}')")
    cluster.monitor.ship_all()
    return cluster


def run_failover(tmp_path):
    """One continuous drive; the kill lands mid-run.

    Every query outcome is timestamped, so the three windows —
    baseline, outage (kill → first served query owned by the failed
    group), steady — come from one uninterrupted workload instead of
    artificial phases that would hide the promotion inside them.
    """
    cluster = build_cluster(tmp_path)
    try:
        group = cluster.groups[0]
        owners = {
            i: cluster.shard_map.shard_for(TABLE, i)
            for i in range(1, ROWS + 1)
        }
        events = []  # (timestamp, served?, owning group)
        rowid = 0
        start = time.monotonic()
        kill_at = start + PHASE_SECONDS
        end = start + 3 * PHASE_SECONDS
        killed_at = None
        while True:
            now = time.monotonic()
            if now >= end:
                break
            if killed_at is None and now >= kill_at:
                group.primary.kill()
                killed_at = time.monotonic()
            rowid = rowid % ROWS + 1
            try:
                cluster.query(
                    None, f"SELECT * FROM {TABLE} WHERE id = {rowid}"
                )
                events.append((time.monotonic(), True, owners[rowid]))
            except ShardUnavailable as denial:
                assert denial.reason == "shard_unavailable"
                assert denial.retry_after > 0
                events.append((time.monotonic(), False, owners[rowid]))

        promoted_at = next(
            (
                ts
                for ts, served, owner in events
                if served and owner == 0 and ts > killed_at
            ),
            None,
        )
        assert promoted_at is not None, "promotion never served a query"
        time_to_promote = promoted_at - killed_at

        def window(lo, hi):
            served = sum(
                1 for ts, ok, _ in events if ok and lo <= ts < hi
            )
            denied = sum(
                1 for ts, ok, _ in events if not ok and lo <= ts < hi
            )
            return served / max(hi - lo, 1e-9), denied

        baseline_qps, _ = window(start, killed_at)
        outage_qps, outage_denied = window(killed_at, promoted_at)
        steady_qps, steady_denied = window(promoted_at, end)
        # During the outage only the dead group denies; the healthy
        # group's queries keep serving.
        assert all(
            owner == 0
            for ts, ok, owner in events
            if not ok and killed_at <= ts < promoted_at
        )
        return {
            "time_to_promote_ms": time_to_promote * 1000.0,
            "baseline_qps": baseline_qps,
            "outage_qps": outage_qps,
            "steady_qps": steady_qps,
            "outage_denied": outage_denied,
            "steady_denied": steady_denied,
            "failovers": cluster.monitor.failovers_total,
        }
    finally:
        cluster.close()


def test_failover_time_and_goodput(benchmark, tmp_path):
    result = benchmark.pedantic(
        run_failover, args=(tmp_path,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    print(
        f"\ntime-to-promote {result['time_to_promote_ms']:.1f} ms | "
        f"goodput qps baseline={result['baseline_qps']:.0f} "
        f"outage={result['outage_qps']:.0f} "
        f"post-failover={result['steady_qps']:.0f} | "
        f"denied during outage={result['outage_denied']}"
    )
    assert result["failovers"] == 1
    assert result["time_to_promote_ms"] <= PROMOTE_BUDGET * 1000.0
    # The promoted follower restores goodput after the outage window.
    assert result["steady_qps"] >= 0.5 * result["baseline_qps"]
    assert result["steady_denied"] == 0
