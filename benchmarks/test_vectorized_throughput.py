"""Vectorized-vs-classic executor throughput on the guarded hot paths.

The columnar executor exists to make the *engine* share of Table 5's
cost split small: full scans, IN-probes, hash joins, and aggregates
are the statement shapes the replication workloads hammer. Each
benchmark times the vectorized path (pytest-benchmark, many rounds),
measures the classic row-at-a-time baseline on the same catalog and
statement, asserts the speedup floor, and records the measured ratio
in ``extra_info`` so the uploaded ``BENCH_vectorized.json`` carries
the before/after evidence.

Floors are set from measured headroom (see EXPERIMENTS.md), not
aspiration: scans and join-aggregates clear 5x with a wide margin;
the projecting join and grouped aggregation spend most of their time
materialising output rows in Python, so their floors are lower.

The worker-pool benchmark needs real parallel hardware: on a
single-core runner M forked scanners time-share one core and measure
the scheduler, so the ratio assertion is gated on >= 2 usable cores
(same convention as ``test_cluster_throughput.py``).

Run with::

    pytest benchmarks/test_vectorized_throughput.py --benchmark-only
"""

import os
import time

import pytest

from repro.engine import Database, Executor, VectorizedExecutor
from repro.engine.parser import parse
from repro.engine.vectorized import HAVE_NUMPY
from repro.engine.vectorized.workers import HAVE_FORK, available_cores

SCAN_ROWS = int(os.environ.get("VEC_BENCH_ROWS", "50000"))
JOIN_ROWS = int(os.environ.get("VEC_BENCH_JOIN_ROWS", "20000"))
BASELINE_REPEATS = 3


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.execute(
        "CREATE TABLE s (id INTEGER PRIMARY KEY, grp INTEGER, "
        "score FLOAT, flag BOOLEAN)"
    )
    database.insert_rows(
        "s",
        [
            (i, i % 100, (i * 7 % 1000) / 10.0, i % 2 == 0)
            for i in range(1, SCAN_ROWS + 1)
        ],
    )
    database.execute(
        "CREATE TABLE d (id INTEGER PRIMARY KEY, sid INTEGER, w FLOAT)"
    )
    database.insert_rows(
        "d",
        [
            (i, (i * 13 % SCAN_ROWS) + 1, float(i % 97))
            for i in range(1, JOIN_ROWS + 1)
        ],
    )
    yield database
    database.close()


def _classic_seconds(db, statement):
    classic = Executor(db.catalog)
    best = float("inf")
    for _ in range(BASELINE_REPEATS):
        started = time.perf_counter()
        classic.execute(statement)
        best = min(best, time.perf_counter() - started)
    return best


def _run_case(benchmark, db, sql, floor):
    statement = parse(sql)
    vectorized = VectorizedExecutor(db.catalog)
    expected = Executor(db.catalog).execute(statement)
    result = benchmark(vectorized.execute, statement)
    # throughput means nothing if the answers differ
    assert repr(result.rows) == repr(expected.rows)
    assert result.touched == expected.touched
    assert vectorized.path_counts["classic"] == 0, "fell back to classic"
    classic_seconds = _classic_seconds(db, statement)
    vectorized_seconds = benchmark.stats.stats.min
    ratio = classic_seconds / vectorized_seconds
    benchmark.extra_info["classic_seconds"] = classic_seconds
    benchmark.extra_info["speedup_x"] = round(ratio, 2)
    print(f"\n  {sql}\n  classic/vectorized = {ratio:.1f}x")
    assert ratio >= floor, (
        f"vectorized speedup {ratio:.1f}x under the {floor}x floor"
    )


@pytest.mark.skipif(not HAVE_NUMPY, reason="columnar tier needs numpy")
class TestVectorizedSpeedup:
    def test_full_scan_filter(self, benchmark, db):
        _run_case(
            benchmark,
            db,
            "SELECT id FROM s WHERE score > 42.5 AND grp < 50",
            floor=5.0,
        )

    def test_scan_count(self, benchmark, db):
        _run_case(
            benchmark,
            db,
            "SELECT COUNT(*) FROM s WHERE score > 42.5",
            floor=5.0,
        )

    def test_in_probe(self, benchmark, db):
        _run_case(
            benchmark,
            db,
            "SELECT id FROM s WHERE grp IN (3, 17, 42, 99)",
            floor=5.0,
        )

    def test_join_aggregate(self, benchmark, db):
        _run_case(
            benchmark,
            db,
            "SELECT COUNT(*) FROM s JOIN d ON s.id = d.sid",
            floor=5.0,
        )

    def test_join_project(self, benchmark, db):
        # output-row materialisation dominates; floor reflects it
        _run_case(
            benchmark,
            db,
            "SELECT s.id, d.w FROM s JOIN d ON s.id = d.sid WHERE d.w > 50",
            floor=2.5,
        )

    def test_group_by(self, benchmark, db):
        _run_case(
            benchmark,
            db,
            "SELECT grp, COUNT(*), SUM(score) FROM s GROUP BY grp",
            floor=1.5,
        )


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
class TestWorkerPoolScan:
    def test_parallel_scan_correct_and_counted(self, benchmark, db):
        """Always runs: the pool must serve scans and agree with local."""
        db.configure_execution(scan_workers=2, parallel_scan_min_rows=1024)
        statement = parse("SELECT COUNT(*) FROM s WHERE score > 42.5")
        expected = Executor(db.catalog).execute(statement)
        result = benchmark(db.executor.execute, statement)
        assert repr(result.rows) == repr(expected.rows)
        assert db.scan_pool.served >= 1
        benchmark.extra_info["pool_served"] = db.scan_pool.served
        benchmark.extra_info["pool_fallbacks"] = db.scan_pool.fallbacks
        db.configure_execution()  # back to single-process for peers

    @pytest.mark.skipif(
        available_cores() < 2,
        reason="parallel speedup needs >= 2 usable cores",
    )
    def test_parallel_scan_speedup_on_multicore(self, benchmark, db):
        """Only on real parallel hardware: 2 workers must beat 1.

        The filter below is numpy-ineligible (arithmetic over two
        columns), so each chunk costs real per-row Python work — the
        shape where forked scanners pay off.
        """
        sql = "SELECT COUNT(*) FROM s WHERE score * 2 > id"
        statement = parse(sql)
        db.configure_execution(scan_workers=available_cores())
        pooled = db.executor
        local = VectorizedExecutor(db.catalog)
        expected = local.execute(statement)

        started = time.perf_counter()
        local.execute(statement)
        local_seconds = time.perf_counter() - started

        result = benchmark(pooled.execute, statement)
        assert repr(result.rows) == repr(expected.rows)
        pooled_seconds = benchmark.stats.stats.min
        ratio = local_seconds / pooled_seconds
        benchmark.extra_info["parallel_speedup_x"] = round(ratio, 2)
        print(f"\n  {sql}\n  local/pooled = {ratio:.1f}x")
        assert ratio >= 1.2
        db.configure_execution()
